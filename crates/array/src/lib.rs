//! Functional model of the paper's 6T SRAM array with compute support.
//!
//! This crate captures the *digital* behaviour of the memory macro: row
//! storage, the dummy array, and the two read modes the bit-line computing
//! scheme provides —
//!
//! * **dual-WL compute read** ([`SramArray::bl_compute`]): both operand
//!   word-lines fire and the single-ended SAs deliver per-column
//!   `A AND B` (from BLT) and `NOR(A, B)` (from BLB), the primitives the
//!   column peripherals build everything else out of;
//! * **single-WL read** ([`SramArray::single_read`]): delivers `A`/`~A`
//!   (used for NOT / shift / copy).
//!
//! Bit-lines span both the main rows and the dummy rows; the [`separator`]
//! state tracks whether the main segment is disconnected during dummy-row
//! write-backs (the BL separator the paper uses to cut write-back power).
//!
//! Electrical behaviour (delays, disturb) lives in `bpimc-cell`; this crate
//! is cycle-level and value-exact.

pub mod addr;
pub mod bits;
pub mod error;
pub mod geometry;
pub mod separator;
pub mod sram;
pub mod timing;

pub use addr::RowAddr;
pub use bits::{BitRow, LaneMasks};
pub use error::ArrayError;
pub use geometry::ArrayGeometry;
pub use separator::BlSeparator;
pub use sram::{DualReadout, SingleReadout, SramArray};
pub use timing::{CycleKind, CyclePhase};
