//! Array geometry: rows, columns, dummy rows, interleaving.

/// Physical organisation of one SRAM macro.
///
/// # Examples
///
/// ```
/// use bpimc_array::ArrayGeometry;
/// let g = ArrayGeometry::paper_macro();
/// assert_eq!((g.rows, g.cols, g.dummy_rows), (128, 128, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    /// Main-array rows (word-lines).
    pub rows: usize,
    /// Columns (bit-line pairs).
    pub cols: usize,
    /// Dummy rows used for iterative operations (the paper uses 3).
    pub dummy_rows: usize,
    /// Column-interleave factor of the peripheral units (the paper's column
    /// peripherals are 4:1 interleaved).
    pub interleave: usize,
}

impl ArrayGeometry {
    /// The paper's 128 x 128 macro with 3 dummy rows and 4:1 interleaving.
    pub fn paper_macro() -> Self {
        Self {
            rows: 128,
            cols: 128,
            dummy_rows: 3,
            interleave: 4,
        }
    }

    /// A macro with a different column count (used by the Fig. 9 BL-size
    /// sweep), keeping the paper's other parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    pub fn with_cols(cols: usize) -> Self {
        assert!(cols > 0, "cols must be positive");
        Self {
            cols,
            ..Self::paper_macro()
        }
    }

    /// Storage capacity of the main array in bits.
    pub fn capacity_bits(&self) -> usize {
        self.rows * self.cols
    }

    /// Storage capacity in bytes (rounded down).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }

    /// Number of peripheral units after interleaving.
    pub fn peripheral_units(&self) -> usize {
        self.cols.div_ceil(self.interleave.max(1))
    }
}

impl Default for ArrayGeometry {
    fn default() -> Self {
        Self::paper_macro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_macro_capacity() {
        let g = ArrayGeometry::paper_macro();
        assert_eq!(g.capacity_bits(), 16384);
        assert_eq!(g.capacity_bytes(), 2048); // 2 KB per macro; 4 banks x 16 macros = 128 KB chip
        assert_eq!(g.peripheral_units(), 32);
    }

    #[test]
    fn with_cols_keeps_other_fields() {
        let g = ArrayGeometry::with_cols(1024);
        assert_eq!(g.cols, 1024);
        assert_eq!(g.rows, 128);
        assert_eq!(g.dummy_rows, 3);
    }
}
