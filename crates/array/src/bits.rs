//! Arbitrary-width bit rows backed by `u64` limbs.
//!
//! A [`BitRow`] models the contents of one physical SRAM row: `width`
//! columns, bit `i` living on bit-line `i`. Widths up to several thousand
//! columns are supported (the paper's Fig. 9 sweeps BL sizes 128-1024).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-width row of bits.
///
/// # Examples
///
/// ```
/// use bpimc_array::BitRow;
/// let mut row = BitRow::zeros(128);
/// row.set(3, true);
/// assert!(row.get(3));
/// row.set_field(8, 8, 0xAB); // an 8-bit word at columns 8..16
/// assert_eq!(row.get_field(8, 8), 0xAB);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    width: usize,
    limbs: Vec<u64>,
}

impl BitRow {
    /// An all-zero row of `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "rows must have at least one column");
        Self { width, limbs: vec![0; width.div_ceil(64)] }
    }

    /// An all-one row of `width` columns.
    pub fn ones(width: usize) -> Self {
        let mut r = Self::zeros(width);
        for l in &mut r.limbs {
            *l = u64::MAX;
        }
        r.mask_top();
        r
    }

    /// Builds a row from a `u64`, placing bit `i` of `value` in column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, or `value` does not fit in `width` bits.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut r = Self::zeros(width);
        if width < 64 {
            assert!(value < (1u64 << width), "value {value:#x} does not fit in {width} bits");
        }
        r.limbs[0] = value;
        r.mask_top();
        r
    }

    /// The number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bit at column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.width, "column {i} out of range (width {})", self.width);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.width, "column {i} out of range (width {})", self.width);
        let (l, b) = (i / 64, i % 64);
        if v {
            self.limbs[l] |= 1 << b;
        } else {
            self.limbs[l] &= !(1 << b);
        }
    }

    /// Reads an up-to-64-bit little-endian field starting at column `lsb`.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the row or `field_width > 64` or is zero.
    pub fn get_field(&self, lsb: usize, field_width: usize) -> u64 {
        assert!(field_width > 0 && field_width <= 64, "field width {field_width}");
        assert!(
            lsb + field_width <= self.width,
            "field [{lsb}, {}) exceeds row width {}",
            lsb + field_width,
            self.width
        );
        let mut v = 0u64;
        for k in 0..field_width {
            if self.get(lsb + k) {
                v |= 1 << k;
            }
        }
        v
    }

    /// Writes an up-to-64-bit little-endian field starting at column `lsb`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`BitRow::get_field`], or when
    /// `value` does not fit in the field.
    pub fn set_field(&mut self, lsb: usize, field_width: usize, value: u64) {
        assert!(field_width > 0 && field_width <= 64, "field width {field_width}");
        assert!(
            lsb + field_width <= self.width,
            "field [{lsb}, {}) exceeds row width {}",
            lsb + field_width,
            self.width
        );
        if field_width < 64 {
            assert!(
                value < (1u64 << field_width),
                "value {value:#x} does not fit in {field_width} bits"
            );
        }
        for k in 0..field_width {
            self.set(lsb + k, (value >> k) & 1 == 1);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Iterator over all bits, column 0 first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.get(i))
    }

    /// Clears bits beyond `width` in the top limb (representation invariant).
    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    fn binary_op(&self, rhs: &Self, f: fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.width, rhs.width, "row width mismatch");
        let limbs = self
            .limbs
            .iter()
            .zip(&rhs.limbs)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut r = Self { width: self.width, limbs };
        r.mask_top();
        r
    }
}

impl BitAnd for &BitRow {
    type Output = BitRow;
    fn bitand(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a & b)
    }
}

impl BitOr for &BitRow {
    type Output = BitRow;
    fn bitor(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a | b)
    }
}

impl BitXor for &BitRow {
    type Output = BitRow;
    fn bitxor(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a ^ b)
    }
}

impl Not for &BitRow {
    type Output = BitRow;
    fn not(self) -> BitRow {
        let limbs = self.limbs.iter().map(|&a| !a).collect();
        let mut r = BitRow { width: self.width, limbs };
        r.mask_top();
        r
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow<{}>(", self.width)?;
        // MSB (highest column) on the left, like a number.
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_across_limb_boundary() {
        let mut r = BitRow::zeros(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            r.set(i, true);
            assert!(r.get(i), "bit {i}");
        }
        assert_eq!(r.count_ones(), 7);
        r.set(64, false);
        assert_eq!(r.count_ones(), 6);
    }

    #[test]
    fn ones_respects_width() {
        let r = BitRow::ones(70);
        assert_eq!(r.count_ones(), 70);
        let r = BitRow::ones(64);
        assert_eq!(r.count_ones(), 64);
    }

    #[test]
    fn fields_cross_limb_boundaries() {
        let mut r = BitRow::zeros(128);
        r.set_field(60, 16, 0xBEEF);
        assert_eq!(r.get_field(60, 16), 0xBEEF);
        assert_eq!(r.get_field(60 + 4, 8), (0xBEEF >> 4) & 0xFF);
    }

    #[test]
    fn logic_ops_match_reference() {
        let a = BitRow::from_u64(64, 0b1100);
        let b = BitRow::from_u64(64, 0b1010);
        assert_eq!((&a & &b).get_field(0, 8), 0b1000);
        assert_eq!((&a | &b).get_field(0, 8), 0b1110);
        assert_eq!((&a ^ &b).get_field(0, 8), 0b0110);
        let n = !&a;
        assert!(!n.get(2));
        assert!(n.get(0));
    }

    #[test]
    fn not_respects_width_invariant() {
        let r = BitRow::zeros(100);
        let n = !&r;
        assert_eq!(n.count_ones(), 100);
    }

    #[test]
    fn display_is_msb_first() {
        let r = BitRow::from_u64(4, 0b0011);
        assert_eq!(r.to_string(), "0011");
        assert!(format!("{r:?}").contains("0011"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let a = BitRow::zeros(64);
        let b = BitRow::zeros(65);
        let _ = &a & &b;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_get_panics() {
        let r = BitRow::zeros(8);
        let _ = r.get(8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_field_value_panics() {
        let mut r = BitRow::zeros(16);
        r.set_field(0, 4, 16);
    }
}
