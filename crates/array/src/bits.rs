//! Arbitrary-width bit rows backed by `u64` limbs.
//!
//! A [`BitRow`] models the contents of one physical SRAM row: `width`
//! columns, bit `i` living on bit-line `i`. Widths up to several thousand
//! columns are supported (the paper's Fig. 9 sweeps BL sizes 128-1024).
//!
//! Rows of up to [`BitRow::INLINE_COLS`] columns are stored inline (no heap
//! allocation), so the limb-parallel engine's temporaries are free for the
//! paper's 128-column macro. [`LaneMasks`] provides the fused lane-segmented
//! arithmetic (add, shift, select) that the column-peripheral models build
//! their single-cycle row operations on: one `u64` op covers 64 columns.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Number of limbs stored inline before spilling to the heap.
const INLINE_LIMBS: usize = 4;

/// Limb storage: small rows inline, large rows on the heap. The live limb
/// count is implied by the owning row's width.
#[derive(Clone)]
enum Limbs {
    Inline([u64; INLINE_LIMBS]),
    Heap(Vec<u64>),
}

/// A fixed-width row of bits.
///
/// # Examples
///
/// ```
/// use bpimc_array::BitRow;
/// let mut row = BitRow::zeros(128);
/// row.set(3, true);
/// assert!(row.get(3));
/// row.set_field(8, 8, 0xAB); // an 8-bit word at columns 8..16
/// assert_eq!(row.get_field(8, 8), 0xAB);
/// ```
#[derive(Clone)]
pub struct BitRow {
    width: usize,
    limbs: Limbs,
}

/// Mask of the low `w` bits, `1 <= w <= 64`.
#[inline]
fn field_mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

impl BitRow {
    /// Widest row that needs no heap allocation.
    pub const INLINE_COLS: usize = INLINE_LIMBS * 64;

    /// An all-zero row of `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "rows must have at least one column");
        let limbs = if width <= Self::INLINE_COLS {
            Limbs::Inline([0; INLINE_LIMBS])
        } else {
            Limbs::Heap(vec![0; width.div_ceil(64)])
        };
        Self { width, limbs }
    }

    /// An all-one row of `width` columns.
    pub fn ones(width: usize) -> Self {
        let mut r = Self::zeros(width);
        for l in r.limbs_mut() {
            *l = u64::MAX;
        }
        r.mask_top();
        r
    }

    /// Builds a row from a `u64`, placing bit `i` of `value` in column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, or `value` does not fit in `width` bits.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut r = Self::zeros(width);
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value:#x} does not fit in {width} bits"
            );
        }
        r.limbs_mut()[0] = value;
        r.mask_top();
        r
    }

    /// Builds a row directly from limbs (bits beyond `width` are cleared).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `limbs` is not exactly
    /// `width.div_ceil(64)` long.
    pub fn from_limbs(width: usize, limbs: Vec<u64>) -> Self {
        assert!(width > 0, "rows must have at least one column");
        assert_eq!(
            limbs.len(),
            width.div_ceil(64),
            "limb count must match width"
        );
        let mut r = Self::zeros(width);
        r.limbs_mut().copy_from_slice(&limbs);
        r.mask_top();
        r
    }

    /// The number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of live limbs.
    #[inline]
    fn n_limbs(&self) -> usize {
        self.width.div_ceil(64)
    }

    /// The backing `u64` limbs, bit `i` of limb `j` holding column
    /// `j * 64 + i`. Bits at or beyond `width` are always zero.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        let n = self.n_limbs();
        match &self.limbs {
            Limbs::Inline(a) => &a[..n],
            Limbs::Heap(v) => v,
        }
    }

    /// Mutable access to the live limbs (internal; callers must uphold the
    /// top-bits-zero invariant via [`BitRow::mask_top`]).
    #[inline]
    fn limbs_mut(&mut self) -> &mut [u64] {
        let n = self.n_limbs();
        match &mut self.limbs {
            Limbs::Inline(a) => &mut a[..n],
            Limbs::Heap(v) => v,
        }
    }

    /// Bit at column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.width,
            "column {i} out of range (width {})",
            self.width
        );
        (self.limbs()[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(
            i < self.width,
            "column {i} out of range (width {})",
            self.width
        );
        let (l, b) = (i / 64, i % 64);
        let limbs = self.limbs_mut();
        if v {
            limbs[l] |= 1 << b;
        } else {
            limbs[l] &= !(1 << b);
        }
    }

    /// Reads an up-to-64-bit little-endian field starting at column `lsb`.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the row or `field_width > 64` or is zero.
    pub fn get_field(&self, lsb: usize, field_width: usize) -> u64 {
        assert!(
            field_width > 0 && field_width <= 64,
            "field width {field_width}"
        );
        assert!(
            lsb + field_width <= self.width,
            "field [{lsb}, {}) exceeds row width {}",
            lsb + field_width,
            self.width
        );
        let mask = field_mask(field_width);
        let (l, b) = (lsb / 64, lsb % 64);
        let limbs = self.limbs();
        let mut v = limbs[l] >> b;
        if b != 0 && b + field_width > 64 {
            v |= limbs[l + 1] << (64 - b);
        }
        v & mask
    }

    /// Writes an up-to-64-bit little-endian field starting at column `lsb`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`BitRow::get_field`], or when
    /// `value` does not fit in the field.
    pub fn set_field(&mut self, lsb: usize, field_width: usize, value: u64) {
        assert!(
            field_width > 0 && field_width <= 64,
            "field width {field_width}"
        );
        assert!(
            lsb + field_width <= self.width,
            "field [{lsb}, {}) exceeds row width {}",
            lsb + field_width,
            self.width
        );
        let mask = field_mask(field_width);
        assert!(
            value & !mask == 0,
            "value {value:#x} does not fit in {field_width} bits"
        );
        let (l, b) = (lsb / 64, lsb % 64);
        let limbs = self.limbs_mut();
        limbs[l] = (limbs[l] & !(mask << b)) | (value << b);
        if b != 0 && b + field_width > 64 {
            let spill = 64 - b;
            limbs[l + 1] = (limbs[l + 1] & !(mask >> spill)) | (value >> spill);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs().iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Number of set bits (alias of [`BitRow::count_ones`], the name the
    /// limb-parallel engine documentation uses).
    pub fn popcount(&self) -> usize {
        self.count_ones()
    }

    /// Iterator over all bits, column 0 first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.get(i))
    }

    /// Whole-row left shift by `k` columns (toward higher column indices).
    /// Bits shifted beyond the top column are dropped; zeros enter at the
    /// bottom. One host op per limb.
    pub fn shl_bits(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.width);
        if k >= self.width {
            return out;
        }
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        let n = self.n_limbs();
        let src = self.limbs();
        let dst = out.limbs_mut();
        for i in (limb_shift..n).rev() {
            let mut v = src[i - limb_shift] << bit_shift;
            if bit_shift != 0 && i > limb_shift {
                v |= src[i - limb_shift - 1] >> (64 - bit_shift);
            }
            dst[i] = v;
        }
        out.mask_top();
        out
    }

    /// Whole-row right shift by `k` columns (toward column zero). Bits
    /// shifted below column zero are dropped; zeros enter at the top.
    pub fn shr_bits(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.width);
        if k >= self.width {
            return out;
        }
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        let n = self.n_limbs();
        let src = self.limbs();
        let dst = out.limbs_mut();
        for i in 0..n - limb_shift {
            let mut v = src[i + limb_shift] >> bit_shift;
            if bit_shift != 0 && i + limb_shift + 1 < n {
                v |= src[i + limb_shift + 1] << (64 - bit_shift);
            }
            dst[i] = v;
        }
        out
    }

    /// Per-column select: where `self` (the mask) has a 1 the result takes
    /// the bit of `on_true`, elsewhere the bit of `on_false`. The hardware
    /// analogue is a row of 2:1 muxes driven by the mask.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn select(&self, on_true: &Self, on_false: &Self) -> Self {
        assert_eq!(self.width, on_true.width, "row width mismatch");
        assert_eq!(self.width, on_false.width, "row width mismatch");
        let mut out = Self::zeros(self.width);
        let (m, t, f) = (self.limbs(), on_true.limbs(), on_false.limbs());
        for (i, o) in out.limbs_mut().iter_mut().enumerate() {
            *o = (t[i] & m[i]) | (f[i] & !m[i]);
        }
        out
    }

    /// Per-column `NOR(a, b)` in one fused pass (the BLB sense output of a
    /// dual-WL access).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn nor_of(a: &Self, b: &Self) -> Self {
        assert_eq!(a.width, b.width, "row width mismatch");
        let mut out = Self::zeros(a.width);
        let (la, lb) = (a.limbs(), b.limbs());
        for (i, o) in out.limbs_mut().iter_mut().enumerate() {
            *o = !(la[i] | lb[i]);
        }
        out.mask_top();
        out
    }

    /// Whole-row integer addition `self + rhs` (the row read as one
    /// little-endian `width`-bit integer), wrapping at the row width.
    ///
    /// This is the carry-propagating full-add the limb-parallel engine is
    /// built on: each `u64` limb is one 64-column carry-lookahead adder
    /// (the host ALU), with the inter-limb carry rippling once per limb.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn wrapping_row_add(&self, rhs: &Self) -> Self {
        assert_eq!(self.width, rhs.width, "row width mismatch");
        let mut out = Self::zeros(self.width);
        let (la, lb) = (self.limbs(), rhs.limbs());
        let mut carry = false;
        for (i, o) in out.limbs_mut().iter_mut().enumerate() {
            let (s1, c1) = la[i].overflowing_add(lb[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 | c2;
        }
        out.mask_top();
        out
    }

    /// Clears bits beyond `width` in the top limb (representation invariant).
    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let limbs = self.limbs_mut();
            let last = limbs.len() - 1;
            limbs[last] &= (1u64 << rem) - 1;
        }
    }

    fn binary_op(&self, rhs: &Self, f: fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.width, rhs.width, "row width mismatch");
        let mut out = Self::zeros(self.width);
        let (la, lb) = (self.limbs(), rhs.limbs());
        for (i, o) in out.limbs_mut().iter_mut().enumerate() {
            *o = f(la[i], lb[i]);
        }
        out.mask_top();
        out
    }
}

impl PartialEq for BitRow {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.limbs() == other.limbs()
    }
}

impl Eq for BitRow {}

impl std::hash::Hash for BitRow {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.width.hash(state);
        self.limbs().hash(state);
    }
}

impl BitAnd for &BitRow {
    type Output = BitRow;
    fn bitand(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a & b)
    }
}

impl BitOr for &BitRow {
    type Output = BitRow;
    fn bitor(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a | b)
    }
}

impl BitXor for &BitRow {
    type Output = BitRow;
    fn bitxor(self, rhs: &BitRow) -> BitRow {
        self.binary_op(rhs, |a, b| a ^ b)
    }
}

impl Not for &BitRow {
    type Output = BitRow;
    fn not(self) -> BitRow {
        let mut out = BitRow::zeros(self.width);
        let la = self.limbs();
        for (i, o) in out.limbs_mut().iter_mut().enumerate() {
            *o = !la[i];
        }
        out.mask_top();
        out
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow<{}>(", self.width)?;
        // MSB (highest column) on the left, like a number.
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// Precomputed column masks for a row segmented into `segment_bits`-wide
/// lanes, plus the limb-parallel lane arithmetic built on them.
///
/// All operations are *per-lane*: carries and shifts never cross a lane
/// boundary, exactly like the hardware's MX3 reconfiguration muxes cutting
/// the carry chain. Leftover columns above the last whole lane are idle and
/// always read zero in results. Every operation is a fused single pass over
/// the `u64` limbs, so one host op covers 64 columns.
///
/// # Examples
///
/// ```
/// use bpimc_array::{BitRow, LaneMasks};
/// // Two 8-bit lanes in a 16-column row: 0xFF + 0x01 wraps, no carry leak.
/// let m = LaneMasks::new(16, 8);
/// let a = BitRow::from_u64(16, 0x00FF);
/// let b = BitRow::from_u64(16, 0x0001);
/// let (sum, carries) = m.lane_add(&a, &b, false);
/// assert_eq!(sum.get_field(0, 8), 0x00);
/// assert_eq!(sum.get_field(8, 8), 0x00);
/// assert!(carries.get(7) && !carries.get(15));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMasks {
    cols: usize,
    segment_bits: usize,
    /// 1 at the MSB column of every whole lane.
    msb: BitRow,
    /// 1 at the LSB column of every whole lane.
    lsb: BitRow,
    /// 1 at every column belonging to a whole lane.
    active: BitRow,
}

impl LaneMasks {
    /// Masks for `cols` columns in `segment_bits`-wide lanes.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `segment_bits` is zero.
    pub fn new(cols: usize, segment_bits: usize) -> Self {
        assert!(cols > 0, "cols must be positive");
        assert!(segment_bits > 0, "segment width must be positive");
        let lanes = cols / segment_bits;
        let mut msb = BitRow::zeros(cols);
        let mut lsb = BitRow::zeros(cols);
        let mut active = BitRow::zeros(cols);
        for lane in 0..lanes {
            let lo = lane * segment_bits;
            lsb.set(lo, true);
            msb.set(lo + segment_bits - 1, true);
        }
        for chunk in (0..lanes * segment_bits).step_by(64) {
            let w = 64.min(lanes * segment_bits - chunk);
            active.set_field(chunk, w, field_mask(w));
        }
        Self {
            cols,
            segment_bits,
            msb,
            lsb,
            active,
        }
    }

    /// Row width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Lane width in bits.
    pub fn segment_bits(&self) -> usize {
        self.segment_bits
    }

    /// Number of whole lanes.
    pub fn lane_count(&self) -> usize {
        self.cols / self.segment_bits
    }

    /// Mask with a 1 at the MSB column of every lane.
    pub fn msb_mask(&self) -> &BitRow {
        &self.msb
    }

    /// Mask covering every whole-lane column.
    pub fn active_mask(&self) -> &BitRow {
        &self.active
    }

    /// Per-lane addition `a + b` (+1 per lane when `carry_in`), wrapping at
    /// the lane width. Returns the per-column sums and a row holding each
    /// lane's carry-out at that lane's MSB column.
    ///
    /// The whole row is computed limb-wise: the lane-MSB columns are masked
    /// off so the full-width carry-propagating add cannot cross a lane
    /// boundary, then the MSB sum and carry-out are reconstructed with the
    /// full-adder identities `s = a ^ b ^ c` and `cout = majority(a, b, c)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lane_add(&self, a: &BitRow, b: &BitRow, carry_in: bool) -> (BitRow, BitRow) {
        assert_eq!(a.width(), self.cols, "row width mismatch");
        assert_eq!(b.width(), self.cols, "row width mismatch");
        let mut sum = BitRow::zeros(self.cols);
        let mut cout = BitRow::zeros(self.cols);
        lane_add_limbs(
            a.limbs(),
            b.limbs(),
            carry_in,
            self.msb.limbs(),
            self.lsb.limbs(),
            self.active.limbs(),
            sum.limbs_mut(),
            cout.limbs_mut(),
        );
        (sum, cout)
    }

    /// Per-lane three-input addition straight off a dual-WL readout: the
    /// sense amplifiers deliver `and = A AND B` and `nor = NOR(A, B)`, and
    /// within each lane `A + B = (A XOR B) + ((A AND B) << 1)` with the
    /// lane-MSB AND bit contributing directly to the carry-out.
    ///
    /// Returns `(sum, cout)` like [`LaneMasks::lane_add`]. Costs a few
    /// limb passes (XOR/shift extraction, the lane add, the MSB carry
    /// fix-up) — still O(limbs), with inline rows allocation-free.
    pub fn lane_add_from_readout(
        &self,
        and: &BitRow,
        nor: &BitRow,
        carry_in: bool,
    ) -> (BitRow, BitRow) {
        assert_eq!(and.width(), self.cols, "row width mismatch");
        assert_eq!(nor.width(), self.cols, "row width mismatch");
        let mut xor = BitRow::zeros(self.cols);
        let mut sh = BitRow::zeros(self.cols);
        {
            let (la, ln) = (and.limbs(), nor.limbs());
            let (ll, lact) = (self.lsb.limbs(), self.active.limbs());
            let lx = xor.limbs_mut();
            let mut shc = 0u64;
            for (i, x) in lx.iter_mut().enumerate() {
                *x = !la[i] & !ln[i] & lact[i];
            }
            let lsh = sh.limbs_mut();
            for (i, s) in lsh.iter_mut().enumerate() {
                // (AND << 1) within lanes: lane LSBs cleared, idle cleared.
                *s = ((and.limbs()[i] << 1) | shc) & !ll[i] & lact[i];
                shc = and.limbs()[i] >> 63;
            }
        }
        let (sum, mut cout) = self.lane_add(&xor, &sh, carry_in);
        {
            // The AND bit at each lane MSB has weight 2^P: a direct
            // carry-out the in-lane shift dropped.
            let la = and.limbs();
            let lm = self.msb.limbs();
            let lc = cout.limbs_mut();
            for (i, c) in lc.iter_mut().enumerate() {
                *c |= la[i] & lm[i];
            }
        }
        (sum, cout)
    }

    /// Per-lane logical left shift by one: every column takes its right
    /// neighbour's bit, each lane LSB takes zero.
    pub fn lane_shl1(&self, data: &BitRow) -> BitRow {
        assert_eq!(data.width(), self.cols, "row width mismatch");
        let mut out = BitRow::zeros(self.cols);
        let ld = data.limbs();
        let (ll, lact) = (self.lsb.limbs(), self.active.limbs());
        let lo = out.limbs_mut();
        let mut carry = 0u64;
        for i in 0..ld.len() {
            lo[i] = ((ld[i] << 1) | carry) & !ll[i] & lact[i];
            carry = ld[i] >> 63;
        }
        out
    }

    /// The fused mux-and-shift a multiplication step performs: per column,
    /// pick `on_true` where `mask` is set, else `on_false`, then (unless
    /// `final_step`) shift the selection left by one within each lane.
    pub fn select_shl1(
        &self,
        mask: &BitRow,
        on_true: &BitRow,
        on_false: &BitRow,
        final_step: bool,
    ) -> BitRow {
        assert_eq!(mask.width(), self.cols, "row width mismatch");
        assert_eq!(on_true.width(), self.cols, "row width mismatch");
        assert_eq!(on_false.width(), self.cols, "row width mismatch");
        let mut out = BitRow::zeros(self.cols);
        let (lmsk, lt, lf) = (mask.limbs(), on_true.limbs(), on_false.limbs());
        let (ll, lact) = (self.lsb.limbs(), self.active.limbs());
        let lo = out.limbs_mut();
        let mut carry = 0u64;
        for i in 0..lt.len() {
            let sel = (lt[i] & lmsk[i]) | (lf[i] & !lmsk[i]);
            if final_step {
                lo[i] = sel & lact[i];
            } else {
                lo[i] = ((sel << 1) | carry) & !ll[i] & lact[i];
                carry = sel >> 63;
            }
        }
        out
    }

    /// Expands per-lane bits into whole-lane masks: lane `i` of the result
    /// is all-ones when `lane_bits[i]` is set (the row-wide image of the
    /// multiplier FF MUX selects).
    ///
    /// # Panics
    ///
    /// Panics if `lane_bits` does not have one entry per lane.
    pub fn expand_lane_bits(&self, lane_bits: &[bool]) -> BitRow {
        assert_eq!(lane_bits.len(), self.lane_count(), "one bit per lane");
        let mut out = BitRow::zeros(self.cols);
        let p = self.segment_bits;
        for (lane, &bit) in lane_bits.iter().enumerate() {
            if bit {
                let lo = lane * p;
                let mut remaining = p;
                while remaining > 0 {
                    let w = remaining.min(64);
                    out.set_field(lo + p - remaining, w, field_mask(w));
                    remaining -= w;
                }
            }
        }
        out
    }
}

/// The fused limb loop behind [`LaneMasks::lane_add`].
#[allow(clippy::too_many_arguments)]
fn lane_add_limbs(
    la: &[u64],
    lb: &[u64],
    carry_in: bool,
    lm: &[u64],
    ll: &[u64],
    lact: &[u64],
    ls: &mut [u64],
    lc: &mut [u64],
) {
    let (mut c1, mut c2) = (false, false);
    for i in 0..la.len() {
        let not_msb = !lm[i];
        let am = la[i] & not_msb & lact[i];
        let bm = lb[i] & not_msb & lact[i];
        // Stage 1: MSB-masked halves cannot carry across a lane boundary.
        let (s1, k1) = am.overflowing_add(bm);
        let (s1, k1b) = s1.overflowing_add(c1 as u64);
        c1 = k1 | k1b;
        // Stage 2: +1 at each lane LSB when a carry-in is requested.
        let s = if carry_in {
            let (s2, k2) = s1.overflowing_add(ll[i]);
            let (s2, k2b) = s2.overflowing_add(c2 as u64);
            c2 = k2 | k2b;
            s2
        } else {
            s1
        };
        let axb = la[i] ^ lb[i];
        ls[i] = (s ^ (axb & lm[i])) & lact[i];
        lc[i] = ((la[i] & lb[i]) | (axb & s)) & lm[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_across_limb_boundary() {
        let mut r = BitRow::zeros(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            r.set(i, true);
            assert!(r.get(i), "bit {i}");
        }
        assert_eq!(r.count_ones(), 7);
        r.set(64, false);
        assert_eq!(r.count_ones(), 6);
    }

    #[test]
    fn ones_respects_width() {
        let r = BitRow::ones(70);
        assert_eq!(r.count_ones(), 70);
        let r = BitRow::ones(64);
        assert_eq!(r.count_ones(), 64);
    }

    #[test]
    fn fields_cross_limb_boundaries() {
        let mut r = BitRow::zeros(128);
        r.set_field(60, 16, 0xBEEF);
        assert_eq!(r.get_field(60, 16), 0xBEEF);
        assert_eq!(r.get_field(60 + 4, 8), (0xBEEF >> 4) & 0xFF);
    }

    #[test]
    fn logic_ops_match_reference() {
        let a = BitRow::from_u64(64, 0b1100);
        let b = BitRow::from_u64(64, 0b1010);
        assert_eq!((&a & &b).get_field(0, 8), 0b1000);
        assert_eq!((&a | &b).get_field(0, 8), 0b1110);
        assert_eq!((&a ^ &b).get_field(0, 8), 0b0110);
        let n = !&a;
        assert!(!n.get(2));
        assert!(n.get(0));
    }

    #[test]
    fn not_respects_width_invariant() {
        let r = BitRow::zeros(100);
        let n = !&r;
        assert_eq!(n.count_ones(), 100);
    }

    #[test]
    fn display_is_msb_first() {
        let r = BitRow::from_u64(4, 0b0011);
        assert_eq!(r.to_string(), "0011");
        assert!(format!("{r:?}").contains("0011"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let a = BitRow::zeros(64);
        let b = BitRow::zeros(65);
        let _ = &a & &b;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_get_panics() {
        let r = BitRow::zeros(8);
        let _ = r.get(8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_field_value_panics() {
        let mut r = BitRow::zeros(16);
        r.set_field(0, 4, 16);
    }

    #[test]
    fn heap_rows_work_beyond_inline_capacity() {
        // 1024 columns (Fig. 9's largest BL size) spills to the heap.
        // 1024 > BitRow::INLINE_COLS, so this row is heap-backed.
        let mut r = BitRow::zeros(1024);
        for i in [0, 255, 256, 511, 767, 1023] {
            r.set(i, true);
        }
        assert_eq!(r.count_ones(), 6);
        let s = r.shl_bits(1);
        assert!(s.get(1) && s.get(256) && !s.get(0));
        assert!(!s.get(1023), "top bit dropped");
        let back = s.shr_bits(1);
        assert_eq!(back.count_ones(), 5, "bit 1023 was lost by the shift");
    }

    #[test]
    fn equality_ignores_inline_vs_heap_representation() {
        let mut a = BitRow::zeros(1024);
        a.set(700, true);
        let mut b = BitRow::zeros(1024);
        b.set(700, true);
        assert_eq!(a, b);
        b.set(0, true);
        assert_ne!(a, b);
    }

    #[test]
    fn shifts_by_k_match_per_bit_reference() {
        for width in [8usize, 64, 100, 128, 130, 320] {
            let mut r = BitRow::zeros(width);
            for i in (0..width).step_by(3) {
                r.set(i, true);
            }
            for k in [0usize, 1, 5, 63, 64, 65, width - 1] {
                let l = r.shl_bits(k);
                let s = r.shr_bits(k);
                for i in 0..width {
                    let expect_l = i >= k && r.get(i - k);
                    let expect_s = i + k < width && r.get(i + k);
                    assert_eq!(l.get(i), expect_l, "shl width {width} k {k} bit {i}");
                    assert_eq!(s.get(i), expect_s, "shr width {width} k {k} bit {i}");
                }
            }
        }
    }

    #[test]
    fn select_mixes_per_column() {
        let m = BitRow::from_u64(8, 0b1111_0000);
        let t = BitRow::from_u64(8, 0b1010_1010);
        let f = BitRow::from_u64(8, 0b0101_0101);
        assert_eq!(m.select(&t, &f).get_field(0, 8), 0b1010_0101);
    }

    #[test]
    fn nor_of_matches_operators() {
        let a = BitRow::from_u64(80, 0xF0F0);
        let b = BitRow::from_u64(80, 0x0FF0);
        assert_eq!(BitRow::nor_of(&a, &b), &!&a & &!&b);
    }

    #[test]
    fn wrapping_row_add_is_big_integer_addition() {
        // 128-bit add with a carry across the limb boundary.
        let a = BitRow::from_limbs(128, vec![u64::MAX, 0]);
        let b = BitRow::from_u64(128, 1);
        let s = a.wrapping_row_add(&b);
        assert_eq!(s.limbs(), &[0, 1]);
        // Wraps at the row width.
        let m = BitRow::ones(96);
        let one = BitRow::from_u64(96, 1);
        assert_eq!(m.wrapping_row_add(&one).count_ones(), 0);
    }

    #[test]
    fn lane_add_matches_per_word_arithmetic() {
        for (cols, seg) in [
            (128usize, 8usize),
            (128, 2),
            (130, 16),
            (320, 32),
            (1024, 8),
        ] {
            let m = LaneMasks::new(cols, seg);
            let mut a = BitRow::zeros(cols);
            let mut b = BitRow::zeros(cols);
            for i in 0..cols {
                a.set(i, i % 3 == 0);
                b.set(i, i % 5 != 0);
            }
            for cin in [false, true] {
                let (sum, cout) = m.lane_add(&a, &b, cin);
                for lane in 0..m.lane_count() {
                    let wa = a.get_field(lane * seg, seg.min(64));
                    let wb = b.get_field(lane * seg, seg.min(64));
                    let total = wa as u128 + wb as u128 + cin as u128;
                    let expect = (total & field_mask(seg.min(64)) as u128) as u64;
                    assert_eq!(
                        sum.get_field(lane * seg, seg.min(64)),
                        expect,
                        "cols {cols} seg {seg} lane {lane} cin {cin}"
                    );
                    let expect_cout = total >> seg == 1;
                    assert_eq!(cout.get(lane * seg + seg - 1), expect_cout);
                }
            }
        }
    }

    #[test]
    fn lane_add_from_readout_equals_lane_add() {
        let cols = 192; // three limbs, mixes inline-boundary behaviour
        for seg in [2usize, 4, 8, 16, 32] {
            let m = LaneMasks::new(cols, seg);
            let mut a = BitRow::zeros(cols);
            let mut b = BitRow::zeros(cols);
            for i in 0..cols {
                a.set(i, (i * 7) % 4 < 2);
                b.set(i, (i * 11) % 3 == 1);
            }
            let and = &a & &b;
            let nor = BitRow::nor_of(&a, &b);
            for cin in [false, true] {
                let direct = m.lane_add(&a, &b, cin);
                let from_readout = m.lane_add_from_readout(&and, &nor, cin);
                assert_eq!(direct, from_readout, "seg {seg} cin {cin}");
            }
        }
    }

    #[test]
    fn popcount_alias() {
        let r = BitRow::from_u64(128, 0xFF00FF);
        assert_eq!(r.popcount(), r.count_ones());
        assert_eq!(r.popcount(), 16);
    }
}
