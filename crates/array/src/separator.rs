//! BL separator state.
//!
//! The separator is a pass-gate in each column between the main-array
//! bit-line segment and the short dummy-row segment. When a write-back
//! targets a dummy row the separator can disconnect the main segment so
//! only a few femtofarads swing. This type tracks the control state and
//! counts how many write-backs were shielded — the energy model consumes
//! those counts to produce the paper's "w/ BL Separator" rows of Table II.

/// Control and accounting state of the per-column BL separators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlSeparator {
    enabled: bool,
    shielded_writebacks: u64,
    exposed_writebacks: u64,
}

impl BlSeparator {
    /// A separator policy; `enabled` turns the feature on.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            shielded_writebacks: 0,
            exposed_writebacks: 0,
        }
    }

    /// Whether the feature is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one write-back; `to_dummy` says whether the target row is in
    /// the dummy array (only those can be shielded). Returns `true` when the
    /// write was shielded by the separator.
    pub fn record_writeback(&mut self, to_dummy: bool) -> bool {
        let shielded = self.enabled && to_dummy;
        if shielded {
            self.shielded_writebacks += 1;
        } else {
            self.exposed_writebacks += 1;
        }
        shielded
    }

    /// Write-backs that swung only the dummy segment.
    pub fn shielded(&self) -> u64 {
        self.shielded_writebacks
    }

    /// Write-backs that swung the full bit-line.
    pub fn exposed(&self) -> u64 {
        self.exposed_writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_separator_shields_dummy_writes_only() {
        let mut s = BlSeparator::new(true);
        assert!(s.record_writeback(true));
        assert!(!s.record_writeback(false));
        assert_eq!(s.shielded(), 1);
        assert_eq!(s.exposed(), 1);
    }

    #[test]
    fn disabled_separator_shields_nothing() {
        let mut s = BlSeparator::new(false);
        assert!(!s.record_writeback(true));
        assert!(!s.record_writeback(false));
        assert_eq!(s.shielded(), 0);
        assert_eq!(s.exposed(), 2);
    }
}
