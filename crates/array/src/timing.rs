//! Cycle phase structure of the in-memory-computing macro.
//!
//! Fig. 8 (left) of the paper breaks one computing cycle into five phases.
//! This module defines that structure so the executor can log per-phase
//! activity and the metrics crate can assemble cycle time from per-phase
//! delays.

/// One phase of a computing cycle (the paper's Fig. 8 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CyclePhase {
    /// Bit-line precharge (with BSTRS mirror reset folded in).
    Precharge,
    /// Word-line activation (the short pulse).
    WlActivate,
    /// Bit-line swing + single-ended sensing (includes the boost action).
    Sense,
    /// Column peripheral logic (FA-Logics / carry propagation).
    Logic,
    /// Write-back of the result.
    WriteBack,
}

impl CyclePhase {
    /// All phases in cycle order.
    pub const ALL: [CyclePhase; 5] = [
        CyclePhase::Precharge,
        CyclePhase::WlActivate,
        CyclePhase::Sense,
        CyclePhase::Logic,
        CyclePhase::WriteBack,
    ];
}

/// The kind of access a cycle performs, which determines the phases it
/// exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleKind {
    /// Dual-WL compute access with logic and write-back (ADD, logic ops...).
    Compute,
    /// Single-WL access (NOT / shift / copy) with write-back.
    SingleAccess,
    /// Plain write (initialisation of dummy rows, stores).
    WriteOnly,
    /// Plain read (data out; no logic, no write-back).
    ReadOnly,
}

impl CycleKind {
    /// The phases this kind of cycle exercises, in order.
    pub fn phases(&self) -> &'static [CyclePhase] {
        use CyclePhase::*;
        match self {
            CycleKind::Compute => &[Precharge, WlActivate, Sense, Logic, WriteBack],
            CycleKind::SingleAccess => &[Precharge, WlActivate, Sense, Logic, WriteBack],
            CycleKind::WriteOnly => &[Precharge, WlActivate, WriteBack],
            CycleKind::ReadOnly => &[Precharge, WlActivate, Sense],
        }
    }

    /// Whether the cycle performs a dual word-line activation.
    pub fn is_dual_wl(&self) -> bool {
        matches!(self, CycleKind::Compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_exercises_all_phases() {
        assert_eq!(CycleKind::Compute.phases(), &CyclePhase::ALL);
    }

    #[test]
    fn read_skips_logic_and_writeback() {
        let p = CycleKind::ReadOnly.phases();
        assert!(!p.contains(&CyclePhase::Logic));
        assert!(!p.contains(&CyclePhase::WriteBack));
    }

    #[test]
    fn only_compute_is_dual_wl() {
        assert!(CycleKind::Compute.is_dual_wl());
        assert!(!CycleKind::SingleAccess.is_dual_wl());
        assert!(!CycleKind::WriteOnly.is_dual_wl());
    }
}
