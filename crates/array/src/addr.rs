//! Row addressing across the main and dummy arrays.

use std::fmt;

/// Address of one word-line, either in the main array or the dummy array.
///
/// The dummy rows are physically part of the same columns (they share
/// bit-lines with the main array, below the BL separator) but are addressed
/// separately because iterative operations cycle data through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddr {
    /// Main-array row index.
    Main(usize),
    /// Dummy-array row index (0-based; the paper has 3 dummy rows).
    Dummy(usize),
}

impl RowAddr {
    /// True if this is a dummy-array row.
    pub fn is_dummy(&self) -> bool {
        matches!(self, RowAddr::Dummy(_))
    }

    /// The raw index within its array.
    pub fn index(&self) -> usize {
        match self {
            RowAddr::Main(i) | RowAddr::Dummy(i) => *i,
        }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowAddr::Main(i) => write!(f, "main[{i}]"),
            RowAddr::Dummy(i) => write!(f, "dummy[{i}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(RowAddr::Dummy(1).is_dummy());
        assert!(!RowAddr::Main(0).is_dummy());
        assert_eq!(RowAddr::Main(5).index(), 5);
        assert_eq!(RowAddr::Dummy(2).to_string(), "dummy[2]");
    }
}
