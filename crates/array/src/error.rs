//! Error type for array operations.

use crate::addr::RowAddr;
use std::fmt;

/// Errors from functional array accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A row address beyond the array geometry.
    RowOutOfRange {
        /// Offending address.
        addr: RowAddr,
        /// Rows available in the addressed array segment.
        available: usize,
    },
    /// A write value whose width differs from the column count.
    WidthMismatch {
        /// Width of the supplied row.
        got: usize,
        /// Column count of the array.
        want: usize,
    },
    /// A dual-WL compute access naming the same row twice.
    SameRowTwice(RowAddr),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::RowOutOfRange { addr, available } => {
                write!(f, "row {addr} out of range ({available} rows available)")
            }
            ArrayError::WidthMismatch { got, want } => {
                write!(
                    f,
                    "row width {got} does not match array column count {want}"
                )
            }
            ArrayError::SameRowTwice(addr) => {
                write!(f, "dual word-line access cannot activate {addr} twice")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offenders() {
        let e = ArrayError::RowOutOfRange {
            addr: RowAddr::Main(200),
            available: 128,
        };
        assert!(e.to_string().contains("main[200]"));
        let e = ArrayError::WidthMismatch { got: 64, want: 128 };
        assert!(e.to_string().contains("64"));
        let e = ArrayError::SameRowTwice(RowAddr::Dummy(0));
        assert!(e.to_string().contains("dummy[0]"));
    }
}
