//! The functional SRAM array: storage plus the two compute read modes.

use crate::addr::RowAddr;
use crate::bits::BitRow;
use crate::error::ArrayError;
use crate::geometry::ArrayGeometry;

/// Result of a dual-WL bit-line compute access.
///
/// The single-ended sense amplifiers deliver, per column, `A AND B` (sensed
/// on BLT) and `NOR(A, B)` (sensed on BLB). Every other two-input function
/// is derived from these in the column peripherals.
#[derive(Debug, Clone, PartialEq)]
pub struct DualReadout {
    /// Per-column `A AND B`.
    pub and: BitRow,
    /// Per-column `NOR(A, B)` = `~A AND ~B`.
    pub nor: BitRow,
}

impl DualReadout {
    /// Per-column XOR, reconstructed the way the FA-Logics block does it:
    /// `A XOR B = ~(A AND B) AND ~(NOR(A, B))`.
    pub fn xor(&self) -> BitRow {
        &!&self.and & &!&self.nor
    }

    /// Per-column OR (`~NOR`).
    pub fn or(&self) -> BitRow {
        !&self.nor
    }
}

/// Result of a single-WL access: the stored row and its complement, exactly
/// what the single-ended SA pair provides.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleReadout {
    /// The stored row `A`.
    pub a: BitRow,
    /// Its complement `~A`.
    pub not_a: BitRow,
}

/// The functional SRAM array: main rows plus dummy rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SramArray {
    geometry: ArrayGeometry,
    main: Vec<BitRow>,
    dummy: Vec<BitRow>,
}

impl SramArray {
    /// An all-zero array with the given geometry.
    pub fn new(geometry: ArrayGeometry) -> Self {
        let main = (0..geometry.rows)
            .map(|_| BitRow::zeros(geometry.cols))
            .collect();
        let dummy = (0..geometry.dummy_rows)
            .map(|_| BitRow::zeros(geometry.cols))
            .collect();
        Self {
            geometry,
            main,
            dummy,
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    fn row(&self, addr: RowAddr) -> Result<&BitRow, ArrayError> {
        match addr {
            RowAddr::Main(i) => self.main.get(i).ok_or(ArrayError::RowOutOfRange {
                addr,
                available: self.geometry.rows,
            }),
            RowAddr::Dummy(i) => self.dummy.get(i).ok_or(ArrayError::RowOutOfRange {
                addr,
                available: self.geometry.dummy_rows,
            }),
        }
    }

    fn row_mut(&mut self, addr: RowAddr) -> Result<&mut BitRow, ArrayError> {
        let (rows, dummy_rows) = (self.geometry.rows, self.geometry.dummy_rows);
        match addr {
            RowAddr::Main(i) => self.main.get_mut(i).ok_or(ArrayError::RowOutOfRange {
                addr,
                available: rows,
            }),
            RowAddr::Dummy(i) => self.dummy.get_mut(i).ok_or(ArrayError::RowOutOfRange {
                addr,
                available: dummy_rows,
            }),
        }
    }

    /// Reads a row verbatim (a normal memory read).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for an invalid address.
    pub fn read(&self, addr: RowAddr) -> Result<BitRow, ArrayError> {
        self.row(addr).cloned()
    }

    /// Writes a row verbatim (a normal memory write).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] or [`ArrayError::WidthMismatch`].
    pub fn write(&mut self, addr: RowAddr, value: &BitRow) -> Result<(), ArrayError> {
        if value.width() != self.geometry.cols {
            return Err(ArrayError::WidthMismatch {
                got: value.width(),
                want: self.geometry.cols,
            });
        }
        *self.row_mut(addr)? = value.clone();
        Ok(())
    }

    /// Dual word-line compute access: activates `a` and `b` simultaneously
    /// and returns the per-column SA outputs.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::SameRowTwice`] if `a == b`, or
    /// [`ArrayError::RowOutOfRange`].
    pub fn bl_compute(&self, a: RowAddr, b: RowAddr) -> Result<DualReadout, ArrayError> {
        if a == b {
            return Err(ArrayError::SameRowTwice(a));
        }
        let ra = self.row(a)?;
        let rb = self.row(b)?;
        Ok(DualReadout {
            and: ra & rb,
            nor: BitRow::nor_of(ra, rb),
        })
    }

    /// Single word-line access: returns `A` and `~A` (the SA pair outputs).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`].
    pub fn single_read(&self, a: RowAddr) -> Result<SingleReadout, ArrayError> {
        let ra = self.row(a)?;
        Ok(SingleReadout {
            a: ra.clone(),
            not_a: !ra,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_array() -> SramArray {
        SramArray::new(ArrayGeometry {
            rows: 8,
            cols: 16,
            dummy_rows: 3,
            interleave: 4,
        })
    }

    #[test]
    fn write_read_round_trip_main_and_dummy() {
        let mut arr = small_array();
        let v = BitRow::from_u64(16, 0xBEEF);
        arr.write(RowAddr::Main(3), &v).unwrap();
        arr.write(RowAddr::Dummy(2), &v).unwrap();
        assert_eq!(arr.read(RowAddr::Main(3)).unwrap(), v);
        assert_eq!(arr.read(RowAddr::Dummy(2)).unwrap(), v);
        // Other rows untouched.
        assert_eq!(arr.read(RowAddr::Main(0)).unwrap().count_ones(), 0);
    }

    #[test]
    fn bl_compute_is_and_and_nor() {
        let mut arr = small_array();
        arr.write(RowAddr::Main(0), &BitRow::from_u64(16, 0b1100))
            .unwrap();
        arr.write(RowAddr::Main(1), &BitRow::from_u64(16, 0b1010))
            .unwrap();
        let out = arr.bl_compute(RowAddr::Main(0), RowAddr::Main(1)).unwrap();
        assert_eq!(out.and.get_field(0, 4), 0b1000);
        assert_eq!(out.nor.get_field(0, 4), 0b0001);
        assert_eq!(out.xor().get_field(0, 4), 0b0110);
        assert_eq!(out.or().get_field(0, 4), 0b1110);
    }

    #[test]
    fn compute_between_main_and_dummy_rows_works() {
        let mut arr = small_array();
        arr.write(RowAddr::Main(0), &BitRow::from_u64(16, 0xF0))
            .unwrap();
        arr.write(RowAddr::Dummy(0), &BitRow::from_u64(16, 0x3C))
            .unwrap();
        let out = arr.bl_compute(RowAddr::Main(0), RowAddr::Dummy(0)).unwrap();
        assert_eq!(out.and.get_field(0, 8), 0x30);
    }

    #[test]
    fn single_read_gives_complement() {
        let mut arr = small_array();
        arr.write(RowAddr::Main(2), &BitRow::from_u64(16, 0x00FF))
            .unwrap();
        let out = arr.single_read(RowAddr::Main(2)).unwrap();
        assert_eq!(out.a.get_field(0, 16), 0x00FF);
        assert_eq!(out.not_a.get_field(0, 16), 0xFF00);
    }

    #[test]
    fn errors_are_reported() {
        let mut arr = small_array();
        assert!(matches!(
            arr.read(RowAddr::Main(8)),
            Err(ArrayError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            arr.read(RowAddr::Dummy(3)),
            Err(ArrayError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            arr.write(RowAddr::Main(0), &BitRow::zeros(8)),
            Err(ArrayError::WidthMismatch { .. })
        ));
        assert!(matches!(
            arr.bl_compute(RowAddr::Main(1), RowAddr::Main(1)),
            Err(ArrayError::SameRowTwice(_))
        ));
    }

    proptest! {
        /// The SA outputs always satisfy the Boolean identities regardless of
        /// stored data: AND & NOR are disjoint, and AND | XOR | NOR = all.
        #[test]
        fn readout_identities(a in any::<u16>(), b in any::<u16>()) {
            let mut arr = small_array();
            arr.write(RowAddr::Main(0), &BitRow::from_u64(16, a as u64)).unwrap();
            arr.write(RowAddr::Main(1), &BitRow::from_u64(16, b as u64)).unwrap();
            let out = arr.bl_compute(RowAddr::Main(0), RowAddr::Main(1)).unwrap();
            let and = out.and.get_field(0, 16) as u16;
            let nor = out.nor.get_field(0, 16) as u16;
            let xor = out.xor().get_field(0, 16) as u16;
            prop_assert_eq!(and, a & b);
            prop_assert_eq!(nor, !(a | b));
            prop_assert_eq!(xor, a ^ b);
            prop_assert_eq!(and & nor, 0);
            prop_assert_eq!(and | xor | nor, u16::MAX);
        }
    }
}
