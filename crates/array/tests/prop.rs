//! Property tests for the bit-row and array invariants.

use bpimc_array::{ArrayGeometry, BitRow, RowAddr, SramArray};
use proptest::prelude::*;

proptest! {
    /// BitRow logic matches u128 reference arithmetic for any width <= 128.
    #[test]
    fn bitrow_logic_matches_u128(a in any::<u128>(), b in any::<u128>(), width in 1usize..=128) {
        let mask = if width == 128 { u128::MAX } else { (1u128 << width) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut ra = BitRow::zeros(width);
        let mut rb = BitRow::zeros(width);
        for i in 0..width {
            ra.set(i, (a >> i) & 1 == 1);
            rb.set(i, (b >> i) & 1 == 1);
        }
        let to_u128 = |r: &BitRow| -> u128 {
            (0..width).fold(0u128, |acc, i| acc | ((r.get(i) as u128) << i))
        };
        prop_assert_eq!(to_u128(&(&ra & &rb)), a & b);
        prop_assert_eq!(to_u128(&(&ra | &rb)), a | b);
        prop_assert_eq!(to_u128(&(&ra ^ &rb)), a ^ b);
        prop_assert_eq!(to_u128(&!&ra), !a & mask);
        prop_assert_eq!(ra.count_ones(), a.count_ones() as usize);
    }

    /// Field writes are isolated: writing one field never disturbs another
    /// disjoint field.
    #[test]
    fn field_writes_are_isolated(
        v1 in 0u64..256,
        v2 in 0u64..256,
        lsb1 in 0usize..15,
        gap in 1usize..10,
    ) {
        let lsb2 = lsb1 + 8 + gap;
        let mut r = BitRow::zeros(64);
        r.set_field(lsb1, 8, v1);
        r.set_field(lsb2, 8, v2);
        prop_assert_eq!(r.get_field(lsb1, 8), v1);
        prop_assert_eq!(r.get_field(lsb2, 8), v2);
        // Overwrite the first field; the second must survive.
        r.set_field(lsb1, 8, v1 ^ 0xFF);
        prop_assert_eq!(r.get_field(lsb2, 8), v2);
    }

    /// Dual-WL compute readouts are involutive w.r.t. operand order
    /// (AND/NOR are symmetric).
    #[test]
    fn bl_compute_is_symmetric(a in any::<u64>(), b in any::<u64>()) {
        let g = ArrayGeometry { rows: 4, cols: 64, dummy_rows: 1, interleave: 1 };
        let mut arr = SramArray::new(g);
        arr.write(RowAddr::Main(0), &BitRow::from_u64(64, a)).unwrap();
        arr.write(RowAddr::Main(1), &BitRow::from_u64(64, b)).unwrap();
        let ab = arr.bl_compute(RowAddr::Main(0), RowAddr::Main(1)).unwrap();
        let ba = arr.bl_compute(RowAddr::Main(1), RowAddr::Main(0)).unwrap();
        prop_assert_eq!(&ab.and, &ba.and);
        prop_assert_eq!(&ab.nor, &ba.nor);
    }

    /// Writing then reading any row is the identity.
    #[test]
    fn write_read_identity(v in any::<u64>(), row in 0usize..8) {
        let g = ArrayGeometry { rows: 8, cols: 64, dummy_rows: 2, interleave: 4 };
        let mut arr = SramArray::new(g);
        let r = BitRow::from_u64(64, v);
        arr.write(RowAddr::Main(row), &r).unwrap();
        prop_assert_eq!(arr.read(RowAddr::Main(row)).unwrap(), r);
    }
}
