//! Property tests for the bit-row and array invariants, and for the
//! limb-parallel lane engine against a per-bit reference implementation.

use bpimc_array::{ArrayGeometry, BitRow, LaneMasks, RowAddr, SramArray};
use proptest::prelude::*;

/// A random row of `width` columns built bit by bit from a seed (the
/// per-bit path, deliberately NOT the limb constructors under test).
fn seeded_row(width: usize, seed: u64) -> BitRow {
    let mut r = BitRow::zeros(width);
    let mut s = seed | 1;
    for i in 0..width {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        r.set(i, s >> 63 == 1);
    }
    r
}

/// Per-bit reference for the lane adder: textbook ripple-carry within each
/// lane, carries cut at lane boundaries.
fn lane_add_reference(
    a: &BitRow,
    b: &BitRow,
    carry_in: bool,
    cols: usize,
    seg: usize,
) -> (BitRow, BitRow) {
    let mut sum = BitRow::zeros(cols);
    let mut cout = BitRow::zeros(cols);
    for lane in 0..cols / seg {
        let mut c = carry_in;
        for k in 0..seg {
            let i = lane * seg + k;
            let (x, y) = (a.get(i), b.get(i));
            sum.set(i, x ^ y ^ c);
            c = (x & y) | ((x ^ y) & c);
        }
        cout.set(lane * seg + seg - 1, c);
    }
    (sum, cout)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The limb-parallel lane adder is bit-exact against the per-bit
    /// ripple-carry reference across row widths 128-1024 and all paper
    /// precisions (2/4/8-bit plus the 16/32-bit extensions).
    #[test]
    fn lane_add_matches_per_bit_reference(
        width_step in 0usize..8,
        seg_pick in 0usize..5,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        cin in any::<bool>(),
    ) {
        let cols = 128 + width_step * 128; // 128, 256, ..., 1024
        let seg = [2usize, 4, 8, 16, 32][seg_pick];
        let a = seeded_row(cols, seed_a);
        let b = seeded_row(cols, seed_b);
        let m = LaneMasks::new(cols, seg);
        let (sum, cout) = m.lane_add(&a, &b, cin);
        let (rsum, rcout) = lane_add_reference(&a, &b, cin, cols, seg);
        prop_assert_eq!(&sum, &rsum, "sum mismatch at {} cols / {}-bit lanes", cols, seg);
        prop_assert_eq!(&cout, &rcout, "carry mismatch at {} cols / {}-bit lanes", cols, seg);
    }

    /// The readout-path adder (AND/NOR inputs, the form the FA-Logics
    /// hardware sees) agrees with the operand-path adder everywhere.
    #[test]
    fn readout_adder_matches_operand_adder(
        width_step in 0usize..8,
        seg_pick in 0usize..5,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        cin in any::<bool>(),
    ) {
        let cols = 128 + width_step * 128;
        let seg = [2usize, 4, 8, 16, 32][seg_pick];
        let a = seeded_row(cols, seed_a);
        let b = seeded_row(cols, seed_b);
        let m = LaneMasks::new(cols, seg);
        let and = &a & &b;
        let nor = BitRow::nor_of(&a, &b);
        prop_assert_eq!(m.lane_add_from_readout(&and, &nor, cin), m.lane_add(&a, &b, cin));
    }

    /// Whole-row shifts match the per-bit definition on wide (heap-backed)
    /// rows as well as inline ones.
    #[test]
    fn row_shifts_match_per_bit_reference(
        width_step in 0usize..8,
        k in 0usize..130,
        seed in any::<u64>(),
    ) {
        let cols = 128 + width_step * 128;
        let r = seeded_row(cols, seed);
        let l = r.shl_bits(k);
        let s = r.shr_bits(k);
        for i in 0..cols {
            prop_assert_eq!(l.get(i), i >= k && r.get(i - k));
            prop_assert_eq!(s.get(i), i + k < cols && r.get(i + k));
        }
    }

    /// Lane-shift and masked select match their per-bit definitions.
    #[test]
    fn lane_shift_and_select_match_reference(
        width_step in 0usize..8,
        seg_pick in 0usize..5,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        seed_m in any::<u64>(),
    ) {
        let cols = 128 + width_step * 128;
        let seg = [2usize, 4, 8, 16, 32][seg_pick];
        let m = LaneMasks::new(cols, seg);
        let data = seeded_row(cols, seed_a);
        let shifted = m.lane_shl1(&data);
        for i in 0..cols {
            let expect = i % seg != 0 && data.get(i - 1);
            prop_assert_eq!(shifted.get(i), expect, "lane shift bit {}", i);
        }
        let t = seeded_row(cols, seed_b);
        let mask = seeded_row(cols, seed_m);
        let sel = mask.select(&t, &data);
        for i in 0..cols {
            prop_assert_eq!(sel.get(i), if mask.get(i) { t.get(i) } else { data.get(i) });
        }
    }

    /// The whole-row carry-propagating add equals big-integer addition.
    #[test]
    fn wrapping_row_add_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let width = 128;
        let ra = BitRow::from_limbs(width, vec![a as u64, (a >> 64) as u64]);
        let rb = BitRow::from_limbs(width, vec![b as u64, (b >> 64) as u64]);
        let s = ra.wrapping_row_add(&rb);
        let expect = a.wrapping_add(b);
        prop_assert_eq!(s.limbs(), &[expect as u64, (expect >> 64) as u64]);
    }
}

proptest! {
    /// BitRow logic matches u128 reference arithmetic for any width <= 128.
    #[test]
    fn bitrow_logic_matches_u128(a in any::<u128>(), b in any::<u128>(), width in 1usize..=128) {
        let mask = if width == 128 { u128::MAX } else { (1u128 << width) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut ra = BitRow::zeros(width);
        let mut rb = BitRow::zeros(width);
        for i in 0..width {
            ra.set(i, (a >> i) & 1 == 1);
            rb.set(i, (b >> i) & 1 == 1);
        }
        let to_u128 = |r: &BitRow| -> u128 {
            (0..width).fold(0u128, |acc, i| acc | ((r.get(i) as u128) << i))
        };
        prop_assert_eq!(to_u128(&(&ra & &rb)), a & b);
        prop_assert_eq!(to_u128(&(&ra | &rb)), a | b);
        prop_assert_eq!(to_u128(&(&ra ^ &rb)), a ^ b);
        prop_assert_eq!(to_u128(&!&ra), !a & mask);
        prop_assert_eq!(ra.count_ones(), a.count_ones() as usize);
    }

    /// Field writes are isolated: writing one field never disturbs another
    /// disjoint field.
    #[test]
    fn field_writes_are_isolated(
        v1 in 0u64..256,
        v2 in 0u64..256,
        lsb1 in 0usize..15,
        gap in 1usize..10,
    ) {
        let lsb2 = lsb1 + 8 + gap;
        let mut r = BitRow::zeros(64);
        r.set_field(lsb1, 8, v1);
        r.set_field(lsb2, 8, v2);
        prop_assert_eq!(r.get_field(lsb1, 8), v1);
        prop_assert_eq!(r.get_field(lsb2, 8), v2);
        // Overwrite the first field; the second must survive.
        r.set_field(lsb1, 8, v1 ^ 0xFF);
        prop_assert_eq!(r.get_field(lsb2, 8), v2);
    }

    /// Dual-WL compute readouts are involutive w.r.t. operand order
    /// (AND/NOR are symmetric).
    #[test]
    fn bl_compute_is_symmetric(a in any::<u64>(), b in any::<u64>()) {
        let g = ArrayGeometry { rows: 4, cols: 64, dummy_rows: 1, interleave: 1 };
        let mut arr = SramArray::new(g);
        arr.write(RowAddr::Main(0), &BitRow::from_u64(64, a)).unwrap();
        arr.write(RowAddr::Main(1), &BitRow::from_u64(64, b)).unwrap();
        let ab = arr.bl_compute(RowAddr::Main(0), RowAddr::Main(1)).unwrap();
        let ba = arr.bl_compute(RowAddr::Main(1), RowAddr::Main(0)).unwrap();
        prop_assert_eq!(&ab.and, &ba.and);
        prop_assert_eq!(&ab.nor, &ba.nor);
    }

    /// Writing then reading any row is the identity.
    #[test]
    fn write_read_identity(v in any::<u64>(), row in 0usize..8) {
        let g = ArrayGeometry { rows: 8, cols: 64, dummy_rows: 2, interleave: 4 };
        let mut arr = SramArray::new(g);
        let r = BitRow::from_u64(64, v);
        arr.write(RowAddr::Main(row), &r).unwrap();
        prop_assert_eq!(arr.read(RowAddr::Main(row)).unwrap(), r);
    }
}
