//! Reconfigurable bit-precision.
//!
//! The carry-propagation chain is cut at word boundaries by the
//! reconfiguration muxes (the paper's MX3 / "Reconfig. Ctrl."). A precision
//! of `P` partitions the row into independent `P`-bit lanes; the paper
//! implements 2/4/8-bit and notes 16/32-bit follow the same construction,
//! so all five are supported here.

use std::fmt;

/// Operating word width of the reconfigurable datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 2-bit words (the base precision unit).
    P2,
    /// 4-bit words.
    P4,
    /// 8-bit words (the paper's headline configuration).
    P8,
    /// 16-bit words (extension, same construction).
    P16,
    /// 32-bit words (extension, same construction).
    P32,
}

impl Precision {
    /// All supported precisions, narrowest first.
    pub const ALL: [Precision; 5] = [
        Precision::P2,
        Precision::P4,
        Precision::P8,
        Precision::P16,
        Precision::P32,
    ];

    /// The word width in bits.
    pub fn bits(&self) -> usize {
        match self {
            Precision::P2 => 2,
            Precision::P4 => 4,
            Precision::P8 => 8,
            Precision::P16 => 16,
            Precision::P32 => 32,
        }
    }

    /// The precision for a bit count.
    ///
    /// # Errors
    ///
    /// Returns the offending value when it is not one of 2/4/8/16/32.
    pub fn try_from_bits(bits: usize) -> Result<Self, UnsupportedPrecision> {
        match bits {
            2 => Ok(Precision::P2),
            4 => Ok(Precision::P4),
            8 => Ok(Precision::P8),
            16 => Ok(Precision::P16),
            32 => Ok(Precision::P32),
            other => Err(UnsupportedPrecision(other)),
        }
    }

    /// Number of whole `P`-bit lanes in a row of `cols` columns.
    pub fn lanes(&self, cols: usize) -> usize {
        cols / self.bits()
    }

    /// Number of whole *product* lanes (each `2P` wide, per Fig. 6 the
    /// product of a `P`-bit multiply spans two adjacent precision units).
    pub fn product_lanes(&self, cols: usize) -> usize {
        cols / (2 * self.bits())
    }

    /// The maximum value a word of this precision can hold.
    pub fn max_value(&self) -> u64 {
        (1u64 << self.bits()) - 1
    }

    /// Bit mask of a word of this precision.
    pub fn mask(&self) -> u64 {
        self.max_value()
    }

    /// Number of 2-bit FF precision units that tile one lane (the paper's
    /// Fig. 6 structure: "2-bit FF based structure is a perfect fit ...
    /// there will be no redundant hardware").
    pub fn ff_units_per_lane(&self) -> usize {
        self.bits() / 2
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// Error for unsupported precision widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedPrecision(pub usize);

impl fmt::Display for UnsupportedPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported precision {} (expected 2, 4, 8, 16 or 32)",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedPrecision {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for p in Precision::ALL {
            assert_eq!(Precision::try_from_bits(p.bits()).unwrap(), p);
        }
        assert_eq!(Precision::try_from_bits(3), Err(UnsupportedPrecision(3)));
    }

    #[test]
    fn lane_counts_on_the_paper_macro() {
        assert_eq!(Precision::P8.lanes(128), 16);
        assert_eq!(Precision::P8.product_lanes(128), 8);
        assert_eq!(Precision::P2.lanes(128), 64);
        assert_eq!(Precision::P32.lanes(128), 4);
    }

    #[test]
    fn ff_units_tile_exactly() {
        assert_eq!(Precision::P2.ff_units_per_lane(), 1);
        assert_eq!(Precision::P8.ff_units_per_lane(), 4);
        // Doubling precision doubles storage — the "perfect fit" property.
        for w in [Precision::P2, Precision::P4, Precision::P8, Precision::P16] {
            let next = Precision::try_from_bits(w.bits() * 2).unwrap();
            assert_eq!(next.ff_units_per_lane(), 2 * w.ff_units_per_lane());
        }
    }

    #[test]
    fn masks() {
        assert_eq!(Precision::P2.mask(), 0b11);
        assert_eq!(Precision::P8.mask(), 0xFF);
        assert_eq!(Precision::P32.max_value(), u32::MAX as u64);
    }
}
