//! The multiplier flip-flop bank.
//!
//! Before a multiplication the multiplier operand is loaded — *reversed*
//! (`B[3:0] -> B[0:3]`, Fig. 5) — into per-lane FF shift registers built
//! from 2-bit precision units (Fig. 6). Each add-and-shift step consumes the
//! current front bit and shifts the register ("R-Shift for MUX Sel.",
//! Fig. 4), so the multiplier is consumed MSB-first.

use crate::precision::Precision;

/// Per-lane multiplier shift registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FfBank {
    precision: Precision,
    /// One register per lane; front bit at index 0.
    regs: Vec<Vec<bool>>,
}

impl FfBank {
    /// An empty bank for `lanes` word lanes of the given precision.
    pub fn new(precision: Precision, lanes: usize) -> Self {
        Self {
            precision,
            regs: vec![vec![false; precision.bits()]; lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.regs.len()
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Loads lane `lane` with multiplier `value`. The hardware reverses the
    /// operand on load so the register presents the MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `value` exceeds the precision.
    pub fn load(&mut self, lane: usize, value: u64) {
        assert!(
            value <= self.precision.max_value(),
            "multiplier {value:#x} too wide"
        );
        let bits = self.precision.bits();
        let reg = &mut self.regs[lane];
        for (k, slot) in reg.iter_mut().enumerate() {
            // Front (index 0) gets the MSB: the reversal B[3:0] -> B[0:3].
            *slot = (value >> (bits - 1 - k)) & 1 == 1;
        }
    }

    /// The current front bit of lane `lane` (the MUX select of this step).
    pub fn front(&self, lane: usize) -> bool {
        self.regs[lane][0]
    }

    /// All lanes' front bits.
    pub fn fronts(&self) -> Vec<bool> {
        self.regs.iter().map(|r| r[0]).collect()
    }

    /// Shifts every lane register one position (consuming the front bits).
    pub fn shift(&mut self) {
        for reg in &mut self.regs {
            reg.rotate_left(1);
            let last = reg.len() - 1;
            reg[last] = false;
        }
    }

    /// Total number of 2-bit FF units instantiated (for the area model).
    pub fn ff_unit_count(&self) -> usize {
        self.lanes() * self.precision.ff_units_per_lane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_reverses_the_operand() {
        let mut bank = FfBank::new(Precision::P4, 2);
        bank.load(0, 0b1011);
        // MSB-first consumption: 1, 0, 1, 1.
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(bank.front(0));
            bank.shift();
        }
        assert_eq!(seen, vec![true, false, true, true]);
    }

    #[test]
    fn lanes_are_independent() {
        let mut bank = FfBank::new(Precision::P2, 3);
        bank.load(0, 0b01);
        bank.load(1, 0b10);
        bank.load(2, 0b11);
        assert_eq!(bank.fronts(), vec![false, true, true]);
        bank.shift();
        assert_eq!(bank.fronts(), vec![true, false, true]);
    }

    #[test]
    fn exhausted_register_reads_zero() {
        let mut bank = FfBank::new(Precision::P2, 1);
        bank.load(0, 0b11);
        bank.shift();
        bank.shift();
        assert!(!bank.front(0));
    }

    #[test]
    fn ff_unit_accounting() {
        let bank = FfBank::new(Precision::P8, 16);
        assert_eq!(bank.ff_unit_count(), 16 * 4);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn oversized_multiplier_rejected() {
        let mut bank = FfBank::new(Precision::P2, 1);
        bank.load(0, 4);
    }
}
