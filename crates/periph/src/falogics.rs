//! The transmission-gate carry-select full adder (the paper's eqs. (1)-(2)).
//!
//! Inputs per column are the two SA outputs of a dual-WL access:
//! `and_ab = A AND B` and `nor_ab = NOR(A, B)`. From these the block derives
//! `A XOR B` (as `~AND AND ~NOR`) and `A OR B` (as `~NOR`), then *selects*
//! between pre-computed alternatives with the incoming carry:
//!
//! ```text
//! S[n] =  C[n-1] ? XNOR(A,B) : XOR(A,B)      (eq. 1)
//! C[n] =  C[n-1] ? OR(A,B)   : AND(A,B)      (eq. 2)
//! ```
//!
//! Because both alternatives exist before the carry arrives, the carry path
//! crosses only one transmission gate per bit.

/// The sum output of one FA-Logics column.
///
/// # Examples
///
/// ```
/// use bpimc_periph::{fa_carry, fa_sum};
/// // A = 1, B = 0 (so AND = 0, NOR = 0), carry-in = 1 => sum 0, carry 1.
/// assert!(!fa_sum(false, false, true));
/// assert!(fa_carry(false, false, true));
/// ```
pub fn fa_sum(and_ab: bool, nor_ab: bool, carry_in: bool) -> bool {
    let xor = !and_ab && !nor_ab;
    if carry_in {
        !xor
    } else {
        xor
    }
}

/// The carry output of one FA-Logics column (eq. 2).
pub fn fa_carry(and_ab: bool, nor_ab: bool, carry_in: bool) -> bool {
    if carry_in {
        !nor_ab // A OR B
    } else {
        and_ab
    }
}

/// Reference check helper: the SA outputs for operand bits `(a, b)`.
pub fn sa_outputs(a: bool, b: bool) -> (bool, bool) {
    (a && b, !a && !b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_a_textbook_full_adder_exhaustively() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let (and_ab, nor_ab) = sa_outputs(a, b);
                    let sum = fa_sum(and_ab, nor_ab, c);
                    let carry = fa_carry(and_ab, nor_ab, c);
                    let expect = a as u8 + b as u8 + c as u8;
                    assert_eq!(sum, expect & 1 == 1, "sum a={a} b={b} c={c}");
                    assert_eq!(carry, expect >= 2, "carry a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn matches_paper_truth_table() {
        // The paper's Fig. 3 table, columns (A, B, Cin) -> (S, Cout).
        let rows = [
            // A, B, Cin, S, Cout
            (0, 0, 0, 0, 0),
            (0, 1, 0, 1, 0),
            (1, 0, 0, 1, 0),
            (1, 1, 0, 0, 1),
            (0, 0, 1, 1, 0),
            (0, 1, 1, 0, 1),
            (1, 0, 1, 0, 1),
            (1, 1, 1, 1, 1),
        ];
        for (a, b, c, s, cout) in rows {
            let (and_ab, nor_ab) = sa_outputs(a == 1, b == 1);
            assert_eq!(fa_sum(and_ab, nor_ab, c == 1), s == 1, "{a}{b}{c}");
            assert_eq!(fa_carry(and_ab, nor_ab, c == 1), cout == 1, "{a}{b}{c}");
        }
    }
}
