//! One column's peripheral slice: FA-Logics plus the MX0/MX1/MX2 muxes.
//!
//! The Y-path is modelled structurally: it receives the column's SA outputs
//! and its right-hand neighbour's propagated signals, and produces a carry
//! for the left-hand neighbour plus the selected write-back bit. The
//! [`crate::carrychain::CarryChain`] composes a row of these.

use crate::falogics::{fa_carry, fa_sum};
use crate::logicunit::LogicOp;

/// The per-column sense-amplifier outputs feeding one Y-path.
///
/// In dual-WL mode these are `A AND B` / `NOR(A, B)`; in single-WL mode the
/// same wires carry `A` / `~A` (the SA simply senses the one accessed cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnInputs {
    /// BLT sense output (`A AND B`, or `A` for single-WL).
    pub and_ab: bool,
    /// BLB sense output (`NOR(A,B)`, or `~A` for single-WL).
    pub nor_ab: bool,
}

impl ColumnInputs {
    /// Inputs seen during a dual word-line compute access.
    pub fn dual(a: bool, b: bool) -> Self {
        Self {
            and_ab: a && b,
            nor_ab: !a && !b,
        }
    }

    /// Inputs seen during a single word-line access of a cell storing `a`.
    pub fn single(a: bool) -> Self {
        Self {
            and_ab: a,
            nor_ab: !a,
        }
    }
}

/// What MX0/MX1/MX2 route to the write driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteBackSel {
    /// A simple-logic result (MX2 + LogicSEL path).
    Logic(LogicOp),
    /// The local FA sum (ADD / SUB).
    Sum,
    /// The right neighbour's propagated bit (shift and add-and-shift: the
    /// value written at column `n` originates at column `n-1`).
    Propagated,
    /// The column's own single-WL data (COPY).
    Data,
    /// The inverted single-WL data (NOT).
    NotData,
    /// Constant zero (initialisation of dummy rows).
    Zero,
}

/// The combinational outputs of one Y-path evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YPathOut {
    /// Carry to the left neighbour (also reused as the data-propagation
    /// path for shifts, per the paper's single-WL shift description).
    pub carry_out: bool,
    /// The bit driven into the write-back path.
    pub writeback: bool,
    /// The local sum (exposed so add-and-shift can propagate it left).
    pub sum: bool,
}

/// One column's Y-path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct YPath;

impl YPath {
    /// Evaluates the slice.
    ///
    /// * `inputs` — the SA outputs for this column;
    /// * `carry_in` — carry from the right neighbour (or the segment's
    ///   initial carry at a word boundary, selected by MX3);
    /// * `prop_in` — the right neighbour's propagated bit (its sum during
    ///   add-and-shift, its data during plain shift, or the FF-latched
    ///   accumulator bit during a multiply pass-through step);
    /// * `sel` — the write-back selection.
    pub fn eval(
        &self,
        inputs: ColumnInputs,
        carry_in: bool,
        prop_in: bool,
        sel: WriteBackSel,
    ) -> YPathOut {
        let sum = fa_sum(inputs.and_ab, inputs.nor_ab, carry_in);
        let carry_out = match sel {
            // During a single-WL shift, the FA-Logics block forwards the raw
            // data onto the carry node (the paper: "the FA-Logics outputs
            // the original data (A) to the C[N] node").
            WriteBackSel::Data | WriteBackSel::NotData | WriteBackSel::Propagated
                if inputs.and_ab != inputs.nor_ab =>
            {
                inputs.and_ab
            }
            _ => fa_carry(inputs.and_ab, inputs.nor_ab, carry_in),
        };
        let writeback = match sel {
            WriteBackSel::Logic(op) => {
                // Reconstruct the operand AND/NOR views; in dual mode these
                // are the wires themselves.
                let d = bpimc_array::DualReadout {
                    and: one_bit(inputs.and_ab),
                    nor: one_bit(inputs.nor_ab),
                };
                op.eval(&d).get(0)
            }
            WriteBackSel::Sum => sum,
            WriteBackSel::Propagated => prop_in,
            WriteBackSel::Data => inputs.and_ab,
            WriteBackSel::NotData => inputs.nor_ab,
            WriteBackSel::Zero => false,
        };
        YPathOut {
            carry_out,
            writeback,
            sum,
        }
    }
}

fn one_bit(b: bool) -> bpimc_array::BitRow {
    let mut r = bpimc_array::BitRow::zeros(1);
    r.set(0, b);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_selection_matches_fa() {
        let y = YPath;
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = y.eval(ColumnInputs::dual(a, b), c, false, WriteBackSel::Sum);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(out.writeback, total & 1 == 1);
                    assert_eq!(out.carry_out, total >= 2);
                    assert_eq!(out.sum, out.writeback);
                }
            }
        }
    }

    #[test]
    fn propagated_selection_ignores_local_data() {
        let y = YPath;
        let out = y.eval(
            ColumnInputs::dual(true, true),
            false,
            true,
            WriteBackSel::Propagated,
        );
        assert!(out.writeback, "wb must be the propagated bit");
    }

    #[test]
    fn single_wl_copy_and_not() {
        let y = YPath;
        for a in [false, true] {
            let c = y.eval(ColumnInputs::single(a), false, false, WriteBackSel::Data);
            assert_eq!(c.writeback, a);
            // The data rides the carry node toward the left neighbour.
            assert_eq!(c.carry_out, a);
            let n = y.eval(ColumnInputs::single(a), false, false, WriteBackSel::NotData);
            assert_eq!(n.writeback, !a);
        }
    }

    #[test]
    fn logic_selection_uses_logic_unit() {
        let y = YPath;
        let out = y.eval(
            ColumnInputs::dual(true, false),
            false,
            false,
            WriteBackSel::Logic(LogicOp::Xor),
        );
        assert!(out.writeback);
        let out = y.eval(
            ColumnInputs::dual(true, true),
            false,
            false,
            WriteBackSel::Logic(LogicOp::Nand),
        );
        assert!(!out.writeback);
    }

    #[test]
    fn zero_writes_zero() {
        let y = YPath;
        let out = y.eval(
            ColumnInputs::dual(true, true),
            true,
            true,
            WriteBackSel::Zero,
        );
        assert!(!out.writeback);
    }
}
