//! Column peripheral models: the paper's "Y-path".
//!
//! Each column of the macro carries, beneath its sense amplifiers, the
//! near-memory computing slice of Fig. 3:
//!
//! * **FA-Logics** ([`falogics`]): the transmission-gate *carry-select* full
//!   adder. Both candidate sums (`A XOR B`, `A XNOR B`) and both candidate
//!   carries (`A AND B`, `A OR B`) are pre-computed from the SA outputs;
//!   the rippling carry merely steers transmission gates — that is why the
//!   paper's adder is 1.8-2.2x faster than a logic-gate ripple adder.
//! * **Logic unit** ([`logicunit`]): one OR gate, three inverters and four
//!   transmission gates produce every two-input logic function from the
//!   `AND`/`NOR` SA pair.
//! * **Y-path** ([`ypath`]): the per-column mux structure (MX0/MX1/MX2)
//!   selecting what is written back: a logic result, the local sum, or the
//!   neighbour's sum/data for shift and add-and-shift operations.
//! * **Carry chain** ([`carrychain`]): the row-wide composition of Y-paths,
//!   segmented at word boundaries by the reconfiguration muxes (MX3) to
//!   implement 2/4/8/16/32-bit precision ([`precision::Precision`]).
//! * **FF bank** ([`ffbank`]): the flip-flops that hold the (reversed)
//!   multiplier operand and shift one position per add-and-shift step.

pub mod carrychain;
pub mod falogics;
pub mod ffbank;
pub mod logicunit;
pub mod precision;
pub mod ypath;

pub use carrychain::{AddOutcome, CarryChain};
pub use falogics::{fa_carry, fa_sum};
pub use ffbank::FfBank;
pub use logicunit::LogicOp;
pub use precision::Precision;
pub use ypath::{ColumnInputs, WriteBackSel, YPath};
