//! The row-wide composition of Y-paths with reconfigurable segmentation.
//!
//! A [`CarryChain`] slices the row into independent word lanes (the MX3
//! reconfiguration muxes of Fig. 6 block carry/shift propagation across lane
//! boundaries) and evaluates whole-row operations — exactly what the
//! hardware's transmission-gate carry path does in one cycle.
//!
//! Two implementations coexist:
//!
//! * the **limb-parallel engine** (the default): every operation is a
//!   handful of `u64`-limb ops via [`LaneMasks`], so one host instruction
//!   covers 64 columns, mirroring the hardware's bit-parallelism;
//! * the **structural reference** ([`CarryChain::add_bitwise`],
//!   [`CarryChain::mult_step_bitwise`], …): the original column-by-column
//!   ripple through [`YPath`] slices. It is kept as the ground truth the
//!   property tests compare the engine against bit-for-bit.
//!
//! Both compute the same function; only host time differs. Simulated cycle
//! counts are decided by the macro executor, not by either code path.

use crate::precision::Precision;
use crate::ypath::{ColumnInputs, WriteBackSel, YPath};
use bpimc_array::{BitRow, DualReadout, LaneMasks};

/// Result of a row-wide addition.
#[derive(Debug, Clone, PartialEq)]
pub struct AddOutcome {
    /// Per-column sums.
    pub sum: BitRow,
    /// Carry out of each lane's MSB (lane order, LSB-most lane first).
    pub carries: Vec<bool>,
}

/// A carry chain configured for a row width and a lane (segment) width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarryChain {
    masks: LaneMasks,
}

impl CarryChain {
    /// A chain over `cols` columns with lanes of `precision` width.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    pub fn new(cols: usize, precision: Precision) -> Self {
        Self::with_segment_bits(cols, precision.bits())
    }

    /// A chain with an explicit segment width. Multiplication configures
    /// `2 * P` (the product spans two precision units, Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `segment_bits` is zero.
    pub fn with_segment_bits(cols: usize, segment_bits: usize) -> Self {
        Self {
            masks: LaneMasks::new(cols, segment_bits),
        }
    }

    /// Row width in columns.
    pub fn cols(&self) -> usize {
        self.masks.cols()
    }

    /// Lane width in bits.
    pub fn segment_bits(&self) -> usize {
        self.masks.segment_bits()
    }

    /// Number of whole lanes (leftover columns at the top are idle).
    pub fn lane_count(&self) -> usize {
        self.masks.lane_count()
    }

    /// The precomputed lane masks backing this chain.
    pub fn masks(&self) -> &LaneMasks {
        &self.masks
    }

    /// Column range of lane `lane`.
    fn lane_range(&self, lane: usize) -> std::ops::Range<usize> {
        let lo = lane * self.segment_bits();
        lo..lo + self.segment_bits()
    }

    /// Row-wide `A + B` (+ `carry_in` into every lane's LSB — `true` is the
    /// two's-complement `+1` used by SUB). Limb-parallel.
    pub fn add(&self, readout: &DualReadout, carry_in: bool) -> AddOutcome {
        self.check_width(readout.and.width());
        let (sum, cout) = self
            .masks
            .lane_add_from_readout(&readout.and, &readout.nor, carry_in);
        let carries = (0..self.lane_count())
            .map(|lane| cout.get(self.lane_range(lane).end - 1))
            .collect();
        AddOutcome { sum, carries }
    }

    /// Row-wide add-and-shift: per lane, `(A + B) << 1` written in a single
    /// cycle (each column writes back its right neighbour's sum; the lane
    /// LSB receives zero). Limb-parallel.
    pub fn add_shift(&self, readout: &DualReadout) -> BitRow {
        let added = self.add(readout, false);
        self.shift_row(&added.sum)
    }

    /// Per-lane logical left shift by one of raw row data (the single-WL
    /// shift operation). Limb-parallel.
    pub fn shift_row(&self, data: &BitRow) -> BitRow {
        self.check_width(data.width());
        self.masks.lane_shl1(data)
    }

    /// One multiplication step: per lane, writes `(sum) << 1` when the
    /// lane's multiplier FF bit is 1, else `(acc) << 1` where `acc` is the
    /// Y-path FF copy of the previously written accumulator.
    ///
    /// When `final_step` is true the shift is suppressed (the last partial
    /// product is accumulated with a plain ADD, per Fig. 5). Limb-parallel.
    ///
    /// # Panics
    ///
    /// Panics if `ff_bits` does not have one entry per lane.
    pub fn mult_step(
        &self,
        readout: &DualReadout,
        acc_latch: &BitRow,
        ff_bits: &[bool],
        final_step: bool,
    ) -> BitRow {
        self.check_width(acc_latch.width());
        let (sum, _cout) = self
            .masks
            .lane_add_from_readout(&readout.and, &readout.nor, false);
        let ff_mask = self.masks.expand_lane_bits(ff_bits);
        self.masks
            .select_shl1(&ff_mask, &sum, acc_latch, final_step)
    }

    // ------------------------------------------------------------------
    // Structural (per-column) reference implementations
    // ------------------------------------------------------------------

    /// [`CarryChain::add`] computed column by column through the structural
    /// [`YPath`] model — the reference the limb engine is verified against.
    pub fn add_bitwise(&self, readout: &DualReadout, carry_in: bool) -> AddOutcome {
        self.check_width(readout.and.width());
        let y = YPath;
        let mut sum = BitRow::zeros(self.cols());
        let mut carries = Vec::with_capacity(self.lane_count());
        for lane in 0..self.lane_count() {
            let mut c = carry_in;
            for col in self.lane_range(lane) {
                let inp = ColumnInputs {
                    and_ab: readout.and.get(col),
                    nor_ab: readout.nor.get(col),
                };
                let out = y.eval(inp, c, false, WriteBackSel::Sum);
                sum.set(col, out.writeback);
                c = out.carry_out;
            }
            carries.push(c);
        }
        AddOutcome { sum, carries }
    }

    /// [`CarryChain::shift_row`] computed column by column (reference).
    pub fn shift_row_bitwise(&self, data: &BitRow) -> BitRow {
        self.check_width(data.width());
        let mut out = BitRow::zeros(self.cols());
        for lane in 0..self.lane_count() {
            let r = self.lane_range(lane);
            for col in r.clone() {
                let v = if col == r.start {
                    false
                } else {
                    data.get(col - 1)
                };
                out.set(col, v);
            }
        }
        out
    }

    /// [`CarryChain::mult_step`] computed column by column (reference).
    ///
    /// # Panics
    ///
    /// Panics if `ff_bits` does not have one entry per lane.
    #[allow(clippy::needless_range_loop)]
    pub fn mult_step_bitwise(
        &self,
        readout: &DualReadout,
        acc_latch: &BitRow,
        ff_bits: &[bool],
        final_step: bool,
    ) -> BitRow {
        assert_eq!(ff_bits.len(), self.lane_count(), "one FF bit per lane");
        self.check_width(acc_latch.width());
        let added = self.add_bitwise(readout, false);
        let mut out = BitRow::zeros(self.cols());
        for lane in 0..self.lane_count() {
            let r = self.lane_range(lane);
            let src = if ff_bits[lane] { &added.sum } else { acc_latch };
            for col in r.clone() {
                let v = if final_step {
                    src.get(col)
                } else if col == r.start {
                    false
                } else {
                    src.get(col - 1)
                };
                out.set(col, v);
            }
        }
        out
    }

    fn check_width(&self, got: usize) {
        assert_eq!(
            got,
            self.cols(),
            "row width {got} does not match chain width {}",
            self.cols()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn readout(cols: usize, a: u64, b: u64) -> DualReadout {
        let ra = BitRow::from_u64(cols, a);
        let rb = BitRow::from_u64(cols, b);
        DualReadout {
            and: &ra & &rb,
            nor: &!&ra & &!&rb,
        }
    }

    #[test]
    fn add_respects_lane_boundaries() {
        // Two 8-bit lanes in a 16-column row: 0xFF + 0x01 must not carry
        // into the upper lane.
        let chain = CarryChain::new(16, Precision::P8);
        let out = chain.add(&readout(16, 0x00FF, 0x0001), false);
        assert_eq!(out.sum.get_field(0, 8), 0x00);
        assert_eq!(out.sum.get_field(8, 8), 0x00, "no carry leak into lane 1");
        assert_eq!(out.carries, vec![true, false]);
    }

    #[test]
    fn carry_in_implements_plus_one_per_lane() {
        let chain = CarryChain::new(16, Precision::P8);
        let out = chain.add(&readout(16, 0x0102, 0x0304), true);
        assert_eq!(out.sum.get_field(0, 8), 0x07); // 2+4+1
        assert_eq!(out.sum.get_field(8, 8), 0x05); // 1+3+1
    }

    #[test]
    fn add_shift_doubles_the_sum() {
        let chain = CarryChain::new(16, Precision::P8);
        let out = chain.add_shift(&readout(16, 5, 9));
        assert_eq!(out.get_field(0, 8), (5 + 9) * 2);
    }

    #[test]
    fn shift_row_is_per_lane() {
        let chain = CarryChain::new(8, Precision::P4);
        let data = BitRow::from_u64(8, 0b1000_1001);
        let out = chain.shift_row(&data);
        assert_eq!(out.get_field(0, 4), 0b0010);
        assert_eq!(
            out.get_field(4, 4),
            0b0000,
            "lane MSB drops, no cross-lane leak"
        );
    }

    #[test]
    fn mult_step_selects_sum_or_latch() {
        let chain = CarryChain::with_segment_bits(8, 8);
        let acc = BitRow::from_u64(8, 0b0000_0110);
        // ff = 1: (acc + a) << 1.
        let r = readout(8, 0b0000_0110, 0b0000_0011);
        let out = chain.mult_step(&r, &acc, &[true], false);
        assert_eq!(out.get_field(0, 8), ((0b110 + 0b011) << 1) & 0xFF);
        // ff = 0: acc << 1 regardless of the readout.
        let out = chain.mult_step(&r, &acc, &[false], false);
        assert_eq!(out.get_field(0, 8), 0b0000_1100);
        // final step suppresses the shift.
        let out = chain.mult_step(&r, &acc, &[true], true);
        assert_eq!(out.get_field(0, 8), 0b110 + 0b011);
    }

    #[test]
    fn idle_top_columns_stay_zero() {
        // 20 columns at 8-bit precision: 2 lanes + 4 idle columns that must
        // read zero on every path.
        let chain = CarryChain::new(20, Precision::P8);
        let ra = BitRow::ones(20);
        let rb = BitRow::ones(20);
        let r = DualReadout {
            and: &ra & &rb,
            nor: &!&ra & &!&rb,
        };
        let out = chain.add(&r, true);
        for col in 16..20 {
            assert!(!out.sum.get(col), "idle col {col}");
        }
        let m = chain.mult_step(&r, &ra, &[true, true], true);
        for col in 16..20 {
            assert!(!m.get(col), "idle col {col} after mult_step");
        }
    }

    proptest! {
        /// Lane-segmented addition equals per-word wrapping addition for
        /// every precision on random data.
        #[test]
        fn add_matches_reference(a in any::<u64>(), b in any::<u64>(), p in 0usize..5) {
            let precision = Precision::ALL[p];
            let bits = precision.bits();
            let chain = CarryChain::new(64, precision);
            let out = chain.add(&readout(64, a, b), false);
            for lane in 0..(64 / bits) {
                let wa = (a >> (lane * bits)) & precision.mask();
                let wb = (b >> (lane * bits)) & precision.mask();
                let expect = (wa + wb) & precision.mask();
                prop_assert_eq!(out.sum.get_field(lane * bits, bits), expect);
                let expect_carry = (wa + wb) > precision.mask();
                prop_assert_eq!(out.carries[lane], expect_carry);
            }
        }

        /// Subtraction built the paper's way (invert + add + 1) matches
        /// wrapping subtraction.
        #[test]
        fn invert_add_one_is_subtraction(a in any::<u32>(), b in any::<u32>()) {
            let chain = CarryChain::new(64, Precision::P32);
            let ra = BitRow::from_u64(64, a as u64 | ((a as u64) << 32));
            let rb_inv = !&BitRow::from_u64(64, b as u64 | ((b as u64) << 32));
            let r = DualReadout { and: &ra & &rb_inv, nor: &!&ra & &!&rb_inv };
            let out = chain.add(&r, true);
            let expect = a.wrapping_sub(b) as u64;
            prop_assert_eq!(out.sum.get_field(0, 32), expect);
            prop_assert_eq!(out.sum.get_field(32, 32), expect);
        }

        /// The limb-parallel adder matches the structural per-column
        /// reference bit-for-bit, carries included, on random rows, widths
        /// and segmentations.
        #[test]
        fn limb_add_matches_bitwise_reference(
            a in any::<u128>(),
            b in any::<u128>(),
            cols in 2usize..=128,
            seg_pick in 0usize..6,
            cin in any::<bool>(),
        ) {
            let seg = [2usize, 3, 4, 8, 16, 32][seg_pick].min(cols);
            let mut ra = BitRow::zeros(cols);
            let mut rb = BitRow::zeros(cols);
            for i in 0..cols {
                ra.set(i, (a >> i) & 1 == 1);
                rb.set(i, (b >> i) & 1 == 1);
            }
            let r = DualReadout { and: &ra & &rb, nor: &!&ra & &!&rb };
            let chain = CarryChain::with_segment_bits(cols, seg);
            let fast = chain.add(&r, cin);
            let slow = chain.add_bitwise(&r, cin);
            prop_assert_eq!(&fast.sum, &slow.sum, "sum mismatch cols={} seg={}", cols, seg);
            prop_assert_eq!(&fast.carries, &slow.carries, "carry mismatch cols={} seg={}", cols, seg);
        }

        /// The limb-parallel shift and mult-step match their per-column
        /// references bit-for-bit.
        #[test]
        fn limb_mult_step_matches_bitwise_reference(
            a in any::<u64>(),
            b in any::<u64>(),
            acc in any::<u64>(),
            ff_seed in any::<u64>(),
            final_step in any::<bool>(),
            seg_pick in 0usize..4,
        ) {
            let cols = 64;
            let seg = [4usize, 8, 16, 32][seg_pick];
            let chain = CarryChain::with_segment_bits(cols, seg);
            let r = readout(cols, a, b);
            let acc_row = BitRow::from_u64(cols, acc);
            let ff: Vec<bool> = (0..chain.lane_count()).map(|i| (ff_seed >> i) & 1 == 1).collect();
            let fast = chain.mult_step(&r, &acc_row, &ff, final_step);
            let slow = chain.mult_step_bitwise(&r, &acc_row, &ff, final_step);
            prop_assert_eq!(&fast, &slow);
            let data = BitRow::from_u64(cols, a);
            prop_assert_eq!(chain.shift_row(&data), chain.shift_row_bitwise(&data));
        }
    }
}
