//! The simple-logic unit: every two-input function from the SA pair.
//!
//! The hardware is one OR gate, three inverters and four transmission gates
//! steered by `LogicSEL` and the MX2 select; functionally, each operation is
//! a fixed combination of the `AND` and `NOR` sense-amplifier outputs.

use bpimc_array::BitRow;
use bpimc_array::DualReadout;
use std::fmt;
use std::str::FromStr;

/// A two-input bit-wise logic operation of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// `A AND B` — directly the BLT sense output.
    And,
    /// `~(A AND B)`.
    Nand,
    /// `A OR B` — inverse of the BLB sense output.
    Or,
    /// `NOR(A, B)` — directly the BLB sense output.
    Nor,
    /// `A XOR B` — `~AND AND ~NOR`.
    Xor,
    /// `~(A XOR B)`.
    Xnor,
}

impl LogicOp {
    /// All logic operations.
    pub const ALL: [LogicOp; 6] = [
        LogicOp::And,
        LogicOp::Nand,
        LogicOp::Or,
        LogicOp::Nor,
        LogicOp::Xor,
        LogicOp::Xnor,
    ];

    /// Evaluates the operation over a whole dual-WL readout.
    pub fn eval(&self, readout: &DualReadout) -> BitRow {
        match self {
            LogicOp::And => readout.and.clone(),
            LogicOp::Nand => !&readout.and,
            LogicOp::Or => readout.or(),
            LogicOp::Nor => readout.nor.clone(),
            LogicOp::Xor => readout.xor(),
            LogicOp::Xnor => !&readout.xor(),
        }
    }

    /// Scalar reference evaluation for one column.
    pub fn eval_bit(&self, a: bool, b: bool) -> bool {
        match self {
            LogicOp::And => a && b,
            LogicOp::Nand => !(a && b),
            LogicOp::Or => a || b,
            LogicOp::Nor => !(a || b),
            LogicOp::Xor => a != b,
            LogicOp::Xnor => a == b,
        }
    }
}

impl fmt::Display for LogicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogicOp::And => "AND",
            LogicOp::Nand => "NAND",
            LogicOp::Or => "OR",
            LogicOp::Nor => "NOR",
            LogicOp::Xor => "XOR",
            LogicOp::Xnor => "XNOR",
        };
        write!(f, "{s}")
    }
}

/// Error when parsing a [`LogicOp`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogicOpError(String);

impl fmt::Display for ParseLogicOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown logic operation `{}`", self.0)
    }
}

impl std::error::Error for ParseLogicOpError {}

impl FromStr for LogicOp {
    type Err = ParseLogicOpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(LogicOp::And),
            "NAND" => Ok(LogicOp::Nand),
            "OR" => Ok(LogicOp::Or),
            "NOR" => Ok(LogicOp::Nor),
            "XOR" => Ok(LogicOp::Xor),
            "XNOR" => Ok(LogicOp::Xnor),
            other => Err(ParseLogicOpError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_array::{ArrayGeometry, RowAddr, SramArray};

    #[test]
    fn all_ops_match_scalar_reference_on_random_rows() {
        let mut arr = SramArray::new(ArrayGeometry {
            rows: 2,
            cols: 64,
            dummy_rows: 1,
            interleave: 1,
        });
        let a = 0x5A5A_F00F_1234_8888u64;
        let b = 0x0FF0_AAAA_4321_7777u64;
        arr.write(RowAddr::Main(0), &BitRow::from_u64(64, a))
            .unwrap();
        arr.write(RowAddr::Main(1), &BitRow::from_u64(64, b))
            .unwrap();
        let readout = arr.bl_compute(RowAddr::Main(0), RowAddr::Main(1)).unwrap();
        for op in LogicOp::ALL {
            let row = op.eval(&readout);
            for i in 0..64 {
                let expect = op.eval_bit((a >> i) & 1 == 1, (b >> i) & 1 == 1);
                assert_eq!(row.get(i), expect, "{op} bit {i}");
            }
        }
    }

    #[test]
    fn parse_round_trip() {
        for op in LogicOp::ALL {
            assert_eq!(op.to_string().parse::<LogicOp>().unwrap(), op);
        }
        assert!("FOO".parse::<LogicOp>().is_err());
    }
}
