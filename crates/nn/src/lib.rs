//! A quantized machine-learning workload running on the IMC macro.
//!
//! The paper motivates reconfigurable bit-precision with machine-learning
//! inference ("the limited bit-precision architecture can result in
//! unnecessary use of hardware"). This crate provides that workload: a
//! nearest-prototype classifier whose dot products run **in-memory** —
//! multiplications via the macro's bit-parallel MULT at a configurable
//! precision, partial products accumulated with in-memory ADDs where lane
//! widths allow.
//!
//! It demonstrates exactly the trade the paper sells: at 8-bit precision
//! the classifier is as accurate as floating point on the synthetic task;
//! dropping to 4- or 2-bit cuts cycles and energy while accuracy degrades
//! gracefully.
//!
//! # Examples
//!
//! ```
//! use bpimc_nn::{dataset::Dataset, classifier::PrototypeClassifier};
//! use bpimc_core::Precision;
//!
//! let data = Dataset::synthetic_blobs(4, 8, 50, 42);
//! let mut clf = PrototypeClassifier::fit(&data, Precision::P8);
//! let report = clf.evaluate(&data);
//! assert!(report.accuracy > 0.9);
//! ```

pub mod classifier;
pub mod dataset;
pub mod quant;

pub use classifier::{
    chunks_per_class, classify_bindings, classify_from_outputs, classify_program,
    classify_quantized, classify_quantized_banked, dot_program, imc_dot, prototype_norms,
    EvalReport, PrototypeClassifier,
};
pub use dataset::Dataset;
pub use quant::QuantParams;
