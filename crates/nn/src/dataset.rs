//! Synthetic classification data (Gaussian blobs).

use bpimc_stats::normal::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset of non-negative feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature dimensionality.
    pub dim: usize,
    /// Class count.
    pub classes: usize,
    /// Samples (`len = classes * per_class`).
    pub samples: Vec<Vec<f64>>,
    /// Labels aligned with `samples`.
    pub labels: Vec<usize>,
    /// The class centroids used to generate the data.
    pub prototypes: Vec<Vec<f64>>,
}

impl Dataset {
    /// Generates `classes` Gaussian blobs of `per_class` points in
    /// `dim`-dimensional space, deterministically from `seed`. Features are
    /// clipped to be non-negative (the unsigned datapath of the macro).
    ///
    /// # Panics
    ///
    /// Panics if `dim`, `classes` or `per_class` is zero.
    pub fn synthetic_blobs(classes: usize, dim: usize, per_class: usize, seed: u64) -> Self {
        assert!(
            dim > 0 && classes > 0 && per_class > 0,
            "empty dataset requested"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Well-separated prototypes on [0.2, 1.0]^dim.
        let prototypes: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..dim).map(|_| 0.2 + 0.8 * rng.random::<f64>()).collect())
            .collect();
        let mut samples = Vec::with_capacity(classes * per_class);
        let mut labels = Vec::with_capacity(classes * per_class);
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let point: Vec<f64> = proto
                    .iter()
                    .map(|&m| (m + 0.08 * standard_normal(&mut rng)).max(0.0))
                    .collect();
                samples.push(point);
                labels.push(c);
            }
        }
        Self {
            dim,
            classes,
            samples,
            labels,
            prototypes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The largest feature value in the dataset (for quantization ranges).
    pub fn max_feature(&self) -> f64 {
        self.samples
            .iter()
            .flat_map(|s| s.iter().copied())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::synthetic_blobs(3, 8, 10, 7);
        let b = Dataset::synthetic_blobs(3, 8, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert_eq!(a.labels.iter().filter(|&&l| l == 2).count(), 10);
    }

    #[test]
    fn features_are_non_negative() {
        let d = Dataset::synthetic_blobs(4, 8, 25, 3);
        assert!(d.samples.iter().all(|s| s.iter().all(|&x| x >= 0.0)));
        assert!(d.max_feature() > 0.0);
    }
}
