//! Uniform unsigned quantization.

use bpimc_core::Precision;

/// Quantization parameters: a uniform unsigned grid over `[0, max_abs]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// The word precision quantized values target.
    pub precision: Precision,
    /// The real value mapped to the largest code.
    pub max_abs: f64,
}

impl QuantParams {
    /// Parameters covering `[0, max_abs]` at `precision`.
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is not positive.
    pub fn new(precision: Precision, max_abs: f64) -> Self {
        assert!(max_abs > 0.0, "max_abs must be positive");
        Self { precision, max_abs }
    }

    /// The quantization step.
    pub fn step(&self) -> f64 {
        self.max_abs / self.precision.max_value() as f64
    }

    /// Quantizes one value (clamping into range).
    pub fn quantize(&self, x: f64) -> u64 {
        let q = (x / self.step()).round();
        q.clamp(0.0, self.precision.max_value() as f64) as u64
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, q: u64) -> f64 {
        q as f64 * self.step()
    }

    /// Quantizes a slice.
    pub fn quantize_all(&self, xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let q = QuantParams::new(Precision::P8, 2.0);
        for i in 0..100 {
            let x = i as f64 * 0.02;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let q = QuantParams::new(Precision::P4, 1.0);
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(99.0), 15);
    }

    #[test]
    fn coarser_precision_has_bigger_step() {
        let fine = QuantParams::new(Precision::P8, 1.0);
        let coarse = QuantParams::new(Precision::P2, 1.0);
        assert!(coarse.step() > 10.0 * fine.step());
    }
}
