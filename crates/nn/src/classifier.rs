//! A nearest-prototype classifier whose arithmetic runs on the IMC macro.

use crate::dataset::Dataset;
use crate::quant::QuantParams;
use bpimc_core::prog::{Instr, Program, ProgramBuilder};
use bpimc_core::{ImcMacro, MacroBank, MacroConfig, Precision};
use bpimc_metrics::paper_calibrated_params;

/// Classifier state: quantized class prototypes plus the macro bank that
/// evaluates the dot products (one macro per host worker, so independent
/// samples classify in parallel).
#[derive(Debug, Clone)]
pub struct PrototypeClassifier {
    precision: Precision,
    quant: QuantParams,
    prototypes_q: Vec<Vec<u64>>,
    bank: MacroBank,
}

/// Evaluation result over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Fraction of samples classified correctly.
    pub accuracy: f64,
    /// Total macro cycles spent (summed across the bank — identical to
    /// running every sample on one macro).
    pub cycles: u64,
    /// Total macro energy at 0.9 V, femtojoules (Table II-calibrated).
    pub energy_fj: f64,
    /// Samples evaluated.
    pub samples: usize,
}

impl EvalReport {
    /// Average cycles per classified sample.
    pub fn cycles_per_sample(&self) -> f64 {
        self.cycles as f64 / self.samples.max(1) as f64
    }

    /// Average energy per classified sample, femtojoules.
    pub fn energy_per_sample_fj(&self) -> f64 {
        self.energy_fj / self.samples.max(1) as f64
    }
}

/// Emits the dot-product pipeline `dot(x_q, w_q)` as a typed [`Program`]:
/// per product-lane chunk, both operands are staged into product lanes,
/// one bit-parallel MULT runs, and the products are read out. The three
/// working registers are recycled across chunks, so the row budget is
/// constant regardless of vector length and the instruction stream matches
/// the direct `ImcMacro` call sequence cycle for cycle.
///
/// # Panics
///
/// Panics when `2P` exceeds `cols` (no product lanes exist).
pub fn dot_program(precision: Precision, x_q: &[u64], w_q: &[u64], cols: usize) -> Program {
    let lanes = precision.product_lanes(cols);
    assert!(lanes > 0, "{precision} products do not fit {cols} columns");
    let mut b = ProgramBuilder::new();
    let rx = b.alloc();
    let rw = b.alloc();
    let rp = b.alloc();
    for (xc, wc) in x_q.chunks(lanes).zip(w_q.chunks(lanes)) {
        b.write_mult_to(rx, precision, xc.to_vec());
        b.write_mult_to(rw, precision, wc.to_vec());
        b.push(Instr::Mult {
            a: rx,
            b: rw,
            dst: rp,
            precision,
        });
        b.read_products(rp, precision, xc.len());
    }
    b.finish()
}

/// Computes `dot(x_q, w_q)` on one macro by building the pipeline with
/// [`dot_program`] and running it through the program executor; partial
/// products are summed on the host.
///
/// # Panics
///
/// Panics when operand values exceed the precision or the vectors differ in
/// length — callers serving untrusted input must validate first.
pub fn imc_dot(mac: &mut ImcMacro, precision: Precision, x_q: &[u64], w_q: &[u64]) -> u64 {
    let prog = dot_program(precision, x_q, w_q, mac.cols());
    let run = prog.run(mac).expect("dot pipeline validates");
    run.outputs.iter().flatten().sum()
}

/// Emits **one** fused program covering all `C` prototype dots of a
/// nearest-prototype classification — `dot(x_q, w_c)` for every class `c`,
/// concatenated with the same three recycled working registers — so a
/// classification costs a single trip through the program executor instead
/// of `C` (validation, lowering and per-run bookkeeping amortize `C`-fold).
///
/// The instruction stream is exactly the concatenation of the per-class
/// [`dot_program`] streams: hardware cycles, per-cycle activity and scores
/// are bit-identical to running the dots one program at a time.
///
/// Outputs group per class: with `k = chunks_per_class(...)` chunks per
/// dot, output vectors `[c*k, (c+1)*k)` are class `c`'s partial products;
/// [`classify_from_outputs`] folds them into the predicted class.
///
/// # Panics
///
/// Panics when `2P` exceeds `cols` (no product lanes exist) or
/// `prototypes_q` is empty.
pub fn classify_program(
    precision: Precision,
    prototypes_q: &[Vec<u64>],
    x_q: &[u64],
    cols: usize,
) -> Program {
    assert!(!prototypes_q.is_empty(), "at least one prototype");
    let lanes = precision.product_lanes(cols);
    assert!(lanes > 0, "{precision} products do not fit {cols} columns");
    let mut b = ProgramBuilder::new();
    let rx = b.alloc();
    let rw = b.alloc();
    let rp = b.alloc();
    for w_q in prototypes_q {
        for (xc, wc) in x_q.chunks(lanes).zip(w_q.chunks(lanes)) {
            b.write_mult_to(rx, precision, xc.to_vec());
            b.write_mult_to(rw, precision, wc.to_vec());
            b.push(Instr::Mult {
                a: rx,
                b: rw,
                dst: rp,
                precision,
            });
            b.read_products(rp, precision, xc.len());
        }
    }
    b.finish()
}

/// Chunks each prototype dot splits into at this precision and row width
/// (the per-class output-group size of [`classify_program`]).
pub fn chunks_per_class(precision: Precision, dim: usize, cols: usize) -> usize {
    dim.div_ceil(precision.product_lanes(cols).max(1)).max(1)
}

/// The input bindings that run a compiled [`classify_program`] template on
/// sample `x_q`: per class and chunk, the sample's product-lane chunk is
/// rebound (`Some`) and the baked prototype chunk is kept (`None`) —
/// matching the template's write interleave exactly. Lives here, next to
/// the program layout it mirrors, so the serving path and the benchmarks
/// cannot drift from it.
pub fn classify_bindings(
    precision: Precision,
    classes: usize,
    x_q: &[u64],
    cols: usize,
) -> Vec<Option<&[u64]>> {
    let lanes = precision.product_lanes(cols).max(1);
    let chunks = chunks_per_class(precision, x_q.len(), cols);
    let mut inputs = Vec::with_capacity(2 * classes * chunks);
    for _ in 0..classes {
        for xc in x_q.chunks(lanes) {
            inputs.push(Some(xc));
            inputs.push(None);
        }
    }
    inputs
}

/// Folds a [`classify_program`] run's outputs into the predicted class:
/// `argmax_c Σ products_c - |w_c|^2 / 2`, with ties resolved to the lowest
/// class index (the same rule the per-class loop used).
///
/// # Panics
///
/// Panics when the output count is not `norms.len() * chunks` or `norms`
/// is empty.
pub fn classify_from_outputs(outputs: &[Vec<u64>], chunks: usize, norms: &[u64]) -> usize {
    assert_eq!(
        outputs.len(),
        norms.len() * chunks,
        "one output group per class"
    );
    let mut best: Option<(usize, f64)> = None;
    for (c, &ww) in norms.iter().enumerate() {
        let xw: u64 = outputs[c * chunks..(c + 1) * chunks].iter().flatten().sum();
        let score = xw as f64 - ww as f64 / 2.0;
        if best.is_none() || score > best.expect("set").1 {
            best = Some((c, score));
        }
    }
    best.expect("at least one class").0
}

/// Computes every prototype's self-dot `|w_c|^2` on one macro.
///
/// Nearest-prototype scoring needs these once per prototype set, not once
/// per sample: compute them up front and pass the slice to
/// [`classify_quantized`] so a batch of samples amortizes the norm work
/// (the ROADMAP-flagged accounting change — see [`PrototypeClassifier`]).
pub fn prototype_norms(
    mac: &mut ImcMacro,
    precision: Precision,
    prototypes_q: &[Vec<u64>],
) -> Vec<u64> {
    prototypes_q
        .iter()
        .map(|w_q| imc_dot(mac, precision, w_q, w_q))
        .collect()
}

/// Classifies one quantized sample on one macro. Nearest-prototype scoring:
/// `argmax_c x.w_c - |w_c|^2 / 2`, equivalent to minimum Euclidean
/// distance; `norms` holds the precomputed `|w_c|^2` terms (see
/// [`prototype_norms`]).
///
/// All `C` prototype dots run as **one** fused [`classify_program`], so the
/// per-sample executor overhead (validation, lowering, run bookkeeping) is
/// paid once instead of once per class; the instruction stream — and
/// therefore the cycle/energy accounting and the scores — is bit-identical
/// to the per-class loop it replaces.
///
/// # Panics
///
/// Panics when `norms` is shorter than `prototypes_q` or the prototype set
/// is empty.
pub fn classify_quantized(
    mac: &mut ImcMacro,
    precision: Precision,
    prototypes_q: &[Vec<u64>],
    norms: &[u64],
    x_q: &[u64],
) -> usize {
    assert_eq!(
        prototypes_q.len(),
        norms.len(),
        "one precomputed |w|^2 per prototype"
    );
    let prog = classify_program(precision, prototypes_q, x_q, mac.cols());
    let run = prog.run(mac).expect("classify pipeline validates");
    let chunks = chunks_per_class(precision, x_q.len(), mac.cols());
    classify_from_outputs(&run.outputs, chunks, norms)
}

/// [`classify_quantized`] with the fused program's independent per-class
/// dot chains spread across a whole [`MacroBank`]
/// ([`MacroBank::run_partitioned`]) — the single-sample latency path.
/// Scores, predicted class and *total* cycles/energy are identical to the
/// one-macro run; only the completion bound (the busiest macro) shrinks.
///
/// # Panics
///
/// As [`classify_quantized`].
pub fn classify_quantized_banked(
    bank: &mut MacroBank,
    precision: Precision,
    prototypes_q: &[Vec<u64>],
    norms: &[u64],
    x_q: &[u64],
) -> usize {
    assert_eq!(
        prototypes_q.len(),
        norms.len(),
        "one precomputed |w|^2 per prototype"
    );
    let cols = bank.macro_at(0).cols();
    let prog = classify_program(precision, prototypes_q, x_q, cols);
    let run = bank
        .run_partitioned(&prog)
        .expect("classify pipeline validates");
    let chunks = chunks_per_class(precision, x_q.len(), cols);
    classify_from_outputs(&run.outputs, chunks, norms)
}

impl PrototypeClassifier {
    /// Builds a classifier from a dataset's generating prototypes at the
    /// requested datapath precision. The macro bank is sized to the host's
    /// parallelism.
    pub fn fit(data: &Dataset, precision: Precision) -> Self {
        Self::fit_with_bank(
            data,
            precision,
            MacroBank::with_host_parallelism(MacroConfig::paper_macro()),
        )
    }

    /// Builds a classifier evaluating on an explicit macro bank.
    pub fn fit_with_bank(data: &Dataset, precision: Precision, bank: MacroBank) -> Self {
        let quant = QuantParams::new(precision, data.max_feature().max(1e-9));
        let prototypes_q = data
            .prototypes
            .iter()
            .map(|p| quant.quantize_all(p))
            .collect();
        Self {
            precision,
            quant,
            prototypes_q,
            bank,
        }
    }

    /// The datapath precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of macros evaluation spreads over.
    pub fn bank_size(&self) -> usize {
        self.bank.len()
    }

    /// Classifies one (real-valued) sample; returns the predicted class.
    ///
    /// Single-sample classification computes the prototype norms on the
    /// macro each call (there is no batch to amortize them over); use
    /// [`PrototypeClassifier::evaluate`] for datasets. The per-class dot
    /// chains of the fused classify program spread across the bank's
    /// macros ([`classify_quantized_banked`]), so one sample's latency
    /// bound drops toward a single dot while total work is unchanged.
    pub fn classify(&mut self, x: &[f64]) -> usize {
        let x_q = self.quant.quantize_all(x);
        let norms = prototype_norms(self.bank.macro_at(0), self.precision, &self.prototypes_q);
        classify_quantized_banked(
            &mut self.bank,
            self.precision,
            &self.prototypes_q,
            &norms,
            &x_q,
        )
    }

    /// Evaluates accuracy, cycles and energy over a dataset, batching the
    /// independent samples across the macro bank.
    ///
    /// The prototype norms `|w_c|^2` are computed **once per evaluation**
    /// (on macro 0, included in the reported cycles/energy) instead of once
    /// per sample. This is a deliberate accounting change from the seed,
    /// which recomputed every self-dot for every sample: with `C` classes
    /// the per-sample dot-product work drops from `2C` to `C` dots, so
    /// reported cycles and energy per sample roughly halve on real batches
    /// while accuracy is bit-identical.
    pub fn evaluate(&mut self, data: &Dataset) -> EvalReport {
        self.bank.clear_activity();
        let precision = self.precision;
        let norms = prototype_norms(self.bank.macro_at(0), precision, &self.prototypes_q);
        let jobs: Vec<(&Vec<f64>, usize)> = data
            .samples
            .iter()
            .zip(data.labels.iter().copied())
            .collect();
        let quant = &self.quant;
        let prototypes_q = &self.prototypes_q;
        let outcomes = self.bank.run_batch(&jobs, |mac, &(x, label)| {
            let x_q = quant.quantize_all(x);
            classify_quantized(mac, precision, prototypes_q, &norms, &x_q) == label
        });
        let correct = outcomes.iter().filter(|&&ok| ok).count();
        let params = paper_calibrated_params();
        let cycles = self.bank.total_cycles();
        let energy_fj: f64 = self
            .bank
            .macros()
            .map(|m| params.log_energy_fj(m.activity()))
            .sum();
        EvalReport {
            accuracy: correct as f64 / data.len() as f64,
            cycles,
            energy_fj,
            samples: data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::synthetic_blobs(4, 8, 30, 11)
    }

    #[test]
    fn high_precision_is_accurate() {
        let d = data();
        let mut clf = PrototypeClassifier::fit(&d, Precision::P8);
        let r = clf.evaluate(&d);
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
        assert!(r.cycles > 0 && r.energy_fj > 0.0);
    }

    #[test]
    fn generated_programs_lint_clean() {
        // The emitted dot/classify pipelines must carry no error- or
        // warn-severity diagnostics (perf notes — e.g. recycled-register
        // headroom on tiny inputs — are fine): every store is read, no
        // work is recomputed, nothing is provably wasted.
        use bpimc_core::{MacroConfig, Severity};
        let cfg = MacroConfig::paper_macro();
        let p = Precision::P8;
        let x: Vec<u64> = (0..24).map(|i| (i * 11) % 256).collect();
        let w: Vec<u64> = (0..24).map(|i| (i * 7 + 3) % 256).collect();
        let protos: Vec<Vec<u64>> = (0..3)
            .map(|c| (0..24).map(|i| (i * 5 + c * 17) % 256).collect())
            .collect();
        for prog in [
            dot_program(p, &x, &w, 128),
            classify_program(p, &protos, &x, 128),
        ] {
            let bad: Vec<_> = prog
                .lint(&cfg)
                .into_iter()
                .filter(|d| d.severity != Severity::Perf)
                .collect();
            assert!(bad.is_empty(), "generated program lints dirty: {bad:?}");
        }
    }

    #[test]
    fn imc_dot_matches_host_arithmetic() {
        let d = data();
        let mut clf = PrototypeClassifier::fit(&d, Precision::P4);
        let x = vec![3u64, 7, 0, 15, 1, 2, 9, 4];
        let w = vec![5u64, 5, 15, 1, 0, 8, 2, 3];
        let got = imc_dot(clf.bank.macro_at(0), Precision::P4, &x, &w);
        let expect: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert_eq!(got, expect);
    }

    #[test]
    fn lower_precision_costs_fewer_cycles() {
        let d = data();
        let mut hi = PrototypeClassifier::fit(&d, Precision::P8);
        let mut lo = PrototypeClassifier::fit(&d, Precision::P2);
        let rh = hi.evaluate(&d);
        let rl = lo.evaluate(&d);
        assert!(
            rl.cycles < rh.cycles,
            "P2 {} cycles !< P8 {} cycles",
            rl.cycles,
            rh.cycles
        );
        assert!(rl.energy_fj < rh.energy_fj);
    }

    #[test]
    fn accuracy_degrades_gracefully_not_catastrophically() {
        let d = data();
        let mut lo = PrototypeClassifier::fit(&d, Precision::P2);
        let r = lo.evaluate(&d);
        // 2-bit template matching is crude but far better than chance (25%).
        assert!(r.accuracy > 0.5, "accuracy {}", r.accuracy);
    }

    #[test]
    fn evaluate_amortizes_prototype_norms() {
        // The seed recomputed every |w|^2 self-dot per sample; evaluate()
        // now computes them once per batch. Reconstruct the seed's
        // accounting on a bare macro and check the batch run costs
        // markedly less (2C dots per sample down to C + C/batch).
        let d = data();
        let mut clf = PrototypeClassifier::fit_with_bank(
            &d,
            Precision::P4,
            MacroBank::new(1, MacroConfig::paper_macro()),
        );
        let r = clf.evaluate(&d);

        let mut mac = bpimc_core::ImcMacro::new(MacroConfig::paper_macro());
        for x in &d.samples {
            let x_q = clf.quant.quantize_all(x);
            let norms = prototype_norms(&mut mac, Precision::P4, &clf.prototypes_q);
            classify_quantized(&mut mac, Precision::P4, &clf.prototypes_q, &norms, &x_q);
        }
        let seed_cycles = mac.activity().total_cycles();
        assert!(
            3 * r.cycles < 2 * seed_cycles,
            "batched {} cycles should be well under the seed's {}",
            r.cycles,
            seed_cycles
        );
    }

    /// The pre-fusion reference: one [`dot_program`] per class, scored on
    /// the host — the loop `classify_quantized` replaced.
    fn classify_per_class_loop(
        mac: &mut bpimc_core::ImcMacro,
        precision: Precision,
        prototypes_q: &[Vec<u64>],
        norms: &[u64],
        x_q: &[u64],
    ) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (c, (w_q, &ww)) in prototypes_q.iter().zip(norms).enumerate() {
            let xw = imc_dot(mac, precision, x_q, w_q) as f64;
            let score = xw - ww as f64 / 2.0;
            if best.is_none() || score > best.expect("set").1 {
                best = Some((c, score));
            }
        }
        best.expect("at least one class").0
    }

    #[test]
    fn fused_classify_matches_per_class_loop_bit_for_bit() {
        // Same predicted class, same hardware cycles, same cycle-by-cycle
        // activity log: the fused program is the concatenation of the
        // per-class dot programs.
        let d = data();
        for p in [Precision::P2, Precision::P4, Precision::P8] {
            let clf = PrototypeClassifier::fit(&d, p);
            let mut fused_mac = bpimc_core::ImcMacro::new(MacroConfig::paper_macro());
            let mut loop_mac = bpimc_core::ImcMacro::new(MacroConfig::paper_macro());
            let norms = prototype_norms(&mut fused_mac, p, &clf.prototypes_q);
            prototype_norms(&mut loop_mac, p, &clf.prototypes_q);
            for x in d.samples.iter().take(12) {
                let x_q = clf.quant.quantize_all(x);
                let fused = classify_quantized(&mut fused_mac, p, &clf.prototypes_q, &norms, &x_q);
                let looped =
                    classify_per_class_loop(&mut loop_mac, p, &clf.prototypes_q, &norms, &x_q);
                assert_eq!(fused, looped, "P{} sample mismatch", p.bits());
            }
            assert_eq!(
                fused_mac.activity().total_cycles(),
                loop_mac.activity().total_cycles(),
                "P{} cycle accounting changed",
                p.bits()
            );
            assert_eq!(fused_mac.activity().cycles(), loop_mac.activity().cycles());
        }
    }

    #[test]
    fn fused_classify_handles_multi_chunk_dimensions() {
        // 24 features at P8 on a 128-column row = 3 product-lane chunks per
        // class; the per-class output grouping must stay aligned.
        let d = Dataset::synthetic_blobs(3, 24, 20, 7);
        let clf = PrototypeClassifier::fit(&d, Precision::P8);
        let mut mac = bpimc_core::ImcMacro::new(MacroConfig::paper_macro());
        assert_eq!(chunks_per_class(Precision::P8, 24, mac.cols()), 3);
        let norms = prototype_norms(&mut mac, Precision::P8, &clf.prototypes_q);
        for x in d.samples.iter().take(8) {
            let x_q = clf.quant.quantize_all(x);
            let fused =
                classify_quantized(&mut mac, Precision::P8, &clf.prototypes_q, &norms, &x_q);
            let looped =
                classify_per_class_loop(&mut mac, Precision::P8, &clf.prototypes_q, &norms, &x_q);
            assert_eq!(fused, looped);
        }
    }

    #[test]
    fn banked_classify_matches_single_macro_and_splits_work() {
        let d = data();
        let clf = PrototypeClassifier::fit(&d, Precision::P4);
        let mut mac = bpimc_core::ImcMacro::new(MacroConfig::paper_macro());
        let norms = prototype_norms(&mut mac, Precision::P4, &clf.prototypes_q);
        mac.clear_activity();
        let mut bank = MacroBank::new(3, MacroConfig::paper_macro());
        for x in d.samples.iter().take(6) {
            let x_q = clf.quant.quantize_all(x);
            let single =
                classify_quantized(&mut mac, Precision::P4, &clf.prototypes_q, &norms, &x_q);
            let banked = classify_quantized_banked(
                &mut bank,
                Precision::P4,
                &clf.prototypes_q,
                &norms,
                &x_q,
            );
            assert_eq!(single, banked);
        }
        // Total work identical; spread across more than one macro.
        assert_eq!(bank.total_cycles(), mac.activity().total_cycles());
        assert!(bank.makespan_cycles() < bank.total_cycles());
    }

    #[test]
    fn bank_evaluation_matches_single_macro_evaluation() {
        // Same dataset, 1-macro bank vs multi-macro bank: identical
        // accuracy, cycles and energy (the accounting is work, not time).
        let d = data();
        let mut single = PrototypeClassifier::fit_with_bank(
            &d,
            Precision::P4,
            MacroBank::new(1, MacroConfig::paper_macro()),
        );
        let mut wide = PrototypeClassifier::fit_with_bank(
            &d,
            Precision::P4,
            MacroBank::new(4, MacroConfig::paper_macro()),
        );
        let rs = single.evaluate(&d);
        let rw = wide.evaluate(&d);
        assert_eq!(rs.accuracy, rw.accuracy);
        assert_eq!(rs.cycles, rw.cycles);
        assert!((rs.energy_fj - rw.energy_fj).abs() < 1e-6 * rs.energy_fj.max(1.0));
    }
}
