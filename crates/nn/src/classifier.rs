//! A nearest-prototype classifier whose arithmetic runs on the IMC macro.

use crate::dataset::Dataset;
use crate::quant::QuantParams;
use bpimc_core::{ImcMacro, MacroConfig, Precision};
use bpimc_metrics::paper_calibrated_params;

/// Classifier state: quantized class prototypes plus the macro that
/// evaluates the dot products.
#[derive(Debug, Clone)]
pub struct PrototypeClassifier {
    precision: Precision,
    quant: QuantParams,
    prototypes_q: Vec<Vec<u64>>,
    mac: ImcMacro,
}

/// Evaluation result over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Fraction of samples classified correctly.
    pub accuracy: f64,
    /// Total macro cycles spent.
    pub cycles: u64,
    /// Total macro energy at 0.9 V, femtojoules (Table II-calibrated).
    pub energy_fj: f64,
    /// Samples evaluated.
    pub samples: usize,
}

impl EvalReport {
    /// Average cycles per classified sample.
    pub fn cycles_per_sample(&self) -> f64 {
        self.cycles as f64 / self.samples.max(1) as f64
    }

    /// Average energy per classified sample, femtojoules.
    pub fn energy_per_sample_fj(&self) -> f64 {
        self.energy_fj / self.samples.max(1) as f64
    }
}

impl PrototypeClassifier {
    /// Builds a classifier from a dataset's generating prototypes at the
    /// requested datapath precision.
    pub fn fit(data: &Dataset, precision: Precision) -> Self {
        let quant = QuantParams::new(precision, data.max_feature().max(1e-9));
        let prototypes_q = data.prototypes.iter().map(|p| quant.quantize_all(p)).collect();
        Self {
            precision,
            quant,
            prototypes_q,
            mac: ImcMacro::new(MacroConfig::paper_macro()),
        }
    }

    /// The datapath precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Computes `dot(x_q, w_q)` on the macro: operands go into product
    /// lanes, one bit-parallel MULT per chunk, products read out and
    /// reduced. Returns the dot product value.
    fn imc_dot(&mut self, x_q: &[u64], w_q: &[u64]) -> u64 {
        let lanes = self.precision.product_lanes(self.mac.cols());
        let mut acc = 0u64;
        for (xc, wc) in x_q.chunks(lanes).zip(w_q.chunks(lanes)) {
            self.mac
                .write_mult_operands(0, self.precision, xc)
                .expect("chunk fits product lanes");
            self.mac
                .write_mult_operands(1, self.precision, wc)
                .expect("chunk fits product lanes");
            self.mac.mult(0, 1, 2, self.precision).expect("mult runs");
            let products = self
                .mac
                .read_products(2, self.precision, xc.len())
                .expect("products readable");
            acc += products.iter().sum::<u64>();
        }
        acc
    }

    /// Classifies one (real-valued) sample; returns the predicted class.
    ///
    /// Nearest-prototype scoring: `argmax_c x.w_c - |w_c|^2 / 2`, which is
    /// equivalent to minimum Euclidean distance. The `|w_c|^2` terms are
    /// per-class constants, computed once on the same macro.
    pub fn classify(&mut self, x: &[f64]) -> usize {
        let x_q = self.quant.quantize_all(x);
        let protos = self.prototypes_q.clone();
        let mut best: Option<(usize, f64)> = None;
        for (c, w_q) in protos.iter().enumerate() {
            let xw = self.imc_dot(&x_q, w_q) as f64;
            let ww = self.imc_dot(w_q, w_q) as f64;
            let score = xw - ww / 2.0;
            if best.is_none() || score > best.expect("set").1 {
                best = Some((c, score));
            }
        }
        best.expect("at least one class").0
    }

    /// Evaluates accuracy, cycles and energy over a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> EvalReport {
        self.mac.clear_activity();
        let mut correct = 0usize;
        for (x, &label) in data.samples.iter().zip(&data.labels) {
            if self.classify(x) == label {
                correct += 1;
            }
        }
        let cycles = self.mac.activity().total_cycles();
        let energy_fj = paper_calibrated_params().log_energy_fj(self.mac.activity());
        EvalReport {
            accuracy: correct as f64 / data.len() as f64,
            cycles,
            energy_fj,
            samples: data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::synthetic_blobs(4, 8, 30, 11)
    }

    #[test]
    fn high_precision_is_accurate() {
        let d = data();
        let mut clf = PrototypeClassifier::fit(&d, Precision::P8);
        let r = clf.evaluate(&d);
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
        assert!(r.cycles > 0 && r.energy_fj > 0.0);
    }

    #[test]
    fn imc_dot_matches_host_arithmetic() {
        let d = data();
        let mut clf = PrototypeClassifier::fit(&d, Precision::P4);
        let x = vec![3u64, 7, 0, 15, 1, 2, 9, 4];
        let w = vec![5u64, 5, 15, 1, 0, 8, 2, 3];
        let got = clf.imc_dot(&x, &w);
        let expect: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert_eq!(got, expect);
    }

    #[test]
    fn lower_precision_costs_fewer_cycles() {
        let d = data();
        let mut hi = PrototypeClassifier::fit(&d, Precision::P8);
        let mut lo = PrototypeClassifier::fit(&d, Precision::P2);
        let rh = hi.evaluate(&d);
        let rl = lo.evaluate(&d);
        assert!(
            rl.cycles < rh.cycles,
            "P2 {} cycles !< P8 {} cycles",
            rl.cycles,
            rh.cycles
        );
        assert!(rl.energy_fj < rh.energy_fj);
    }

    #[test]
    fn accuracy_degrades_gracefully_not_catastrophically() {
        let d = data();
        let mut lo = PrototypeClassifier::fit(&d, Precision::P2);
        let r = lo.evaluate(&d);
        // 2-bit template matching is crude but far better than chance (25%).
        assert!(r.accuracy > 0.5, "accuracy {}", r.accuracy);
    }
}
