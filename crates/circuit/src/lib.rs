//! A small nonlinear transient circuit solver for the bpimc workspace.
//!
//! This is the "SPICE-lite" substrate the reproduction uses in place of the
//! paper's post-layout SPICE runs. It is deliberately scoped to what the
//! experiments need:
//!
//! * lumped node capacitances, resistors, ideal voltage sources with
//!   DC / pulse / piece-wise-linear waveforms ([`wave::Waveform`]),
//! * MOSFETs from [`bpimc_device`] with automatic source/drain orientation,
//!   so bidirectional pass devices (the 6T access transistors) conduct
//!   correctly in both directions,
//! * an explicit Heun (RK2) integrator with per-step voltage-change guarding
//!   and automatic sub-stepping (see [`SimOptions`]),
//! * recorded node traces with threshold-crossing measurements
//!   ([`trace::Trace`]) — the "delay from WL rise to SA trip" numbers the
//!   paper reports all come from these,
//! * an embarrassingly-parallel Monte-Carlo runner ([`mc::montecarlo`]).
//!
//! Circuits in this workspace are tens of nodes, so an explicit integrator
//! with femtofarad node caps and sub-picosecond steps is both simple and
//! plenty fast; there is no sparse-matrix machinery because there is nothing
//! sparse to solve.
//!
//! # Examples
//!
//! An RC discharge sanity check (the solver is validated against the
//! closed-form solution in its tests):
//!
//! ```
//! use bpimc_circuit::{Circuit, SimOptions, Waveform};
//!
//! let mut ckt = Circuit::new(bpimc_device::Env::nominal());
//! let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
//! let out = ckt.add_node("out", 10e-15, 0.9); // 10 fF, starts at 0.9 V
//! let gnd = ckt.gnd();
//! ckt.add_resistor(out, gnd, 10_000.0); // 10 kOhm to ground
//! let _ = vdd;
//! let trace = ckt.run(&SimOptions::for_window(2e-9));
//! // tau = 100 ps, so after 2 ns the node is fully discharged.
//! assert!(trace.last_voltage(out) < 0.01);
//! ```

pub mod batch;
pub mod error;
pub mod mc;
pub mod netlist;
pub mod sim;
pub mod trace;
pub mod wave;

pub use batch::BatchSim;
pub use error::CircuitError;
pub use netlist::{Circuit, NodeId};
pub use sim::SimOptions;
pub use trace::{Edge, Trace};
pub use wave::Waveform;
