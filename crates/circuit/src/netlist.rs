//! Circuit construction: nodes, sources and elements.

use crate::sim::{SimOptions, Transient};
use crate::trace::Trace;
use crate::wave::Waveform;
use bpimc_device::{Env, Mosfet};

/// Opaque handle to a circuit node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// How a node is determined during simulation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeKind {
    /// Integrated state node with a lumped capacitance to ground (farads).
    State { cap: f64 },
    /// Ideal source; voltage follows the waveform exactly.
    Driven { wave: Waveform },
    /// The ground reference (always 0 V).
    Ground,
}

/// A MOSFET instance bound to circuit nodes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MosInst {
    pub dev: Mosfet,
    pub d: NodeId,
    pub g: NodeId,
    pub s: NodeId,
}

/// A netlist under construction plus the environment it will simulate in.
///
/// See the crate-level docs for a full example.
#[derive(Debug, Clone)]
pub struct Circuit {
    env: Env,
    pub(crate) names: Vec<String>,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) v0: Vec<f64>,
    pub(crate) resistors: Vec<(NodeId, NodeId, f64)>,
    pub(crate) mosfets: Vec<MosInst>,
}

impl Circuit {
    /// Creates an empty circuit (with only the ground node) for `env`.
    pub fn new(env: Env) -> Self {
        Self {
            env,
            names: vec!["gnd".to_string()],
            kinds: vec![NodeKind::Ground],
            v0: vec![0.0],
            resistors: Vec::new(),
            mosfets: Vec::new(),
        }
    }

    /// The operating environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// The ground node (0 V).
    pub fn gnd(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a state node with lumped capacitance `cap` (farads) and initial
    /// voltage `v0` (volts). Returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive (every state node needs capacitance
    /// for the explicit integrator to be meaningful).
    pub fn add_node(&mut self, name: &str, cap: f64, v0: f64) -> NodeId {
        assert!(cap > 0.0, "state node `{name}` needs positive capacitance");
        let id = NodeId(self.names.len());
        self.names.push(name.to_string());
        self.kinds.push(NodeKind::State { cap });
        self.v0.push(v0);
        id
    }

    /// Adds an ideal voltage source node following `wave`.
    pub fn add_source(&mut self, name: &str, wave: Waveform) -> NodeId {
        let id = NodeId(self.names.len());
        let v0 = wave.at(0.0);
        self.names.push(name.to_string());
        self.kinds.push(NodeKind::Driven { wave });
        self.v0.push(v0);
        id
    }

    /// Adds extra capacitance (farads) onto an existing state node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a state node.
    pub fn add_cap(&mut self, node: NodeId, extra: f64) {
        match &mut self.kinds[node.0] {
            NodeKind::State { cap } => *cap += extra,
            _ => panic!("can only add capacitance to state nodes"),
        }
    }

    /// Adds a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        assert!(ohms > 0.0, "resistance must be positive");
        self.resistors.push((a, b, ohms));
    }

    /// Adds a MOSFET with drain `d`, gate `g`, source `s`.
    ///
    /// Orientation is determined at runtime from terminal voltages so pass
    /// devices conduct in both directions; the `d`/`s` labels are only for
    /// readability. The device's gate capacitance is automatically lumped
    /// onto the gate node if it is a state node, and drain/source diffusion
    /// capacitance onto state drain/source nodes.
    pub fn add_mosfet(&mut self, dev: Mosfet, d: NodeId, g: NodeId, s: NodeId) {
        if let NodeKind::State { cap } = &mut self.kinds[g.0] {
            *cap += dev.gate_cap();
        }
        for t in [d, s] {
            if let NodeKind::State { cap } = &mut self.kinds[t.0] {
                *cap += dev.drain_cap();
            }
        }
        self.mosfets.push(MosInst { dev, d, g, s });
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// The lumped capacitance of a state node, if it is one.
    pub fn node_cap(&self, node: NodeId) -> Option<f64> {
        match &self.kinds[node.0] {
            NodeKind::State { cap } => Some(*cap),
            _ => None,
        }
    }

    /// Runs a transient simulation and returns the recorded traces.
    pub fn run(&self, opts: &SimOptions) -> Trace {
        Transient::new(self, opts).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_device::VtFlavor;

    #[test]
    fn node_bookkeeping() {
        let mut c = Circuit::new(Env::nominal());
        let n = c.add_node("bl", 10e-15, 0.9);
        assert_eq!(c.node_name(n), "bl");
        assert_eq!(c.node_cap(n), Some(10e-15));
        assert_eq!(c.node_cap(c.gnd()), None);
        assert_eq!(c.node_count(), 2);
        c.add_cap(n, 5e-15);
        assert_eq!(c.node_cap(n), Some(15e-15));
    }

    #[test]
    fn mosfet_loads_its_terminals() {
        let mut c = Circuit::new(Env::nominal());
        let d = c.add_node("d", 1e-15, 0.0);
        let g = c.add_node("g", 1e-15, 0.0);
        let m = Mosfet::nmos(VtFlavor::Rvt, 200.0, 30.0);
        let cap_g_before = c.node_cap(g).unwrap();
        c.add_mosfet(m, d, g, c.gnd());
        assert!(c.node_cap(g).unwrap() > cap_g_before);
        assert!(c.node_cap(d).unwrap() > 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive capacitance")]
    fn zero_cap_node_rejected() {
        let mut c = Circuit::new(Env::nominal());
        let _ = c.add_node("x", 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "state nodes")]
    fn cannot_add_cap_to_source() {
        let mut c = Circuit::new(Env::nominal());
        let s = c.add_source("v", Waveform::dc(1.0));
        c.add_cap(s, 1e-15);
    }
}
