//! Error type for circuit construction and measurement.

use std::fmt;

/// Errors produced by circuit construction, simulation or measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A measurement referenced a node with no recorded trace.
    UnknownNode(String),
    /// A threshold crossing was requested but never happened in the window.
    NoCrossing {
        /// Node searched.
        node: String,
        /// Threshold voltage.
        level: f64,
    },
    /// The integrator could not keep the step error bounded.
    StepLimitExceeded {
        /// Simulation time at which the failure occurred (seconds).
        at: f64,
    },
    /// A batch instance's netlist does not share the batch topology
    /// (see [`crate::batch::BatchSim`]).
    BatchMismatch {
        /// Index of the offending instance in the batch.
        instance: usize,
        /// What differed from instance 0.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            CircuitError::NoCrossing { node, level } => {
                write!(
                    f,
                    "node `{node}` never crossed {level} V in the simulated window"
                )
            }
            CircuitError::StepLimitExceeded { at } => {
                write!(f, "integrator sub-step limit exceeded at t = {at:.3e} s")
            }
            CircuitError::BatchMismatch { instance, reason } => {
                write!(
                    f,
                    "batch instance {instance} differs from the template: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CircuitError::UnknownNode("bl".into());
        assert!(e.to_string().contains("bl"));
        let e = CircuitError::NoCrossing {
            node: "bl".into(),
            level: 0.45,
        };
        assert!(e.to_string().contains("0.45"));
        let e = CircuitError::StepLimitExceeded { at: 1e-9 };
        assert!(e.to_string().contains("sub-step"));
    }
}
