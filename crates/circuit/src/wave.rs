//! Source waveforms: DC, pulse and piece-wise linear.

/// A time-dependent ideal voltage waveform.
///
/// # Examples
///
/// ```
/// use bpimc_circuit::Waveform;
/// // A 140 ps word-line pulse with 20 ps edges starting at 100 ps.
/// let wl = Waveform::pulse(0.0, 0.9, 100e-12, 140e-12, 20e-12);
/// assert_eq!(wl.at(0.0), 0.0);
/// assert_eq!(wl.at(150e-12), 0.9);
/// assert_eq!(wl.at(400e-12), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant voltage.
    Dc(f64),
    /// A single pulse: `low` before `t0`, linear rise over `t_edge`, `high`
    /// for `width`, linear fall over `t_edge`, then `low` again.
    Pulse {
        /// Base level in volts.
        low: f64,
        /// Pulse level in volts.
        high: f64,
        /// Start of the rising edge, seconds.
        t0: f64,
        /// Flat-top width, seconds.
        width: f64,
        /// Rise/fall time, seconds.
        t_edge: f64,
    },
    /// Piece-wise linear: `(time, voltage)` points, sorted by time. Before
    /// the first point the first voltage holds; after the last, the last.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant voltage source.
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// Single pulse; see [`Waveform::Pulse`] for the field meaning.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `t_edge` is negative.
    pub fn pulse(low: f64, high: f64, t0: f64, width: f64, t_edge: f64) -> Self {
        assert!(
            width >= 0.0 && t_edge >= 0.0,
            "pulse timing must be non-negative"
        );
        Waveform::Pulse {
            low,
            high,
            t0,
            width,
            t_edge,
        }
    }

    /// Piece-wise linear waveform from `(t, v)` points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not non-decreasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "PWL times must be non-decreasing"
        );
        Waveform::Pwl(points)
    }

    /// A step from `low` to `high` at `t0` with rise time `t_edge`.
    pub fn step(low: f64, high: f64, t0: f64, t_edge: f64) -> Self {
        Waveform::pwl(vec![(t0, low), (t0 + t_edge.max(1e-15), high)])
    }

    /// The waveform value at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                low,
                high,
                t0,
                width,
                t_edge,
            } => {
                let rise_end = t0 + t_edge;
                let fall_start = rise_end + width;
                let fall_end = fall_start + t_edge;
                if t < *t0 || t >= fall_end {
                    *low
                } else if t < rise_end {
                    low + (high - low) * (t - t0) / t_edge.max(1e-18)
                } else if t < fall_start {
                    *high
                } else {
                    high - (high - low) * (t - fall_start) / t_edge.max(1e-18)
                }
            }
            Waveform::Pwl(points) => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(0.9);
        assert_eq!(w.at(0.0), 0.9);
        assert_eq!(w.at(1.0), 0.9);
    }

    #[test]
    fn pulse_profile() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 2.0, 0.5);
        assert_eq!(w.at(0.9), 0.0);
        assert!((w.at(1.25) - 0.5).abs() < 1e-12, "mid-rise");
        assert_eq!(w.at(2.0), 1.0);
        assert!((w.at(3.75) - 0.5).abs() < 1e-12, "mid-fall");
        assert_eq!(w.at(4.1), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(w.at(0.0), 0.0);
        assert!((w.at(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(3.0), 1.0);
    }

    #[test]
    fn step_rises_once() {
        let w = Waveform::step(0.0, 0.9, 1e-9, 10e-12);
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(2e-9), 0.9);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_pwl_panics() {
        let _ = Waveform::pwl(vec![(2.0, 0.0), (1.0, 1.0)]);
    }
}
