//! Recorded node waveforms and measurements on them.

use crate::error::CircuitError;
use crate::netlist::NodeId;

/// Edge direction for threshold-crossing measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// First crossing from below to at-or-above the level.
    Rising,
    /// First crossing from above to at-or-below the level.
    Falling,
}

/// The result of a transient run: time points and per-node voltages.
///
/// Provides the measurement primitives every experiment is built from:
/// voltage lookup at a time, first threshold crossing, min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    names: Vec<String>,
    times: Vec<f64>,
    /// `volts[k]` is the snapshot at `times[k]` (node-indexed).
    volts: Vec<Vec<f64>>,
}

impl Trace {
    pub(crate) fn new(names: Vec<String>) -> Self {
        Self {
            names,
            times: Vec::new(),
            volts: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, t: f64, v: &[f64]) {
        self.times.push(t);
        self.volts.push(v.to_vec());
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The stored time points (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The node voltage at stored index `k`.
    pub fn voltage_at_index(&self, node: NodeId, k: usize) -> f64 {
        self.volts[k][node.0]
    }

    /// The final voltage of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn last_voltage(&self, node: NodeId) -> f64 {
        self.volts.last().expect("trace has samples")[node.0]
    }

    /// Linearly interpolated voltage of `node` at time `t`, or `None` if `t`
    /// lies outside the recorded window.
    pub fn voltage_at(&self, node: NodeId, t: f64) -> Option<f64> {
        if self.times.is_empty() || t < self.times[0] || t > *self.times.last().unwrap() {
            return None;
        }
        let idx = self.times.partition_point(|&x| x < t);
        if idx == 0 {
            return Some(self.volts[0][node.0]);
        }
        let (t0, t1) = (
            self.times[idx - 1],
            self.times[idx.min(self.times.len() - 1)],
        );
        let (v0, v1) = (
            self.volts[idx - 1][node.0],
            self.volts[idx.min(self.times.len() - 1)][node.0],
        );
        if t1 <= t0 {
            return Some(v1);
        }
        Some(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// The first time `node` crosses `level` in the given direction at or
    /// after `t_from`, linearly interpolated between stored samples.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NoCrossing`] when the crossing never happens
    /// in the recorded window.
    pub fn cross_time(
        &self,
        node: NodeId,
        level: f64,
        edge: Edge,
        t_from: f64,
    ) -> Result<f64, CircuitError> {
        let mut prev: Option<(f64, f64)> = None;
        for (k, &t) in self.times.iter().enumerate() {
            if t < t_from {
                continue;
            }
            let v = self.volts[k][node.0];
            if let Some((tp, vp)) = prev {
                let crossed = match edge {
                    Edge::Rising => vp < level && v >= level,
                    Edge::Falling => vp > level && v <= level,
                };
                if crossed {
                    let frac = if (v - vp).abs() < 1e-18 {
                        0.0
                    } else {
                        (level - vp) / (v - vp)
                    };
                    return Ok(tp + frac * (t - tp));
                }
            }
            prev = Some((t, v));
        }
        Err(CircuitError::NoCrossing {
            node: self.names[node.0].clone(),
            level,
        })
    }

    /// The minimum voltage of `node` over `[t_from, t_to]`.
    pub fn min_in(&self, node: NodeId, t_from: f64, t_to: f64) -> f64 {
        self.window_fold(node, t_from, t_to, f64::INFINITY, f64::min)
    }

    /// The maximum voltage of `node` over `[t_from, t_to]`.
    pub fn max_in(&self, node: NodeId, t_from: f64, t_to: f64) -> f64 {
        self.window_fold(node, t_from, t_to, f64::NEG_INFINITY, f64::max)
    }

    fn window_fold(
        &self,
        node: NodeId,
        t_from: f64,
        t_to: f64,
        init: f64,
        f: fn(f64, f64) -> f64,
    ) -> f64 {
        let mut acc = init;
        for (k, &t) in self.times.iter().enumerate() {
            if t >= t_from && t <= t_to {
                acc = f(acc, self.volts[k][node.0]);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> (Trace, NodeId) {
        // A node ramping 0 -> 1 V over 10 ns in 1 ns steps.
        let mut tr = Trace::new(vec!["gnd".into(), "x".into()]);
        for k in 0..=10 {
            let t = k as f64 * 1e-9;
            tr.push(t, &[0.0, k as f64 * 0.1]);
        }
        (tr, NodeId(1))
    }

    #[test]
    fn interpolated_lookup() {
        let (tr, x) = ramp_trace();
        let v = tr.voltage_at(x, 2.5e-9).unwrap();
        assert!((v - 0.25).abs() < 1e-12);
        assert_eq!(tr.voltage_at(x, -1.0), None);
        assert_eq!(tr.voltage_at(x, 11e-9), None);
    }

    #[test]
    fn rising_cross_interpolates() {
        let (tr, x) = ramp_trace();
        let t = tr.cross_time(x, 0.45, Edge::Rising, 0.0).unwrap();
        assert!((t - 4.5e-9).abs() < 1e-12);
    }

    #[test]
    fn falling_cross_on_ramp_fails() {
        let (tr, x) = ramp_trace();
        let err = tr.cross_time(x, 0.45, Edge::Falling, 0.0).unwrap_err();
        assert!(matches!(err, CircuitError::NoCrossing { .. }));
    }

    #[test]
    fn cross_respects_t_from() {
        let (tr, x) = ramp_trace();
        // Starting the search after the crossing point finds nothing.
        assert!(tr.cross_time(x, 0.45, Edge::Rising, 5e-9).is_err());
    }

    #[test]
    fn min_max_windows() {
        let (tr, x) = ramp_trace();
        assert_eq!(tr.min_in(x, 2e-9, 8e-9), 0.2);
        assert_eq!(tr.max_in(x, 2e-9, 8e-9), 0.8);
    }
}
