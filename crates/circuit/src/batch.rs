//! Structure-of-arrays batched transient solving.
//!
//! Monte-Carlo sweeps (and parameter sweeps like the pulse-width ablation)
//! simulate the *same netlist topology* hundreds to thousands of times with
//! different device parameters, waveforms or environments. The scalar
//! solver ([`crate::sim`]) walks one instance at a time, which leaves the
//! device-model arithmetic — four transcendental kernels per MOSFET per
//! step — stuck in a serial dependency chain.
//!
//! [`BatchSim`] compiles the topology **once** and lays the per-instance
//! state out as contiguous per-field arrays (`voltages[node][instance]`,
//! `vt[mosfet][instance]`, …). Each integration round evaluates every
//! element's currents across all instances with
//! [`bpimc_device::Mosfet::ids_batch`], whose branch-free
//! [`bpimc_device::fastmath`] body auto-vectorizes — the dominant cost of a
//! sweep drops by the host's SIMD width.
//!
//! **This is a data-layout change, not a numerics change.** Every instance
//! keeps its own adaptive time step and makes exactly the step decisions
//! the scalar solver would make; the per-instance arithmetic is the same
//! IEEE operations in the same order, so traces and measurements are
//! **bit-identical** to running [`crate::netlist::Circuit::run`] per
//! instance (pinned by property tests in `tests/prop.rs`). Instances that
//! finish early simply stop advancing while the rest of the cohort runs on.
//!
//! # Examples
//!
//! ```
//! use bpimc_circuit::{BatchSim, Circuit, SimOptions, Waveform};
//! use bpimc_device::Env;
//!
//! // Three RC discharges with different resistances, one batched solve.
//! let circuits: Vec<Circuit> = [5e3, 10e3, 20e3]
//!     .iter()
//!     .map(|&r| {
//!         let mut ckt = Circuit::new(Env::nominal());
//!         let out = ckt.add_node("out", 10e-15, 0.9);
//!         ckt.add_resistor(out, ckt.gnd(), r);
//!         ckt
//!     })
//!     .collect();
//! let opts = SimOptions::for_window(1e-9);
//! let traces = BatchSim::new(&circuits, &opts).unwrap().run();
//! assert_eq!(traces.len(), 3);
//! // Identical to the scalar solver, bit for bit.
//! assert_eq!(traces[1], circuits[1].run(&opts));
//! ```

use crate::netlist::{Circuit, NodeKind};
use crate::sim::SimOptions;
use crate::trace::Trace;
use crate::wave::Waveform;
use crate::CircuitError;
use bpimc_device::{DeviceKind, MosParams, MosParamsLanes, Mosfet};

/// A batch of structurally identical circuits prepared for one
/// structure-of-arrays transient solve. See the module docs.
#[derive(Debug)]
pub struct BatchSim<'a> {
    insts: &'a [Circuit],
    opts: SimOptions,
    /// Nodes per instance (including ground).
    nodes: usize,
    /// Per-node capacitance, `[node * batch + j]`; `INFINITY` marks
    /// driven/ground nodes exactly like the scalar solver.
    caps: Vec<f64>,
    /// Whether a node is a state node (same for every instance).
    is_state: Vec<bool>,
    /// Resistor endpoints (shared topology).
    cond_ends: Vec<(usize, usize)>,
    /// Per-resistor conductance lanes, `[res * batch + j]`.
    cond_g: Vec<f64>,
    /// MOSFET topology: polarity and drain/gate/source node indices.
    mos_topo: Vec<(DeviceKind, usize, usize, usize)>,
    /// Per-mosfet parameter lanes, `[mos * batch + j]` each.
    vt: Vec<f64>,
    phi: Vec<f64>,
    keff: Vec<f64>,
    alpha: Vec<f64>,
    lambda: Vec<f64>,
    sat_frac: Vec<f64>,
    vdsat_min: Vec<f64>,
    /// Initial voltages, `[node * batch + j]`.
    v0: Vec<f64>,
    /// Driven nodes in ascending node order, with one waveform per
    /// instance.
    driven: Vec<(usize, Vec<&'a Waveform>)>,
    /// Ground nodes (held at 0 V).
    grounds: Vec<usize>,
}

impl<'a> BatchSim<'a> {
    /// Compiles `circuits` into one batched solve with options `opts`.
    ///
    /// All circuits must share instance 0's *structure*: node count, the
    /// kind of every node, resistor endpoints, and every MOSFET's polarity
    /// and terminal wiring. Electrical content — device parameters,
    /// capacitances, resistances, waveforms, initial voltages, operating
    /// environment — is free to differ per instance; that is the point.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BatchMismatch`] naming the first instance
    /// (and difference) that breaks the shared topology.
    ///
    /// # Panics
    ///
    /// Panics if `circuits` is empty — there is no template to define the
    /// topology (callers sweep or shard a known-non-empty sample set).
    pub fn new(circuits: &'a [Circuit], opts: &SimOptions) -> Result<Self, CircuitError> {
        assert!(!circuits.is_empty(), "a batch needs at least one instance");
        let t0 = &circuits[0];
        for (idx, c) in circuits.iter().enumerate().skip(1) {
            check_topology(t0, c, idx)?;
        }
        let batch = circuits.len();
        let nodes = t0.node_count();

        let mut caps = vec![0.0; nodes * batch];
        let mut v0 = vec![0.0; nodes * batch];
        for (j, c) in circuits.iter().enumerate() {
            for (i, k) in c.kinds.iter().enumerate() {
                caps[i * batch + j] = match k {
                    NodeKind::State { cap } => *cap,
                    _ => f64::INFINITY,
                };
                v0[i * batch + j] = c.v0[i];
            }
        }
        let is_state = t0
            .kinds
            .iter()
            .map(|k| matches!(k, NodeKind::State { .. }))
            .collect();

        let cond_ends: Vec<(usize, usize)> =
            t0.resistors.iter().map(|&(a, b, _)| (a.0, b.0)).collect();
        let mut cond_g = vec![0.0; cond_ends.len() * batch];
        for (j, c) in circuits.iter().enumerate() {
            for (r, &(_, _, ohms)) in c.resistors.iter().enumerate() {
                cond_g[r * batch + j] = 1.0 / ohms;
            }
        }

        let mos_topo: Vec<(DeviceKind, usize, usize, usize)> = t0
            .mosfets
            .iter()
            .map(|m| (m.dev.kind(), m.d.0, m.g.0, m.s.0))
            .collect();
        let lanes = mos_topo.len() * batch;
        let (mut vt, mut phi, mut keff, mut alpha, mut lambda, mut sat_frac, mut vdsat_min) = (
            vec![0.0; lanes],
            vec![0.0; lanes],
            vec![0.0; lanes],
            vec![0.0; lanes],
            vec![0.0; lanes],
            vec![0.0; lanes],
            vec![0.0; lanes],
        );
        for (j, c) in circuits.iter().enumerate() {
            for (m, inst) in c.mosfets.iter().enumerate() {
                let p = MosParams::compile(&inst.dev, c.env());
                let at = m * batch + j;
                vt[at] = p.vt;
                phi[at] = p.phi;
                keff[at] = p.keff;
                alpha[at] = p.alpha;
                lambda[at] = p.lambda;
                sat_frac[at] = p.sat_frac;
                vdsat_min[at] = p.vdsat_min;
            }
        }

        let mut driven: Vec<(usize, Vec<&'a Waveform>)> = Vec::new();
        let mut grounds = Vec::new();
        for (i, k) in t0.kinds.iter().enumerate() {
            match k {
                NodeKind::Driven { .. } => {
                    let waves = circuits
                        .iter()
                        .map(|c| match &c.kinds[i] {
                            NodeKind::Driven { wave } => wave,
                            _ => unreachable!("topology checked above"),
                        })
                        .collect();
                    driven.push((i, waves));
                }
                NodeKind::Ground => grounds.push(i),
                NodeKind::State { .. } => {}
            }
        }

        Ok(Self {
            insts: circuits,
            opts: *opts,
            nodes,
            caps,
            is_state,
            cond_ends,
            cond_g,
            mos_topo,
            vt,
            phi,
            keff,
            alpha,
            lambda,
            sat_frac,
            vdsat_min,
            v0,
            driven,
            grounds,
        })
    }

    /// Number of instances in the batch.
    pub fn batch(&self) -> usize {
        self.insts.len()
    }

    /// Parameter lanes of mosfet `m`.
    fn lanes_of(&self, m: usize) -> MosParamsLanes<'_> {
        let b = self.batch();
        let r = m * b..(m + 1) * b;
        MosParamsLanes {
            vt: &self.vt[r.clone()],
            phi: &self.phi[r.clone()],
            keff: &self.keff[r.clone()],
            alpha: &self.alpha[r.clone()],
            lambda: &self.lambda[r.clone()],
            sat_frac: &self.sat_frac[r.clone()],
            vdsat_min: &self.vdsat_min[r],
        }
    }

    /// Element currents into `dvdt` and, when `gc` is given, the per-node
    /// stiffness rates — the batched twin of the scalar solver's
    /// `derivatives` / `derivatives_g`, same element order, same
    /// per-instance arithmetic.
    fn derivatives(
        &self,
        v: &[f64],
        dvdt: &mut [f64],
        mut gc: Option<&mut [f64]>,
        s: &mut Scratch,
    ) {
        let b = self.batch();
        dvdt.fill(0.0);
        if let Some(g) = gc.as_deref_mut() {
            g.fill(0.0);
        }
        for (r, &(a, bn)) in self.cond_ends.iter().enumerate() {
            let gl = &self.cond_g[r * b..(r + 1) * b];
            let (av, bv) = (a * b, bn * b);
            for j in 0..b {
                s.cur[j] = (v[av + j] - v[bv + j]) * gl[j];
            }
            for j in 0..b {
                dvdt[av + j] -= s.cur[j];
            }
            for j in 0..b {
                dvdt[bv + j] += s.cur[j];
            }
            if let Some(g) = gc.as_deref_mut() {
                for j in 0..b {
                    g[av + j] += gl[j];
                }
                for j in 0..b {
                    g[bv + j] += gl[j];
                }
            }
        }
        for (m, &(kind, d, gnode, src)) in self.mos_topo.iter().enumerate() {
            let (dv, gv, sv) = (d * b, gnode * b, src * b);
            // Terminal orientation exactly as the scalar solver decides it:
            // `(hi, lo) = if v[d] >= v[s] { (d, s) } else { (s, d) }`.
            match kind {
                DeviceKind::Nmos => {
                    for j in 0..b {
                        let (vd, vs) = (v[dv + j], v[sv + j]);
                        let fwd = vd >= vs;
                        let (hi, lo) = if fwd { (vd, vs) } else { (vs, vd) };
                        s.vds[j] = hi - lo;
                        s.vgs[j] = v[gv + j] - lo;
                        s.sgn[j] = if fwd { 1.0 } else { -1.0 };
                    }
                }
                DeviceKind::Pmos => {
                    for j in 0..b {
                        let (vd, vs) = (v[dv + j], v[sv + j]);
                        let fwd = vd >= vs;
                        let (hi, lo) = if fwd { (vd, vs) } else { (vs, vd) };
                        s.vds[j] = hi - lo;
                        s.vgs[j] = hi - v[gv + j];
                        s.sgn[j] = if fwd { 1.0 } else { -1.0 };
                    }
                }
            }
            Mosfet::ids_batch(&self.lanes_of(m), &s.vgs, &s.vds, &mut s.cur, &mut s.gds);
            // Signed current in drain->source orientation; `x -= -i` and
            // `x += i` are the same IEEE operation, so per-instance results
            // match the scalar solver's hi/lo formulation bit for bit.
            for j in 0..b {
                s.cur[j] *= s.sgn[j];
            }
            for j in 0..b {
                dvdt[dv + j] -= s.cur[j];
            }
            for j in 0..b {
                dvdt[sv + j] += s.cur[j];
            }
            if let Some(g) = gc.as_deref_mut() {
                for j in 0..b {
                    g[dv + j] += s.gds[j];
                }
                for j in 0..b {
                    g[sv + j] += s.gds[j];
                }
            }
        }
        for i in 0..self.nodes {
            let at = i * b;
            if self.is_state[i] {
                for j in 0..b {
                    dvdt[at + j] /= self.caps[at + j];
                }
                if let Some(g) = gc.as_deref_mut() {
                    for j in 0..b {
                        g[at + j] /= self.caps[at + j];
                    }
                }
            } else {
                dvdt[at..at + b].fill(0.0);
                if let Some(g) = gc.as_deref_mut() {
                    g[at..at + b].fill(0.0);
                }
            }
        }
    }

    /// Sets instance `j`'s driven and ground nodes for time `t`.
    fn apply_sources(&self, j: usize, t: f64, v: &mut [f64]) {
        let b = self.batch();
        for (node, waves) in &self.driven {
            v[node * b + j] = waves[j].at(t);
        }
        for &node in &self.grounds {
            v[node * b + j] = 0.0;
        }
    }

    /// Instance `j`'s fastest driven-node movement across `[t, t + dt]` —
    /// the scalar solver's `source_slew`, same sampling, same fold order.
    fn source_slew(&self, j: usize, t: f64, dt: f64, v: &[f64]) -> f64 {
        let b = self.batch();
        let mut worst = 0.0f64;
        for (node, waves) in &self.driven {
            for q in [0.5, 1.0] {
                worst = worst.max((waves[j].at(t + q * dt) - v[node * b + j]).abs());
            }
        }
        worst
    }

    /// Runs every instance to `t_stop` and returns one trace per instance,
    /// in batch order — each bit-identical to the scalar solver's trace
    /// for that instance.
    pub fn run(&self) -> Vec<Trace> {
        let b = self.batch();
        let n = self.nodes;
        let opts = &self.opts;
        let dv_max = opts.dv_max;
        let dt_min = opts.dt / f64::from(1u32 << opts.max_depth.min(30));
        let dt_max = opts.dt * opts.max_growth.max(1.0);
        let src_dv_max = 2.0 * dv_max;

        let mut v = self.v0.clone();
        for j in 0..b {
            self.apply_sources(j, 0.0, &mut v);
        }
        let mut k1 = vec![0.0; n * b];
        let mut k2 = vec![0.0; n * b];
        let mut tmp = vec![0.0; n * b];
        let mut gc = vec![0.0; n * b];
        let mut scratch = Scratch::new(b);
        let mut row = vec![0.0; n];

        let mut traces: Vec<Trace> = self
            .insts
            .iter()
            .map(|c| Trace::new(c.names.clone()))
            .collect();
        let mut t = vec![0.0f64; b];
        let mut dt_next = vec![opts.dt; b];
        let mut next_store = vec![opts.store_dt; b];
        let mut dts = vec![0.0f64; b];
        let mut active = vec![true; b];
        for (j, tr) in traces.iter_mut().enumerate() {
            gather_row(&v, b, j, &mut row);
            tr.push(0.0, &row);
        }

        let mut n_active = b;
        while n_active > 0 {
            self.derivatives(&v, &mut k1, Some(&mut gc), &mut scratch);
            // Per-instance step sizing — the scalar solver's decisions,
            // instance by instance.
            for (j, dt_slot) in dts.iter_mut().enumerate() {
                if !active[j] {
                    *dt_slot = 0.0;
                    continue;
                }
                let mut dt_step = dt_next[j].min(opts.t_stop - t[j]);
                for i in 0..n {
                    let at = i * b + j;
                    let denom = k1[at].abs() - dv_max * gc[at];
                    if denom > 0.0 {
                        dt_step = dt_step.min(dv_max / denom);
                    }
                }
                dt_step = dt_step.max(dt_min).min(opts.t_stop - t[j]);
                while dt_step > opts.dt && self.source_slew(j, t[j], dt_step, &v) > src_dv_max {
                    dt_step *= 0.5;
                }
                *dt_slot = dt_step;
            }
            // Damped predictor for every lane at once (inactive lanes get
            // `dt = 0`, i.e. scratch values that are never read back).
            for i in 0..n {
                let at = i * b;
                for j in 0..b {
                    let dt = dts[j];
                    tmp[at + j] = v[at + j] + k1[at + j] * dt / (1.0 + gc[at + j] * dt);
                }
            }
            for j in 0..b {
                if active[j] {
                    self.apply_sources(j, t[j] + dts[j], &mut tmp);
                }
            }
            self.derivatives(&tmp, &mut k2, None, &mut scratch);
            // Accept or retry, per instance.
            for j in 0..b {
                if !active[j] {
                    continue;
                }
                let dt_step = dts[j];
                let mut err = 0.0f64;
                for i in 0..n {
                    let at = i * b + j;
                    if gc[at] * dt_step <= 1.0 {
                        err = err.max((k2[at] - k1[at]).abs() * dt_step * 0.5);
                    }
                }
                if err > dv_max && dt_step > dt_min * 1.5 {
                    dt_next[j] = (dt_step * 0.5).max(dt_min);
                    continue;
                }
                for i in 0..n {
                    let at = i * b + j;
                    let r = gc[at] * dt_step;
                    if r > 1.0 {
                        v[at] += k1[at] * dt_step / (1.0 + r);
                    } else {
                        v[at] += 0.5 * (k1[at] + k2[at]) * dt_step;
                    }
                }
                self.apply_sources(j, t[j] + dt_step, &mut v);
                t[j] += dt_step;
                if t[j] + 1e-18 >= next_store[j] {
                    gather_row(&v, b, j, &mut row);
                    traces[j].push(t[j], &row);
                    next_store[j] = t[j] + opts.store_dt;
                }
                dt_next[j] = if err < 0.25 * dv_max {
                    (dt_step * 2.0).min(dt_max)
                } else {
                    dt_step.min(dt_max)
                };
                if t[j] >= opts.t_stop - 1e-18 {
                    active[j] = false;
                    n_active -= 1;
                    if traces[j].times().last().copied() != Some(t[j]) {
                        gather_row(&v, b, j, &mut row);
                        traces[j].push(t[j], &row);
                    }
                }
            }
        }
        traces
    }
}

/// Per-mosfet evaluation scratch, reused across rounds.
struct Scratch {
    vgs: Vec<f64>,
    vds: Vec<f64>,
    sgn: Vec<f64>,
    cur: Vec<f64>,
    gds: Vec<f64>,
}

impl Scratch {
    fn new(b: usize) -> Self {
        Self {
            vgs: vec![0.0; b],
            vds: vec![0.0; b],
            sgn: vec![0.0; b],
            cur: vec![0.0; b],
            gds: vec![0.0; b],
        }
    }
}

/// Copies instance `j`'s voltages out of the SoA layout.
fn gather_row(v: &[f64], b: usize, j: usize, row: &mut [f64]) {
    for (i, slot) in row.iter_mut().enumerate() {
        *slot = v[i * b + j];
    }
}

/// Structural equality of instance `idx` against the template.
fn check_topology(t0: &Circuit, c: &Circuit, idx: usize) -> Result<(), CircuitError> {
    let fail = |reason: String| {
        Err(CircuitError::BatchMismatch {
            instance: idx,
            reason,
        })
    };
    if c.node_count() != t0.node_count() {
        return fail(format!("{} nodes vs {}", c.node_count(), t0.node_count()));
    }
    for (i, (ka, kb)) in t0.kinds.iter().zip(&c.kinds).enumerate() {
        let same = matches!(
            (ka, kb),
            (NodeKind::State { .. }, NodeKind::State { .. })
                | (NodeKind::Driven { .. }, NodeKind::Driven { .. })
                | (NodeKind::Ground, NodeKind::Ground)
        );
        if !same {
            return fail(format!("node {i} kind differs"));
        }
    }
    if c.resistors.len() != t0.resistors.len() {
        return fail(format!(
            "{} resistors vs {}",
            c.resistors.len(),
            t0.resistors.len()
        ));
    }
    for (r, (ra, rb)) in t0.resistors.iter().zip(&c.resistors).enumerate() {
        if (ra.0, ra.1) != (rb.0, rb.1) {
            return fail(format!("resistor {r} endpoints differ"));
        }
    }
    if c.mosfets.len() != t0.mosfets.len() {
        return fail(format!(
            "{} mosfets vs {}",
            c.mosfets.len(),
            t0.mosfets.len()
        ));
    }
    for (m, (ma, mb)) in t0.mosfets.iter().zip(&c.mosfets).enumerate() {
        if ma.dev.kind() != mb.dev.kind() {
            return fail(format!("mosfet {m} polarity differs"));
        }
        if (ma.d, ma.g, ma.s) != (mb.d, mb.g, mb.s) {
            return fail(format!("mosfet {m} wiring differs"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_device::{Env, VtFlavor};

    fn rc(r: f64) -> Circuit {
        let mut ckt = Circuit::new(Env::nominal());
        let out = ckt.add_node("out", 10e-15, 0.9);
        ckt.add_resistor(out, ckt.gnd(), r);
        ckt
    }

    fn nmos_pulldown(dvt: f64, vdd: f64) -> Circuit {
        let mut ckt = Circuit::new(Env::nominal());
        let gate = ckt.add_source("g", Waveform::step(0.0, vdd, 100e-12, 20e-12));
        let bl = ckt.add_node("bl", 20e-15, vdd);
        ckt.add_mosfet(
            Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0).with_dvt(dvt),
            bl,
            gate,
            ckt.gnd(),
        );
        ckt
    }

    #[test]
    fn batch_of_rcs_matches_scalar_bit_for_bit() {
        let circuits: Vec<Circuit> = [2e3, 5e3, 10e3, 20e3, 50e3].map(rc).into_iter().collect();
        let opts = SimOptions::for_window(1e-9);
        let traces = BatchSim::new(&circuits, &opts).unwrap().run();
        for (c, tr) in circuits.iter().zip(&traces) {
            assert_eq!(*tr, c.run(&opts));
        }
    }

    #[test]
    fn batch_of_mosfet_discharges_matches_scalar_bit_for_bit() {
        let circuits: Vec<Circuit> = (0..7)
            .map(|i| nmos_pulldown(i as f64 * 0.01 - 0.03, 0.9))
            .collect();
        let opts = SimOptions::for_window(2e-9);
        let traces = BatchSim::new(&circuits, &opts).unwrap().run();
        for (c, tr) in circuits.iter().zip(&traces) {
            let scalar = c.run(&opts);
            assert_eq!(tr.times(), scalar.times());
            assert_eq!(*tr, scalar);
        }
    }

    #[test]
    fn per_instance_waveforms_and_supplies_are_allowed() {
        // Different gate step times AND different VDD per instance: the
        // ablation/vrange sweep shape.
        let circuits: Vec<Circuit> = [(0.8, 50e-12), (0.9, 100e-12), (1.0, 200e-12)]
            .iter()
            .map(|&(vdd, t0)| {
                let mut ckt = Circuit::new(Env::nominal().with_vdd(vdd));
                let gate = ckt.add_source("g", Waveform::step(0.0, vdd, t0, 20e-12));
                let bl = ckt.add_node("bl", 20e-15, vdd);
                ckt.add_mosfet(Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0), bl, gate, ckt.gnd());
                ckt
            })
            .collect();
        let opts = SimOptions::for_window(2e-9);
        let traces = BatchSim::new(&circuits, &opts).unwrap().run();
        for (c, tr) in circuits.iter().zip(&traces) {
            assert_eq!(*tr, c.run(&opts));
        }
    }

    #[test]
    fn single_instance_batch_matches_scalar() {
        let circuits = vec![nmos_pulldown(0.0, 0.9)];
        let opts = SimOptions::for_window(1e-9);
        let traces = BatchSim::new(&circuits, &opts).unwrap().run();
        assert_eq!(traces[0], circuits[0].run(&opts));
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let a = rc(1e4);
        let b = nmos_pulldown(0.0, 0.9);
        let err = BatchSim::new(&[a, b], &SimOptions::for_window(1e-9)).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::BatchMismatch { instance: 1, .. }
        ));
    }
}
