//! Parallel Monte-Carlo execution with per-sample deterministic seeding.
//!
//! Every sample `i` of a run gets its own RNG seeded from `(seed, i)`, so
//! results are bit-identical regardless of thread count, scheduling or
//! batching — a property the workspace's reproducibility tests rely on.
//!
//! Two execution shapes share that contract:
//!
//! * [`montecarlo_map`] — the scalar path: one closure per sample, claimed
//!   off a shared queue in load-balanced blocks.
//! * [`montecarlo_batch`] — the fast path for transient sweeps: samples are
//!   sharded into cohorts, each cohort's circuits are built with their
//!   per-sample RNGs and solved together by one structure-of-arrays
//!   [`BatchSim`], and each finished trace is measured back into a
//!   per-sample value. Sample `i`'s result is bit-identical to building
//!   and running it alone (the batch engine's core guarantee).

use crate::batch::BatchSim;
use crate::netlist::Circuit;
use crate::sim::SimOptions;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the per-sample RNG for sample `i` of a run seeded with `seed`.
///
/// Uses SplitMix64 on the combined value so neighbouring sample indices get
/// decorrelated streams.
pub fn sample_rng(seed: u64, i: u64) -> StdRng {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Runs `n` Monte-Carlo samples of `f` in parallel and returns the results
/// in sample order.
///
/// `f` receives the sample index and a deterministic per-sample RNG.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let xs = bpimc_circuit::mc::montecarlo_map(100, 42, |_, rng| rng.random::<f64>());
/// let again = bpimc_circuit::mc::montecarlo_map(100, 42, |_, rng| rng.random::<f64>());
/// assert_eq!(xs, again);
/// ```
pub fn montecarlo_map<T, F>(n: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    // Claim-queue dispatch: adaptive transient samples vary in cost, so
    // fixed per-lane chunks would leave the fast lane idle behind the slow
    // one; claimed blocks (multi-millisecond granularity at the
    // workspace's sample costs) keep every lane busy to the end.
    bpimc_stats::parallel::par_claim_indexed_map(n, |i| {
        let mut rng = sample_rng(seed, i as u64);
        f(i, &mut rng)
    })
}

/// How many Monte-Carlo samples one [`BatchSim`] cohort carries in
/// [`montecarlo_batch`].
///
/// Wide enough to fill the host's SIMD lanes with headroom, narrow enough
/// that the spread of per-sample step counts (the whole cohort runs until
/// its slowest member finishes) wastes little work and a cohort's traces
/// stay cache-friendly.
pub const BATCH_COHORT: usize = 16;

/// Runs `n` Monte-Carlo transient samples through the structure-of-arrays
/// batch engine and returns per-sample measurements in sample order.
///
/// `build` receives the sample index and its deterministic `(seed, i)` RNG
/// and returns that sample's circuit; every circuit must share one
/// topology (they are process draws over one netlist — see
/// [`BatchSim::new`]). `measure` turns sample `i`'s finished trace into
/// its result. Cohorts of [`BATCH_COHORT`] samples are solved together and
/// fanned across the worker pool in claim-queue blocks, each carrying
/// multiple milliseconds of simulation.
///
/// Results are bit-identical to the scalar path
/// (`montecarlo_map` + [`Circuit::run`]) sample for sample, for any cohort
/// size and thread count.
///
/// # Panics
///
/// Panics if `build` produces circuits with mismatched topologies.
///
/// # Examples
///
/// ```
/// use bpimc_circuit::{Circuit, SimOptions};
/// use bpimc_device::Env;
/// use rand::Rng;
///
/// // Node handles are positional, so a template build names the nodes
/// // every sample's circuit will have.
/// fn discharge(r: f64) -> (Circuit, bpimc_circuit::NodeId) {
///     let mut ckt = Circuit::new(Env::nominal());
///     let out = ckt.add_node("out", 10e-15, 0.9);
///     ckt.add_resistor(out, ckt.gnd(), r);
///     (ckt, out)
/// }
/// let (_, out) = discharge(10e3);
/// let opts = SimOptions::for_window(0.5e-9);
/// let finals = bpimc_circuit::mc::montecarlo_batch(
///     40,
///     7,
///     &opts,
///     |_, rng| discharge(8_000.0 + 4_000.0 * rng.random::<f64>()).0,
///     |_, trace| trace.last_voltage(out),
/// );
/// assert_eq!(finals.len(), 40);
/// ```
pub fn montecarlo_batch<T, B, M>(
    n: usize,
    seed: u64,
    opts: &SimOptions,
    build: B,
    measure: M,
) -> Vec<T>
where
    T: Send,
    B: Fn(usize, &mut StdRng) -> Circuit + Sync,
    M: Fn(usize, &Trace) -> T + Sync,
{
    let cohorts = n.div_ceil(BATCH_COHORT);
    let per_cohort: Vec<Vec<T>> = bpimc_stats::parallel::par_claim_indexed_map(cohorts, |c| {
        let start = c * BATCH_COHORT;
        let end = (start + BATCH_COHORT).min(n);
        let circuits: Vec<Circuit> = (start..end)
            .map(|i| {
                let mut rng = sample_rng(seed, i as u64);
                build(i, &mut rng)
            })
            .collect();
        let sim = BatchSim::new(&circuits, opts).expect("cohort circuits share one topology");
        sim.run()
            .iter()
            .enumerate()
            .map(|(k, trace)| measure(start + k, trace))
            .collect()
    });
    per_cohort.into_iter().flatten().collect()
}

/// Convenience wrapper returning `f64` samples (the common case: a measured
/// delay or margin per sample).
pub fn montecarlo<F>(n: usize, seed: u64, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut StdRng) -> f64 + Sync,
{
    montecarlo_map(n, seed, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_sample_order_and_deterministic() {
        let xs = montecarlo_map(257, 7, |i, _| i);
        assert_eq!(xs, (0..257).collect::<Vec<_>>());
        let a = montecarlo(1000, 99, |_, rng| rng.random::<f64>());
        let b = montecarlo(1000, 99, |_, rng| rng.random::<f64>());
        assert_eq!(a, b);
    }

    #[test]
    fn different_samples_get_different_streams() {
        let xs = montecarlo(64, 1, |_, rng| rng.random::<f64>());
        let distinct: std::collections::HashSet<u64> = xs.iter().map(|x| x.to_bits()).collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn zero_samples_is_fine() {
        let xs = montecarlo(0, 1, |_, _| 0.0);
        assert!(xs.is_empty());
    }

    #[test]
    fn seed_changes_results() {
        let a = montecarlo(32, 1, |_, rng| rng.random::<f64>());
        let b = montecarlo(32, 2, |_, rng| rng.random::<f64>());
        assert_ne!(a, b);
    }

    #[test]
    fn montecarlo_batch_equals_the_scalar_path_sample_for_sample() {
        use crate::netlist::Circuit;
        use crate::sim::SimOptions;
        use bpimc_device::{Env, Mosfet, VtFlavor};

        // A mismatch-sampled NMOS pulldown, the fig2 workload in miniature.
        let build = |rng: &mut StdRng| {
            let mut ckt = Circuit::new(Env::nominal());
            let gate = ckt.add_source("g", crate::Waveform::step(0.0, 0.9, 100e-12, 20e-12));
            let bl = ckt.add_node("bl", 20e-15, 0.9);
            let dvt = 0.03 * (rng.random::<f64>() - 0.5);
            ckt.add_mosfet(
                Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0).with_dvt(dvt),
                bl,
                gate,
                ckt.gnd(),
            );
            (ckt, bl)
        };
        let opts = SimOptions::for_window(1e-9);
        // 37 samples: crosses cohort boundaries and leaves a remainder.
        let batched = montecarlo_batch(
            37,
            11,
            &opts,
            |_, rng| build(rng).0,
            |_, trace| {
                let (_, bl) = build(&mut sample_rng(0, 0));
                trace.last_voltage(bl)
            },
        );
        let scalar = montecarlo(37, 11, |_, rng| {
            let (ckt, bl) = build(rng);
            ckt.run(&opts).last_voltage(bl)
        });
        assert_eq!(batched.len(), scalar.len());
        for (i, (a, b)) in batched.iter().zip(&scalar).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i}: {a} vs {b}");
        }
    }
}
