//! Parallel Monte-Carlo execution with per-sample deterministic seeding.
//!
//! Every sample `i` of a run gets its own RNG seeded from `(seed, i)`, so
//! results are bit-identical regardless of thread count or scheduling — a
//! property the workspace's reproducibility tests rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the per-sample RNG for sample `i` of a run seeded with `seed`.
///
/// Uses SplitMix64 on the combined value so neighbouring sample indices get
/// decorrelated streams.
pub fn sample_rng(seed: u64, i: u64) -> StdRng {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Runs `n` Monte-Carlo samples of `f` in parallel and returns the results
/// in sample order.
///
/// `f` receives the sample index and a deterministic per-sample RNG.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let xs = bpimc_circuit::mc::montecarlo_map(100, 42, |_, rng| rng.random::<f64>());
/// let again = bpimc_circuit::mc::montecarlo_map(100, 42, |_, rng| rng.random::<f64>());
/// assert_eq!(xs, again);
/// ```
pub fn montecarlo_map<T, F>(n: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    bpimc_stats::parallel::par_indexed_map(n, |i| {
        let mut rng = sample_rng(seed, i as u64);
        f(i, &mut rng)
    })
}

/// Convenience wrapper returning `f64` samples (the common case: a measured
/// delay or margin per sample).
pub fn montecarlo<F>(n: usize, seed: u64, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut StdRng) -> f64 + Sync,
{
    montecarlo_map(n, seed, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_sample_order_and_deterministic() {
        let xs = montecarlo_map(257, 7, |i, _| i);
        assert_eq!(xs, (0..257).collect::<Vec<_>>());
        let a = montecarlo(1000, 99, |_, rng| rng.random::<f64>());
        let b = montecarlo(1000, 99, |_, rng| rng.random::<f64>());
        assert_eq!(a, b);
    }

    #[test]
    fn different_samples_get_different_streams() {
        let xs = montecarlo(64, 1, |_, rng| rng.random::<f64>());
        let distinct: std::collections::HashSet<u64> = xs.iter().map(|x| x.to_bits()).collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn zero_samples_is_fine() {
        let xs = montecarlo(0, 1, |_, _| 0.0);
        assert!(xs.is_empty());
    }

    #[test]
    fn seed_changes_results() {
        let a = montecarlo(32, 1, |_, rng| rng.random::<f64>());
        let b = montecarlo(32, 2, |_, rng| rng.random::<f64>());
        assert_ne!(a, b);
    }
}
