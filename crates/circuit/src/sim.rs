//! The explicit transient integrator.

use crate::netlist::{Circuit, NodeKind};
use crate::trace::Trace;
use bpimc_device::{DeviceKind, MosParams};

/// Options controlling a transient run.
///
/// The integrator is adaptive: each step is sized so no state node moves
/// more than `dv_max`, shrinking into fast transients (down to
/// `dt / 2^max_depth`) and growing through quiet regions (up to
/// `dt * max_growth`). The 20 mV guard matches the original fixed-step
/// integrator's sub-stepping criterion, so accuracy in active regions is
/// unchanged while quiescent tails cost almost nothing.
/// [`SimOptions::for_window`] is the common entry point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// End of the simulated window, seconds.
    pub t_stop: f64,
    /// Base integration step, seconds.
    pub dt: f64,
    /// Trace storage interval, seconds (decimation of the raw steps).
    pub store_dt: f64,
    /// Maximum allowed per-node voltage change per step before the step is
    /// shrunk (volts). Also bounds the accepted Heun corrector error.
    pub dv_max: f64,
    /// Maximum halving depth below the base step for fast transients.
    pub max_depth: u32,
    /// Maximum step growth factor above the base step in quiet regions.
    /// `1.0` reproduces the original fixed-step behaviour.
    pub max_growth: f64,
    /// Evaluate the device model on the `fastmath::quick` scalar tier
    /// (shorter polynomials, ~1e-8 relative device error — far below the
    /// 20 mV accuracy guard) instead of the full-precision kernels shared
    /// with the batch engine. **Scalar runs only**: results are no longer
    /// bit-identical to [`crate::BatchSim`] (which always stays on the
    /// shared kernels), so leave this off wherever a batch path must
    /// reproduce the run exactly. Default `false`.
    pub fast_math: bool,
}

impl SimOptions {
    /// Sensible defaults for a window of `t_stop` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive.
    pub fn for_window(t_stop: f64) -> Self {
        assert!(t_stop > 0.0, "simulation window must be positive");
        Self {
            t_stop,
            dt: 0.5e-12,
            store_dt: 1.0e-12,
            dv_max: 0.02,
            max_depth: 10,
            max_growth: 64.0,
            fast_math: false,
        }
    }

    /// Returns a copy with a different base step.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
        self
    }

    /// Returns a copy with a different quiet-region growth cap.
    pub fn with_max_growth(mut self, g: f64) -> Self {
        assert!(g >= 1.0, "growth cap must be at least 1");
        self.max_growth = g;
        self
    }

    /// Returns a copy with the quick scalar math tier switched on or off
    /// (see [`SimOptions::fast_math`]).
    pub fn with_fast_math(mut self, on: bool) -> Self {
        self.fast_math = on;
        self
    }
}

/// A compiled MOSFET bound to its node indices, for the scalar inner loop.
///
/// The electrical kernel lives in [`MosParams`] (shared with the batched
/// engine in [`crate::batch`], which evaluates the identical arithmetic over
/// parameter arrays — the two paths agree bit for bit).
#[derive(Debug, Clone, Copy)]
struct CompiledMos {
    kind: DeviceKind,
    d: usize,
    g: usize,
    s: usize,
    p: MosParams,
}

/// One prepared transient run over a circuit.
pub(crate) struct Transient<'a> {
    ckt: &'a Circuit,
    opts: SimOptions,
    caps: Vec<f64>,
    mosfets: Vec<CompiledMos>,
    /// (a, b, conductance)
    conductors: Vec<(usize, usize, f64)>,
}

impl<'a> Transient<'a> {
    pub(crate) fn new(ckt: &'a Circuit, opts: &SimOptions) -> Self {
        let caps = ckt
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::State { cap } => *cap,
                _ => f64::INFINITY,
            })
            .collect();
        let mosfets = ckt
            .mosfets
            .iter()
            .map(|m| CompiledMos {
                kind: m.dev.kind(),
                d: m.d.0,
                g: m.g.0,
                s: m.s.0,
                p: MosParams::compile(&m.dev, ckt.env()),
            })
            .collect();
        let conductors = ckt
            .resistors
            .iter()
            .map(|&(a, b, r)| (a.0, b.0, 1.0 / r))
            .collect();
        Self {
            ckt,
            opts: *opts,
            caps,
            mosfets,
            conductors,
        }
    }

    /// Element currents as dV/dt only (no conductance bookkeeping): the
    /// corrector stage needs just the slopes.
    fn derivatives(&self, v: &[f64], dvdt: &mut [f64]) {
        dvdt.fill(0.0);
        for &(a, b, gcond) in &self.conductors {
            let i = (v[a] - v[b]) * gcond;
            dvdt[a] -= i;
            dvdt[b] += i;
        }
        for m in &self.mosfets {
            let (hi, lo) = if v[m.d] >= v[m.s] {
                (m.d, m.s)
            } else {
                (m.s, m.d)
            };
            let vds = v[hi] - v[lo];
            let vgs = match m.kind {
                DeviceKind::Nmos => v[m.g] - v[lo],
                DeviceKind::Pmos => v[hi] - v[m.g],
            };
            let (i, _) = if self.opts.fast_math {
                m.p.id_g_quick(vgs, vds)
            } else {
                m.p.id_g(vgs, vds)
            };
            dvdt[hi] -= i;
            dvdt[lo] += i;
        }
        for (i, c) in self.caps.iter().enumerate() {
            if c.is_finite() {
                dvdt[i] /= c;
            } else {
                dvdt[i] = 0.0;
            }
        }
    }

    /// Accumulates each node's derivative and also its
    /// local stiffness rate `gc[i] = G_i / C_i` (1/s), where `G_i` is the
    /// summed small-signal conductance hanging on node `i`. The integrator
    /// uses it to damp nodes whose time constant is far below the step.
    fn derivatives_g(&self, v: &[f64], dvdt: &mut [f64], gc: &mut [f64]) {
        dvdt.fill(0.0);
        gc.fill(0.0);
        for &(a, b, gcond) in &self.conductors {
            let i = (v[a] - v[b]) * gcond;
            dvdt[a] -= i;
            dvdt[b] += i;
            gc[a] += gcond;
            gc[b] += gcond;
        }
        for m in &self.mosfets {
            let (hi, lo) = if v[m.d] >= v[m.s] {
                (m.d, m.s)
            } else {
                (m.s, m.d)
            };
            let vds = v[hi] - v[lo];
            let vgs = match m.kind {
                DeviceKind::Nmos => v[m.g] - v[lo],
                DeviceKind::Pmos => v[hi] - v[m.g],
            };
            let (i, g) = if self.opts.fast_math {
                m.p.id_g_quick(vgs, vds)
            } else {
                m.p.id_g(vgs, vds)
            };
            // Conventional current flows hi -> lo through the channel.
            dvdt[hi] -= i;
            dvdt[lo] += i;
            gc[hi] += g;
            gc[lo] += g;
        }
        for (i, c) in self.caps.iter().enumerate() {
            if c.is_finite() {
                dvdt[i] /= c;
                gc[i] /= c;
            } else {
                dvdt[i] = 0.0;
                gc[i] = 0.0;
            }
        }
    }

    /// Sets driven node voltages for time `t`.
    fn apply_sources(&self, t: f64, v: &mut [f64]) {
        for (i, k) in self.ckt.kinds.iter().enumerate() {
            match k {
                NodeKind::Driven { wave } => v[i] = wave.at(t),
                NodeKind::Ground => v[i] = 0.0,
                NodeKind::State { .. } => {}
            }
        }
    }

    /// The fastest any driven node moves across `[t, t + dt]`, volts.
    /// Sampled at the midpoint too, so a grown step cannot leap over a
    /// whole pulse whose endpoints happen to match (pulses shorter than
    /// `dt / 2` could still be missed; the integrator caps growth well
    /// below the shortest waveform feature the benches use).
    fn source_slew(&self, t: f64, dt: f64, v: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (i, k) in self.ckt.kinds.iter().enumerate() {
            if let NodeKind::Driven { wave } = k {
                for q in [0.5, 1.0] {
                    worst = worst.max((wave.at(t + q * dt) - v[i]).abs());
                }
            }
        }
        worst
    }

    pub(crate) fn run(&self) -> Trace {
        let n = self.ckt.node_count();
        let mut v = self.ckt.v0.clone();
        self.apply_sources(0.0, &mut v);
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        let mut trace = Trace::new(self.ckt.names.clone());
        trace.push(0.0, &v);

        let dv_max = self.opts.dv_max;
        let dt_min = self.opts.dt / f64::from(1u32 << self.opts.max_depth.min(30));
        let dt_max = self.opts.dt * self.opts.max_growth.max(1.0);
        // Driven edges (e.g. a 15 ps WL edge) must be walked through, not
        // leapt over; allow a little more swing per step than state nodes
        // get since sources are exact by construction.
        let src_dv_max = 2.0 * dv_max;

        let mut gc = vec![0.0; n];
        let mut t = 0.0f64;
        let mut dt_next = self.opts.dt;
        let mut next_store = self.opts.store_dt;
        while t < self.opts.t_stop - 1e-18 {
            self.derivatives_g(&v, &mut k1, &mut gc);
            // Accuracy/stability guard: the same `dv_max` per-step movement
            // criterion the fixed-step integrator enforced by recursive
            // halving, but solved for dt. A node damped by its own local
            // conductance moves `|k1| * dt / (1 + dt * gc)`, which stays
            // below dv_max for ANY dt once `|k1| / gc <= dv_max` — such
            // nodes (stiff, near their local equilibrium) do not limit the
            // step at all.
            let mut dt_step = dt_next.min(self.opts.t_stop - t);
            for i in 0..n {
                let denom = k1[i].abs() - dv_max * gc[i];
                if denom > 0.0 {
                    dt_step = dt_step.min(dv_max / denom);
                }
            }
            dt_step = dt_step.max(dt_min).min(self.opts.t_stop - t);
            while dt_step > self.opts.dt && self.source_slew(t, dt_step, &v) > src_dv_max {
                dt_step *= 0.5;
            }

            // Predictor at t+dt (stiff nodes damped), then trapezoidal
            // correction for the smooth nodes.
            tmp.copy_from_slice(&v);
            for i in 0..n {
                tmp[i] += k1[i] * dt_step / (1.0 + gc[i] * dt_step);
            }
            self.apply_sources(t + dt_step, &mut tmp);
            self.derivatives(&tmp, &mut k2);
            let mut err = 0.0f64;
            for i in 0..n {
                if gc[i] * dt_step <= 1.0 {
                    err = err.max((k2[i] - k1[i]).abs() * dt_step * 0.5);
                }
            }
            if err > dv_max && dt_step > dt_min * 1.5 {
                // Corrector disagrees hard on a smooth node: retry smaller.
                dt_next = (dt_step * 0.5).max(dt_min);
                continue;
            }
            for i in 0..n {
                let r = gc[i] * dt_step;
                if r > 1.0 {
                    // Stiff: diagonally-implicit Euler — unconditionally
                    // stable, converges to the node's local equilibrium.
                    v[i] += k1[i] * dt_step / (1.0 + r);
                } else {
                    v[i] += 0.5 * (k1[i] + k2[i]) * dt_step;
                }
            }
            self.apply_sources(t + dt_step, &mut v);
            t += dt_step;

            if t + 1e-18 >= next_store {
                trace.push(t, &v);
                next_store = t + self.opts.store_dt;
            }
            // Grow through quiet stretches, hold steady otherwise.
            dt_next = if err < 0.25 * dv_max {
                (dt_step * 2.0).min(dt_max)
            } else {
                dt_step.min(dt_max)
            };
        }
        if trace.times().last().copied() != Some(t) {
            trace.push(t, &v);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::Waveform;
    use bpimc_device::{Env, Mosfet, VtFlavor};

    #[test]
    fn rc_discharge_matches_closed_form() {
        let mut ckt = Circuit::new(Env::nominal());
        let out = ckt.add_node("out", 10e-15, 1.0);
        ckt.add_resistor(out, ckt.gnd(), 10_000.0); // tau = 100 ps
        let trace = ckt.run(&SimOptions::for_window(0.5e-9));
        for &(t, expect) in &[(100e-12, (-1.0_f64).exp()), (200e-12, (-2.0_f64).exp())] {
            let got = trace.voltage_at(out, t).unwrap();
            assert!(
                (got - expect).abs() < 0.01,
                "t={t}: got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn rc_charge_through_resistor_from_source() {
        let mut ckt = Circuit::new(Env::nominal());
        let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
        let out = ckt.add_node("out", 20e-15, 0.0);
        ckt.add_resistor(vdd, out, 5_000.0); // tau = 100 ps
        let trace = ckt.run(&SimOptions::for_window(1e-9));
        let got = trace.voltage_at(out, 100e-12).unwrap();
        let expect = 0.9 * (1.0 - (-1.0_f64).exp());
        assert!((got - expect).abs() < 0.01, "got {got} want {expect}");
        assert!(trace.last_voltage(out) > 0.89);
    }

    #[test]
    fn nmos_discharges_a_capacitor() {
        // A single NMOS pulling a 20 fF bit-line-ish node low when gated.
        let mut ckt = Circuit::new(Env::nominal());
        let gate = ckt.add_source("g", Waveform::step(0.0, 0.9, 100e-12, 20e-12));
        let bl = ckt.add_node("bl", 20e-15, 0.9);
        ckt.add_mosfet(Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0), bl, gate, ckt.gnd());
        let trace = ckt.run(&SimOptions::for_window(2e-9));
        assert!(
            trace.voltage_at(bl, 90e-12).unwrap() > 0.89,
            "no discharge before gate"
        );
        assert!(trace.last_voltage(bl) < 0.05, "discharged at the end");
    }

    #[test]
    fn pmos_pulls_up() {
        let mut ckt = Circuit::new(Env::nominal());
        let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
        let gate = ckt.add_source("g", Waveform::dc(0.0)); // PMOS on
        let out = ckt.add_node("out", 5e-15, 0.0);
        ckt.add_mosfet(Mosfet::pmos(VtFlavor::Rvt, 200.0, 30.0), out, gate, vdd);
        let trace = ckt.run(&SimOptions::for_window(1e-9));
        assert!(trace.last_voltage(out) > 0.85);
    }

    #[test]
    fn fast_math_tier_stays_within_the_accuracy_guard() {
        // The quick scalar tier trades ~1e-8 device-model error for
        // shorter serial chains; the solved waveforms must stay far inside
        // the solver's own 20 mV accuracy guard against the shared-kernel
        // reference run, and the defaults must keep the tier off.
        assert!(!SimOptions::for_window(1e-9).fast_math);
        let build = || {
            let mut ckt = Circuit::new(Env::nominal());
            let gate = ckt.add_source("g", Waveform::step(0.0, 0.9, 100e-12, 20e-12));
            let bl = ckt.add_node("bl", 20e-15, 0.9);
            ckt.add_mosfet(Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0), bl, gate, ckt.gnd());
            (ckt, bl)
        };
        let (ckt_ref, bl) = build();
        let reference = ckt_ref.run(&SimOptions::for_window(2e-9));
        let (ckt_quick, _) = build();
        let quick = ckt_quick.run(&SimOptions::for_window(2e-9).with_fast_math(true));
        let mut worst = 0.0f64;
        for &t in [150e-12, 300e-12, 500e-12, 1e-9, 1.9e-9].iter() {
            let a = reference.voltage_at(bl, t).unwrap();
            let b = quick.voltage_at(bl, t).unwrap();
            worst = worst.max((a - b).abs());
        }
        assert!(worst < 2e-3, "quick tier diverged by {worst} V");
        assert!(quick.last_voltage(bl) < 0.05);
    }

    #[test]
    fn charge_is_conserved_between_two_floating_caps() {
        // Two equal caps joined by a resistor settle at the average voltage.
        let mut ckt = Circuit::new(Env::nominal());
        let a = ckt.add_node("a", 10e-15, 1.0);
        let b = ckt.add_node("b", 10e-15, 0.0);
        ckt.add_resistor(a, b, 10_000.0);
        let trace = ckt.run(&SimOptions::for_window(2e-9));
        let va = trace.last_voltage(a);
        let vb = trace.last_voltage(b);
        assert!((va - 0.5).abs() < 0.005, "va {va}");
        assert!((vb - 0.5).abs() < 0.005, "vb {vb}");
    }
}
