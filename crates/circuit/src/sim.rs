//! The explicit transient integrator.

use crate::netlist::{Circuit, NodeKind};
use crate::trace::Trace;
use bpimc_device::{DeviceKind, Env, Mosfet, ProcessLibrary};

/// Options controlling a transient run.
///
/// The defaults (0.5 ps base step, 20 mV per-step voltage guard with
/// sub-stepping) are tuned for the femtofarad-scale SRAM nets this workspace
/// simulates; [`SimOptions::for_window`] is the common entry point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// End of the simulated window, seconds.
    pub t_stop: f64,
    /// Base integration step, seconds.
    pub dt: f64,
    /// Trace storage interval, seconds (decimation of the raw steps).
    pub store_dt: f64,
    /// Maximum allowed per-node voltage change per step before the step is
    /// recursively halved (volts).
    pub dv_max: f64,
    /// Maximum halving depth before giving up and accepting the step.
    pub max_depth: u32,
}

impl SimOptions {
    /// Sensible defaults for a window of `t_stop` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive.
    pub fn for_window(t_stop: f64) -> Self {
        assert!(t_stop > 0.0, "simulation window must be positive");
        Self {
            t_stop,
            dt: 0.5e-12,
            store_dt: 1.0e-12,
            dv_max: 0.02,
            max_depth: 10,
        }
    }

    /// Returns a copy with a different base step.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
        self
    }
}

/// A MOSFET with its process parameters flattened for the inner loop.
#[derive(Debug, Clone, Copy)]
struct CompiledMos {
    kind: DeviceKind,
    d: usize,
    g: usize,
    s: usize,
    vt: f64,
    phi: f64,
    keff: f64,
    alpha: f64,
    lambda: f64,
    sat_frac: f64,
    vdsat_min: f64,
}

impl CompiledMos {
    fn compile(dev: &Mosfet, d: usize, g: usize, s: usize, env: &Env) -> Self {
        let p = ProcessLibrary::at(dev.kind(), dev.flavor(), env);
        Self {
            kind: dev.kind(),
            d,
            g,
            s,
            vt: p.vt0 + dev.dvt(),
            phi: 2.0 * p.nsub * env.thermal_voltage(),
            keff: p.kp * dev.aspect(),
            alpha: p.alpha,
            lambda: p.lambda,
            sat_frac: p.sat_frac,
            vdsat_min: p.vdsat_min,
        }
    }

    /// Drain current magnitude; must match `Mosfet::id` (tested below).
    #[inline]
    fn id(&self, vgs: f64, vds: f64) -> f64 {
        if vds <= 0.0 {
            return 0.0;
        }
        let x = (vgs - self.vt) / self.phi;
        let soft = if x > 30.0 {
            x
        } else if x < -30.0 {
            x.exp()
        } else {
            x.exp().ln_1p()
        };
        let veff = self.phi * soft;
        let idsat = self.keff * veff.powf(self.alpha);
        let vdsat = (self.sat_frac * veff).max(self.vdsat_min);
        idsat * (vds / vdsat).tanh() * (1.0 + self.lambda * vds)
    }
}

/// One prepared transient run over a circuit.
pub(crate) struct Transient<'a> {
    ckt: &'a Circuit,
    opts: SimOptions,
    caps: Vec<f64>,
    mosfets: Vec<CompiledMos>,
    /// (a, b, conductance)
    conductors: Vec<(usize, usize, f64)>,
}

impl<'a> Transient<'a> {
    pub(crate) fn new(ckt: &'a Circuit, opts: &SimOptions) -> Self {
        let caps = ckt
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::State { cap } => *cap,
                _ => f64::INFINITY,
            })
            .collect();
        let mosfets = ckt
            .mosfets
            .iter()
            .map(|m| CompiledMos::compile(&m.dev, m.d.0, m.g.0, m.s.0, ckt.env()))
            .collect();
        let conductors = ckt
            .resistors
            .iter()
            .map(|&(a, b, r)| (a.0, b.0, 1.0 / r))
            .collect();
        Self { ckt, opts: *opts, caps, mosfets, conductors }
    }

    /// Sums element currents into `dvdt` (as dV/dt, i.e. already divided by
    /// the node capacitance; driven/ground nodes get zero).
    fn derivatives(&self, v: &[f64], dvdt: &mut [f64]) {
        dvdt.fill(0.0);
        for &(a, b, gcond) in &self.conductors {
            let i = (v[a] - v[b]) * gcond;
            dvdt[a] -= i;
            dvdt[b] += i;
        }
        for m in &self.mosfets {
            let (hi, lo) = if v[m.d] >= v[m.s] { (m.d, m.s) } else { (m.s, m.d) };
            let vds = v[hi] - v[lo];
            let vgs = match m.kind {
                DeviceKind::Nmos => v[m.g] - v[lo],
                DeviceKind::Pmos => v[hi] - v[m.g],
            };
            let i = m.id(vgs, vds);
            // Conventional current flows hi -> lo through the channel.
            dvdt[hi] -= i;
            dvdt[lo] += i;
        }
        for (i, c) in self.caps.iter().enumerate() {
            if c.is_finite() {
                dvdt[i] /= c;
            } else {
                dvdt[i] = 0.0;
            }
        }
    }

    /// Sets driven node voltages for time `t`.
    fn apply_sources(&self, t: f64, v: &mut [f64]) {
        for (i, k) in self.ckt.kinds.iter().enumerate() {
            match k {
                NodeKind::Driven { wave } => v[i] = wave.at(t),
                NodeKind::Ground => v[i] = 0.0,
                NodeKind::State { .. } => {}
            }
        }
    }

    /// Advances `v` from `t` by `dt` with Heun's method, recursively halving
    /// while any state node would move more than `dv_max` in one step.
    fn step(&self, t: f64, dt: f64, v: &mut [f64], k1: &mut [f64], k2: &mut [f64], tmp: &mut [f64], depth: u32) {
        self.derivatives(v, k1);
        let worst = k1
            .iter()
            .map(|d| (d * dt).abs())
            .fold(0.0_f64, f64::max);
        if worst > self.opts.dv_max && depth < self.opts.max_depth {
            let half = dt / 2.0;
            self.step(t, half, v, k1, k2, tmp, depth + 1);
            self.step(t + half, half, v, k1, k2, tmp, depth + 1);
            return;
        }
        // Heun: predictor at t+dt, then trapezoidal correction.
        tmp.copy_from_slice(v);
        for i in 0..v.len() {
            tmp[i] += k1[i] * dt;
        }
        self.apply_sources(t + dt, tmp);
        self.derivatives(tmp, k2);
        for i in 0..v.len() {
            v[i] += 0.5 * (k1[i] + k2[i]) * dt;
        }
        self.apply_sources(t + dt, v);
    }

    pub(crate) fn run(&self) -> Trace {
        let n = self.ckt.node_count();
        let mut v = self.ckt.v0.clone();
        self.apply_sources(0.0, &mut v);
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        let mut trace = Trace::new(self.ckt.names.clone());
        trace.push(0.0, &v);

        let steps = (self.opts.t_stop / self.opts.dt).ceil() as usize;
        let mut next_store = self.opts.store_dt;
        for i in 0..steps {
            let t = i as f64 * self.opts.dt;
            let dt = self.opts.dt.min(self.opts.t_stop - t);
            if dt <= 0.0 {
                break;
            }
            self.step(t, dt, &mut v, &mut k1, &mut k2, &mut tmp, 0);
            let t_new = t + dt;
            if t_new + 1e-18 >= next_store {
                trace.push(t_new, &v);
                next_store += self.opts.store_dt;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::Waveform;
    use bpimc_device::VtFlavor;

    #[test]
    fn compiled_mos_matches_device_model() {
        let env = Env::nominal();
        let dev = Mosfet::nmos(VtFlavor::Lvt, 150.0, 30.0).with_dvt(0.01);
        let c = CompiledMos::compile(&dev, 0, 1, 2, &env);
        for i in 0..=12 {
            for j in 1..=12 {
                let vgs = i as f64 * 0.1 - 0.2;
                let vds = j as f64 * 0.1;
                let a = dev.id(vgs, vds, &env);
                let b = c.id(vgs, vds);
                assert!(
                    (a - b).abs() <= 1e-12 + 1e-9 * a.abs(),
                    "mismatch at vgs={vgs} vds={vds}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn rc_discharge_matches_closed_form() {
        let mut ckt = Circuit::new(Env::nominal());
        let out = ckt.add_node("out", 10e-15, 1.0);
        ckt.add_resistor(out, ckt.gnd(), 10_000.0); // tau = 100 ps
        let trace = ckt.run(&SimOptions::for_window(0.5e-9));
        for &(t, expect) in &[(100e-12, (-1.0_f64).exp()), (200e-12, (-2.0_f64).exp())] {
            let got = trace.voltage_at(out, t).unwrap();
            assert!((got - expect).abs() < 0.01, "t={t}: got {got}, want {expect}");
        }
    }

    #[test]
    fn rc_charge_through_resistor_from_source() {
        let mut ckt = Circuit::new(Env::nominal());
        let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
        let out = ckt.add_node("out", 20e-15, 0.0);
        ckt.add_resistor(vdd, out, 5_000.0); // tau = 100 ps
        let trace = ckt.run(&SimOptions::for_window(1e-9));
        let got = trace.voltage_at(out, 100e-12).unwrap();
        let expect = 0.9 * (1.0 - (-1.0_f64).exp());
        assert!((got - expect).abs() < 0.01, "got {got} want {expect}");
        assert!(trace.last_voltage(out) > 0.89);
    }

    #[test]
    fn nmos_discharges_a_capacitor() {
        // A single NMOS pulling a 20 fF bit-line-ish node low when gated.
        let mut ckt = Circuit::new(Env::nominal());
        let gate = ckt.add_source("g", Waveform::step(0.0, 0.9, 100e-12, 20e-12));
        let bl = ckt.add_node("bl", 20e-15, 0.9);
        ckt.add_mosfet(Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0), bl, gate, ckt.gnd());
        let trace = ckt.run(&SimOptions::for_window(2e-9));
        assert!(trace.voltage_at(bl, 90e-12).unwrap() > 0.89, "no discharge before gate");
        assert!(trace.last_voltage(bl) < 0.05, "discharged at the end");
    }

    #[test]
    fn pmos_pulls_up() {
        let mut ckt = Circuit::new(Env::nominal());
        let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
        let gate = ckt.add_source("g", Waveform::dc(0.0)); // PMOS on
        let out = ckt.add_node("out", 5e-15, 0.0);
        ckt.add_mosfet(Mosfet::pmos(VtFlavor::Rvt, 200.0, 30.0), out, gate, vdd);
        let trace = ckt.run(&SimOptions::for_window(1e-9));
        assert!(trace.last_voltage(out) > 0.85);
    }

    #[test]
    fn charge_is_conserved_between_two_floating_caps() {
        // Two equal caps joined by a resistor settle at the average voltage.
        let mut ckt = Circuit::new(Env::nominal());
        let a = ckt.add_node("a", 10e-15, 1.0);
        let b = ckt.add_node("b", 10e-15, 0.0);
        ckt.add_resistor(a, b, 10_000.0);
        let trace = ckt.run(&SimOptions::for_window(2e-9));
        let va = trace.last_voltage(a);
        let vb = trace.last_voltage(b);
        assert!((va - 0.5).abs() < 0.005, "va {va}");
        assert!((vb - 0.5).abs() < 0.005, "vb {vb}");
    }
}
