//! Property tests for waveforms and the transient solver.

use bpimc_circuit::{Circuit, SimOptions, Waveform};
use bpimc_device::Env;
use proptest::prelude::*;

proptest! {
    /// A pulse never leaves its [low, high] band and returns to `low`.
    #[test]
    fn pulse_stays_in_band(
        low in -1.0f64..0.5,
        amp in 0.1f64..1.5,
        t0 in 0.0f64..1e-9,
        width in 1e-12f64..1e-9,
        t_edge in 1e-12f64..100e-12,
        t in 0.0f64..5e-9,
    ) {
        let high = low + amp;
        let w = Waveform::pulse(low, high, t0, width, t_edge);
        let v = w.at(t);
        prop_assert!(v >= low - 1e-12 && v <= high + 1e-12);
        prop_assert!((w.at(t0 + 2.0 * (width + 2.0 * t_edge) + 1e-12) - low).abs() < 1e-12);
    }

    /// PWL interpolation is bounded by its control points.
    #[test]
    fn pwl_is_bounded(points in prop::collection::vec((0.0f64..1e-9, -1.0f64..1.0), 1..10), t in 0.0f64..2e-9) {
        let mut pts = points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let w = Waveform::pwl(pts.clone());
        let v = w.at(t);
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// RC discharge through any sane R/C lands within 2% of the closed form
    /// at one time constant.
    #[test]
    fn rc_matches_closed_form(r_kohm in 1.0f64..100.0, c_ff in 1.0f64..100.0) {
        let r = r_kohm * 1e3;
        let c = c_ff * 1e-15;
        let tau = r * c;
        let mut ckt = Circuit::new(Env::nominal());
        let node = ckt.add_node("n", c, 1.0);
        ckt.add_resistor(node, ckt.gnd(), r);
        let trace = ckt.run(&SimOptions::for_window(3.0 * tau));
        let got = trace.voltage_at(node, tau).expect("inside window");
        let expect = (-1.0f64).exp();
        prop_assert!((got - expect).abs() < 0.02, "tau={tau:.3e} got={got}");
    }

    /// Two capacitors joined by a resistor conserve total charge.
    #[test]
    fn charge_conservation(c1 in 1.0f64..50.0, c2 in 1.0f64..50.0, v1 in 0.0f64..1.0) {
        let (c1, c2) = (c1 * 1e-15, c2 * 1e-15);
        let mut ckt = Circuit::new(Env::nominal());
        let a = ckt.add_node("a", c1, v1);
        let b = ckt.add_node("b", c2, 0.0);
        ckt.add_resistor(a, b, 20e3);
        let trace = ckt.run(&SimOptions::for_window(5e-9));
        let q0 = c1 * v1;
        let q1 = c1 * trace.last_voltage(a) + c2 * trace.last_voltage(b);
        prop_assert!((q1 - q0).abs() <= 0.01 * q0.max(1e-18), "q0={q0:.3e} q1={q1:.3e}");
    }
}
