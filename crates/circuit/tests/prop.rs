//! Property tests for waveforms and the transient solver — including the
//! structure-of-arrays batch engine's bit-identity with the scalar path.

use bpimc_circuit::{BatchSim, Circuit, SimOptions, Waveform};
use bpimc_device::{Corner, Env, Mosfet, VtFlavor};
use proptest::prelude::*;

/// A randomized two-transistor cell-ish circuit: an NMOS pulldown and a
/// PMOS keeper fighting over a bit-line-like node, at a chosen corner,
/// supply and mismatch — enough nonlinearity to exercise every branch of
/// the integrator (stiff damping, corrector retries, source slew walking).
fn contended_node(
    corner: Corner,
    vdd: f64,
    dvt_n: f64,
    dvt_p: f64,
    t0: f64,
) -> (Circuit, bpimc_circuit::NodeId) {
    let env = Env::nominal().with_corner(corner).with_vdd(vdd);
    let mut ckt = Circuit::new(env);
    let supply = ckt.add_source("vdd", Waveform::dc(vdd));
    let gate = ckt.add_source("g", Waveform::pulse(0.0, vdd, t0, 300e-12, 15e-12));
    let bl = ckt.add_node("bl", 15e-15, vdd);
    ckt.add_mosfet(
        Mosfet::nmos(VtFlavor::Rvt, 120.0, 30.0).with_dvt(dvt_n),
        bl,
        gate,
        ckt.gnd(),
    );
    ckt.add_mosfet(
        Mosfet::pmos(VtFlavor::Lvt, 90.0, 30.0).with_dvt(dvt_p),
        bl,
        ckt.gnd(),
        supply,
    );
    (ckt, bl)
}

proptest! {
    /// A pulse never leaves its [low, high] band and returns to `low`.
    #[test]
    fn pulse_stays_in_band(
        low in -1.0f64..0.5,
        amp in 0.1f64..1.5,
        t0 in 0.0f64..1e-9,
        width in 1e-12f64..1e-9,
        t_edge in 1e-12f64..100e-12,
        t in 0.0f64..5e-9,
    ) {
        let high = low + amp;
        let w = Waveform::pulse(low, high, t0, width, t_edge);
        let v = w.at(t);
        prop_assert!(v >= low - 1e-12 && v <= high + 1e-12);
        prop_assert!((w.at(t0 + 2.0 * (width + 2.0 * t_edge) + 1e-12) - low).abs() < 1e-12);
    }

    /// PWL interpolation is bounded by its control points.
    #[test]
    fn pwl_is_bounded(points in prop::collection::vec((0.0f64..1e-9, -1.0f64..1.0), 1..10), t in 0.0f64..2e-9) {
        let mut pts = points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let w = Waveform::pwl(pts.clone());
        let v = w.at(t);
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// RC discharge through any sane R/C lands within 2% of the closed form
    /// at one time constant.
    #[test]
    fn rc_matches_closed_form(r_kohm in 1.0f64..100.0, c_ff in 1.0f64..100.0) {
        let r = r_kohm * 1e3;
        let c = c_ff * 1e-15;
        let tau = r * c;
        let mut ckt = Circuit::new(Env::nominal());
        let node = ckt.add_node("n", c, 1.0);
        ckt.add_resistor(node, ckt.gnd(), r);
        let trace = ckt.run(&SimOptions::for_window(3.0 * tau));
        let got = trace.voltage_at(node, tau).expect("inside window");
        let expect = (-1.0f64).exp();
        prop_assert!((got - expect).abs() < 0.02, "tau={tau:.3e} got={got}");
    }

    /// Two capacitors joined by a resistor conserve total charge.
    #[test]
    fn charge_conservation(c1 in 1.0f64..50.0, c2 in 1.0f64..50.0, v1 in 0.0f64..1.0) {
        let (c1, c2) = (c1 * 1e-15, c2 * 1e-15);
        let mut ckt = Circuit::new(Env::nominal());
        let a = ckt.add_node("a", c1, v1);
        let b = ckt.add_node("b", c2, 0.0);
        ckt.add_resistor(a, b, 20e3);
        let trace = ckt.run(&SimOptions::for_window(5e-9));
        let q0 = c1 * v1;
        let q1 = c1 * trace.last_voltage(a) + c2 * trace.last_voltage(b);
        prop_assert!((q1 - q0).abs() <= 0.01 * q0.max(1e-18), "q0={q0:.3e} q1={q1:.3e}");
    }

    /// The batch engine reproduces the scalar solver bit for bit — every
    /// stored time point and voltage — across process corners, supplies,
    /// mismatch draws and batch sizes (including the remainder lanes a
    /// non-multiple-of-SIMD-width cohort leaves).
    #[test]
    fn batch_is_bit_identical_across_corners_and_cohort_sizes(
        corner_ix in 0usize..5,
        vdd in 0.6f64..1.1,
        dvts in prop::collection::vec((-0.05f64..0.05, -0.05f64..0.05, 50e-12f64..200e-12), 1..9),
    ) {
        let corner = Corner::ALL[corner_ix];
        let circuits: Vec<Circuit> = dvts
            .iter()
            .map(|&(dn, dp, t0)| contended_node(corner, vdd, dn, dp, t0).0)
            .collect();
        let opts = SimOptions::for_window(1.5e-9);
        let traces = BatchSim::new(&circuits, &opts).unwrap().run();
        for (c, tr) in circuits.iter().zip(&traces) {
            let scalar = c.run(&opts);
            prop_assert_eq!(tr.times().len(), scalar.times().len());
            for (a, b) in tr.times().iter().zip(scalar.times()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(tr, &scalar);
        }
    }

    /// Cohort partitioning is invisible: a sample's measured value does not
    /// depend on which batch it rode in. `n` ranges across the
    /// `BATCH_COHORT = 16` boundary, so the same early samples run both as
    /// members of a lone partial cohort and as members of a full cohort
    /// followed by a remainder — and always match the scalar path.
    #[test]
    fn batched_montecarlo_is_cohort_invariant(seed in 0u64..1000, n in 1usize..36) {
        use bpimc_circuit::mc;
        let opts = SimOptions::for_window(1e-9);
        let build = |_i: usize, rng: &mut rand::rngs::StdRng| {
            use rand::Rng;
            let dn = 0.04 * (rng.random::<f64>() - 0.5);
            let dp = 0.04 * (rng.random::<f64>() - 0.5);
            contended_node(Corner::Nn, 0.9, dn, dp, 100e-12).0
        };
        // Node handles are positional; a template build names them.
        let (_, bl) = contended_node(Corner::Nn, 0.9, 0.0, 0.0, 100e-12);
        let measure = |_i: usize, t: &bpimc_circuit::Trace| t.last_voltage(bl);
        let batched = mc::montecarlo_batch(n, seed, &opts, build, measure);
        let scalar = mc::montecarlo_map(n, seed, |i, rng| {
            let ckt = build(i, rng);
            ckt.run(&opts).last_voltage(bl)
        });
        prop_assert_eq!(batched.len(), scalar.len());
        for (a, b) in batched.iter().zip(&scalar) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
