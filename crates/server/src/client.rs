//! A minimal blocking client for the wire protocol (tests, load
//! generation, CLI tooling), with opt-in resilience: reconnect with
//! capped exponential backoff and idempotent retry ([`RetryPolicy`]).

use bpimc_core::{
    Diagnostic, ErrorBody, ErrorKind, LaneOp, Precision, Program, ProgramReport, Request,
    RequestBody, Response, ResponseBody, SessionActivity, StoredMeta,
};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server answered `ok:false`; the body carries the
    /// machine-readable kind (`overloaded`, `limit_exceeded`,
    /// `deadline_exceeded`, or generic) alongside the message.
    Server(ErrorBody),
    /// The server answered something the client cannot interpret (bad
    /// line, wrong id, wrong result kind).
    Protocol(String),
}

impl ClientError {
    /// The server shed this request under overload (it never executed;
    /// retrying after [`ClientError::retry_after`] is safe for any op).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::Overloaded)
    }

    /// A per-session limit refused this request before it touched the
    /// array.
    pub fn is_limit_exceeded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::LimitExceeded)
    }

    /// The request's `timeout_ms` expired before it executed.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::DeadlineExceeded)
    }

    /// The server's back-off hint, when it sent one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Server(e) => e.retry_after_ms.map(Duration::from_millis),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Opt-in resilience for a [`Client`]: how many times to attempt an
/// operation, with capped exponential backoff between attempts.
///
/// With a policy set, **any** op is retried after an `overloaded` shed
/// (the server never executed it), and the read-only session-free ops
/// (`ping`, `dot`, the lane-wise ops) are additionally retried across a
/// reconnect on transport errors. Ops that depend on per-session state
/// (`classify`, `run_stored`, `stats`, …) are never transparently
/// retried across a reconnect — a new connection is a new session.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, capped at
    /// `max_delay`.
    pub base_delay: Duration,
    /// Ceiling on any single backoff (also caps a server `retry_after`
    /// hint).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    fn delay(&self, attempt: u32) -> Duration {
        self.base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay)
    }
}

/// A blocking connection to a compute server: one request, one response,
/// in order.
///
/// See the crate documentation for a usage example.
pub struct Client {
    /// The resolved address, kept for [`Client::reconnect`].
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Stamped on every request when set ([`Client::set_timeout_ms`]).
    timeout_ms: Option<u64>,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let (reader, writer) = Self::dial(addr)?;
        Ok(Client {
            addr,
            reader,
            writer,
            next_id: 1,
            timeout_ms: None,
            retry: None,
        })
    }

    fn dial(addr: SocketAddr) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        // Requests are complete lines the server acts on immediately;
        // never let Nagle hold one back waiting for a delayed ACK.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok((BufReader::new(stream), writer))
    }

    /// Sets the deadline stamped on every subsequent request (`None`
    /// clears it). Past the deadline the server answers a
    /// `deadline_exceeded` error instead of executing.
    pub fn set_timeout_ms(&mut self, timeout_ms: Option<u64>) {
        self.timeout_ms = timeout_ms;
    }

    /// Opts into resilience: retry `overloaded` sheds (any op) and
    /// transport failures of session-free read-only ops across a
    /// reconnect, per the policy's attempt/backoff schedule.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Drops the current connection and dials the server again.
    ///
    /// A new connection is a **new session**: the loaded model, stored
    /// programs and activity account do not carry over.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the new connection cannot be
    /// established (the client keeps the old, likely dead, streams).
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = Self::dial(self.addr)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Sends one request without waiting for its response, returning the
    /// assigned id — the pipelining half: keep several requests in flight
    /// and collect their responses with [`Client::recv`]. The protocol
    /// answers in request order per connection, so responses match the
    /// send order.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Request {
            id,
            timeout_ms: self.timeout_ms,
            body,
        }
        .to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Blocks for the next response line (pairs with [`Client::send`]).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unparseable line; a server-side
    /// `Error` body is returned as a normal [`Response`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            // EOF is a transport failure (the peer vanished), not a
            // protocol violation — reconnect/retry logic keys on `Io`.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::parse(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request and blocks for its response. Ids are assigned
    /// sequentially and verified against the response.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an id mismatch; a server-side `Error`
    /// body is returned as a normal [`Response`].
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let id = self.send(body)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        Ok(resp)
    }

    /// One request/response exchange with the configured resilience:
    /// `overloaded` sheds are retried for any op (a shed request never
    /// executed), transport failures only when `idempotent` (the op is
    /// read-only and session-free, so replaying it on a fresh connection
    /// cannot double-apply or lose session state).
    fn expect(&mut self, body: RequestBody, idempotent: bool) -> Result<ResponseBody, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let can_retry = self
                .retry
                .is_some_and(|policy| attempt + 1 < policy.max_attempts);
            match self.call(body.clone()) {
                Ok(resp) => match resp.body {
                    ResponseBody::Error(err) if err.kind == ErrorKind::Overloaded && can_retry => {
                        let policy = self.retry.expect("can_retry implies a policy");
                        let backoff = err
                            .retry_after_ms
                            .map_or_else(|| policy.delay(attempt), Duration::from_millis)
                            .min(policy.max_delay);
                        std::thread::sleep(backoff);
                    }
                    ResponseBody::Error(err) => return Err(ClientError::Server(err)),
                    other => return Ok(other),
                },
                Err(ClientError::Io(_)) if idempotent && can_retry => {
                    let policy = self.retry.expect("can_retry implies a policy");
                    std::thread::sleep(policy.delay(attempt));
                    // A failed reconnect surfaces as the next attempt's
                    // transport error (or exhausts the attempt budget).
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors (also below).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Ping, true)? {
            ResponseBody::Pong => Ok(()),
            other => Err(protocol_kind("pong", &other)),
        }
    }

    /// In-memory dot product of two equal-length quantized vectors.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn dot(&mut self, precision: Precision, x: &[u64], w: &[u64]) -> Result<u64, ClientError> {
        let body = RequestBody::Dot {
            precision,
            x: x.to_vec(),
            w: w.to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Scalar(n) => Ok(n),
            other => Err(protocol_kind("scalar", &other)),
        }
    }

    /// A lane-wise two-operand op (`add`/`sub`/`mult`/logic).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn lanes(
        &mut self,
        op: LaneOp,
        precision: Precision,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, ClientError> {
        let body = RequestBody::Lanes {
            op,
            precision,
            a: a.to_vec(),
            b: b.to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Words(ws) => Ok(ws),
            other => Err(protocol_kind("words", &other)),
        }
    }

    /// Stores quantized class prototypes in this session for `classify`.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn load_model(
        &mut self,
        precision: Precision,
        prototypes: &[Vec<u64>],
    ) -> Result<(), ClientError> {
        let body = RequestBody::LoadModel {
            precision,
            prototypes: prototypes.to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Classifies a quantized sample against the session's loaded model.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn classify(&mut self, x: &[u64]) -> Result<usize, ClientError> {
        match self.expect(RequestBody::Classify { x: x.to_vec() }, false)? {
            ResponseBody::Class(c) => Ok(c),
            other => Err(protocol_kind("class", &other)),
        }
    }

    /// Runs a whole typed [`Program`] on the server in one round trip,
    /// returning its read outputs and exact per-instruction
    /// cycles/energy accounting.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn exec_program(&mut self, program: &Program) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::ExecProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// Stores a typed [`Program`] in this session: the server validates,
    /// lowers and compiles it once, and returns the id (plus static cycle
    /// cost and bindable write count) for [`Client::run_stored`] calls.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn store_program(&mut self, program: &Program) -> Result<StoredMeta, ClientError> {
        let body = RequestBody::StoreProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Stored(meta) => Ok(meta),
            other => Err(protocol_kind("stored", &other)),
        }
    }

    /// Statically analyzes a typed [`Program`] server-side — validation
    /// plus lint — and returns its diagnostics without storing or
    /// executing anything. An empty vector means the stream is valid and
    /// the linter found nothing to say; a validation failure comes back
    /// as an `error`-severity diagnostic, not a request error.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors (the request is
    /// idempotent and retried like other read-only ops).
    pub fn lint_program(&mut self, program: &Program) -> Result<Vec<Diagnostic>, ClientError> {
        let body = RequestBody::LintProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Diagnostics(diags) => Ok(diags),
            other => Err(protocol_kind("diagnostics", &other)),
        }
    }

    /// Runs a stored program. `inputs` rebinds the program's write values
    /// (one entry per `write`/`write_mult` in submitted order, `None`
    /// keeping the stored values); pass `&[]` to run it exactly as stored.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; an unknown id or a
    /// bad binding is a server error.
    pub fn run_stored(
        &mut self,
        pid: u64,
        inputs: &[Option<Vec<u64>>],
    ) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::RunStored {
            pid,
            inputs: inputs.to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// This session's activity account (state before this request).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn stats(&mut self) -> Result<SessionActivity, ClientError> {
        match self.expect(RequestBody::Stats, false)? {
            ResponseBody::Stats(s) => Ok(s),
            other => Err(protocol_kind("stats", &other)),
        }
    }

    /// Asks the executing job to panic (fault injection). The expected
    /// outcome on a fault-injection server is `Err(ClientError::Server)` —
    /// the panic is contained to this request.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn inject_panic(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::InjectPanic, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Asks the server to drain queued work and shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Shutdown, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }
}

fn protocol_kind(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a '{wanted}' response, got {got:?}"))
}
