//! A minimal blocking client for the wire protocol (tests, load
//! generation, CLI tooling), with opt-in resilience: reconnect with
//! capped exponential backoff and safe retry ([`RetryPolicy`]), plus
//! durable sessions ([`Client::open_session`]) that survive reconnects
//! with exactly-once execution of every retried op.

use bpimc_core::{
    Diagnostic, ErrorBody, ErrorKind, LaneOp, Precision, Program, ProgramEntry, ProgramReport,
    Request, RequestBody, Response, ResponseBody, SessionActivity, SessionInfo, StoredMeta,
    StoredTarget,
};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server answered `ok:false`; the body carries the
    /// machine-readable kind (`overloaded`, `limit_exceeded`,
    /// `deadline_exceeded`, or generic) alongside the message.
    Server(ErrorBody),
    /// The server answered something the client cannot interpret (bad
    /// line, wrong id, wrong result kind).
    Protocol(String),
}

impl ClientError {
    /// The server shed this request under overload (it never executed;
    /// retrying after [`ClientError::retry_after`] is safe for any op).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::Overloaded)
    }

    /// A per-session limit refused this request before it touched the
    /// array.
    pub fn is_limit_exceeded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::LimitExceeded)
    }

    /// The request's `timeout_ms` expired before it executed.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.kind == ErrorKind::DeadlineExceeded)
    }

    /// The server's back-off hint, when it sent one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Server(e) => e.retry_after_ms.map(Duration::from_millis),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Opt-in resilience for a [`Client`]: how many times to attempt an
/// operation, with capped exponential backoff between attempts.
///
/// # The retry contract
///
/// With a policy set, **any** op is retried after an `overloaded` shed —
/// the server refuses sheds before executing anything, so a retry can
/// never double-apply.
///
/// Across **transport errors** (connection reset, EOF mid-exchange) the
/// safe set depends on the session:
///
/// - Without a durable session, only the read-only session-free ops
///   (`ping`, `dot`, the lane-wise ops, `lint_program`) are retried
///   across a reconnect. A mid-exchange drop leaves it unknowable
///   whether the server executed the request, so anything stateful
///   (`load_model`, `store_program`, `run_stored`, even `stats`, whose
///   answer bills the account) is *not* replayed — and a plain reconnect
///   is a fresh session anyway.
/// - With a durable session ([`Client::open_session`]), the client
///   stamps every request with a per-session `seq` number and the server
///   keeps a replay window: a retried request whose original already
///   executed gets the **recorded response replayed** — never a second
///   execution, never a second bill. That guard makes *every* seq-stamped
///   op transport-retryable, so the client reconnects, resumes the
///   session by token inside the retry path, and resends the same seq.
///
/// Transient server refusals (sheds, rate-budget and inflight limits)
/// never consume a seq server-side, so a retried refusal re-admits fresh
/// rather than replaying the refusal.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, capped at
    /// `max_delay`.
    pub base_delay: Duration,
    /// Ceiling on any single backoff (also caps a server `retry_after`
    /// hint).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    fn delay(&self, attempt: u32) -> Duration {
        self.base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay)
    }
}

/// A blocking connection to a compute server: one request, one response,
/// in order.
///
/// See the crate documentation for a usage example.
pub struct Client {
    /// The resolved address, kept for [`Client::reconnect`].
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Stamped on every request when set ([`Client::set_timeout_ms`]).
    timeout_ms: Option<u64>,
    retry: Option<RetryPolicy>,
    /// The durable-session token, once [`Client::open_session`] or
    /// [`Client::resume_session`] succeeded.
    token: Option<String>,
    /// The next idempotency seq to stamp (durable sessions only).
    next_seq: u64,
    /// Successful re-dials ([`Client::reconnect`]) over this client's
    /// lifetime.
    reconnects: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let (reader, writer) = Self::dial(addr)?;
        Ok(Client {
            addr,
            reader,
            writer,
            next_id: 1,
            timeout_ms: None,
            retry: None,
            token: None,
            next_seq: 0,
            reconnects: 0,
        })
    }

    fn dial(addr: SocketAddr) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        // Requests are complete lines the server acts on immediately;
        // never let Nagle hold one back waiting for a delayed ACK.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok((BufReader::new(stream), writer))
    }

    /// Sets the deadline stamped on every subsequent request (`None`
    /// clears it). Past the deadline the server answers a
    /// `deadline_exceeded` error instead of executing.
    pub fn set_timeout_ms(&mut self, timeout_ms: Option<u64>) {
        self.timeout_ms = timeout_ms;
    }

    /// Opts into resilience: retry `overloaded` sheds (any op) and
    /// transport failures across a reconnect — for session-free
    /// read-only ops always, and for **every** op once a durable session
    /// is open (its seq guard makes replays exactly-once; see
    /// [`RetryPolicy`] for the full contract) — per the policy's
    /// attempt/backoff schedule.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// The durable-session token this client holds, if any.
    pub fn session_token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// How many times this client successfully re-dialed the server
    /// ([`Client::reconnect`] — explicit calls and the automatic retry
    /// path alike). Chaos harnesses use this to confirm connection drops
    /// actually happened and were survived.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection and dials the server again.
    ///
    /// Without a durable session, a new connection is a **new session**:
    /// the loaded model, stored programs and activity account do not
    /// carry over. With one ([`Client::open_session`]), the session is
    /// resumed by token on the new connection before this returns, so
    /// all of that state carries over intact.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the new connection cannot be
    /// established (the client keeps the old, likely dead, streams), or
    /// the server's error when the held token no longer resumes
    /// (`session_expired` after the TTL ran out).
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = Self::dial(self.addr)?;
        self.reader = reader;
        self.writer = writer;
        self.reconnects += 1;
        if self.token.is_some() {
            self.resume_attached()?;
        }
        Ok(())
    }

    /// Stamps the next idempotency seq onto `body`'s request, when one
    /// applies: the client holds a durable session and the op is not
    /// itself session management (`open_session` / `resume_session`
    /// address session identity and are natural-idempotent without one).
    fn assign_seq(&mut self, body: &RequestBody) -> Option<u64> {
        if self.token.is_none()
            || matches!(
                body,
                RequestBody::OpenSession | RequestBody::ResumeSession { .. }
            )
        {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(seq)
    }

    /// Sends one request without waiting for its response, returning the
    /// assigned id — the pipelining half: keep several requests in flight
    /// and collect their responses with [`Client::recv`]. The protocol
    /// answers in request order per connection, so responses match the
    /// send order. On a durable session each send is stamped with a fresh
    /// idempotency seq.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let seq = self.assign_seq(&body);
        self.send_with(body, seq)
    }

    fn send_with(&mut self, body: RequestBody, seq: Option<u64>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Request {
            id,
            seq,
            timeout_ms: self.timeout_ms,
            body,
        }
        .to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Blocks for the next response line (pairs with [`Client::send`]).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unparseable line; a server-side
    /// `Error` body is returned as a normal [`Response`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            // EOF is a transport failure (the peer vanished), not a
            // protocol violation — reconnect/retry logic keys on `Io`.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::parse(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request and blocks for its response. Ids are assigned
    /// sequentially and verified against the response.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an id mismatch; a server-side `Error`
    /// body is returned as a normal [`Response`].
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let seq = self.assign_seq(&body);
        self.call_with(body, seq)
    }

    fn call_with(&mut self, body: RequestBody, seq: Option<u64>) -> Result<Response, ClientError> {
        let id = self.send_with(body, seq)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        Ok(resp)
    }

    /// One request/response exchange with the configured resilience:
    /// `overloaded` sheds are retried for any op (a shed request never
    /// executed); transport failures are retried across a reconnect when
    /// the op is `idempotent` (read-only and session-free) **or**
    /// seq-stamped on a durable session (the server's replay guard makes
    /// the resend exactly-once). The same seq rides every resend of one
    /// logical op.
    fn expect(&mut self, body: RequestBody, idempotent: bool) -> Result<ResponseBody, ClientError> {
        let seq = self.assign_seq(&body);
        let mut attempt: u32 = 0;
        loop {
            let can_retry = self
                .retry
                .is_some_and(|policy| attempt + 1 < policy.max_attempts);
            match self.call_with(body.clone(), seq) {
                Ok(resp) => match resp.body {
                    ResponseBody::Error(err) if err.kind == ErrorKind::Overloaded && can_retry => {
                        let policy = self.retry.expect("can_retry implies a policy");
                        let backoff = err
                            .retry_after_ms
                            .map_or_else(|| policy.delay(attempt), Duration::from_millis)
                            .min(policy.max_delay);
                        std::thread::sleep(backoff);
                    }
                    ResponseBody::Error(err) => return Err(ClientError::Server(err)),
                    other => return Ok(other),
                },
                Err(ClientError::Io(_)) if (idempotent || seq.is_some()) && can_retry => {
                    let policy = self.retry.expect("can_retry implies a policy");
                    std::thread::sleep(policy.delay(attempt));
                    // Reconnect (and auto-resume the session, if durable).
                    // A resume the server refuses outright — the session
                    // expired or the token is bad — ends the retry loop:
                    // resending the op without its session would execute
                    // it against fresh state. A failed dial just surfaces
                    // as the next attempt's transport error (or exhausts
                    // the attempt budget).
                    match self.reconnect() {
                        Ok(()) | Err(ClientError::Io(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors (also below).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Ping, true)? {
            ResponseBody::Pong => Ok(()),
            other => Err(protocol_kind("pong", &other)),
        }
    }

    /// In-memory dot product of two equal-length quantized vectors.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn dot(&mut self, precision: Precision, x: &[u64], w: &[u64]) -> Result<u64, ClientError> {
        let body = RequestBody::Dot {
            precision,
            x: x.to_vec(),
            w: w.to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Scalar(n) => Ok(n),
            other => Err(protocol_kind("scalar", &other)),
        }
    }

    /// A lane-wise two-operand op (`add`/`sub`/`mult`/logic).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn lanes(
        &mut self,
        op: LaneOp,
        precision: Precision,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, ClientError> {
        let body = RequestBody::Lanes {
            op,
            precision,
            a: a.to_vec(),
            b: b.to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Words(ws) => Ok(ws),
            other => Err(protocol_kind("words", &other)),
        }
    }

    /// Stores quantized class prototypes in this session for `classify`.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn load_model(
        &mut self,
        precision: Precision,
        prototypes: &[Vec<u64>],
    ) -> Result<(), ClientError> {
        let body = RequestBody::LoadModel {
            precision,
            prototypes: prototypes.to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Classifies a quantized sample against the session's loaded model.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn classify(&mut self, x: &[u64]) -> Result<usize, ClientError> {
        match self.expect(RequestBody::Classify { x: x.to_vec() }, false)? {
            ResponseBody::Class(c) => Ok(c),
            other => Err(protocol_kind("class", &other)),
        }
    }

    /// Runs a whole typed [`Program`] on the server in one round trip,
    /// returning its read outputs and exact per-instruction
    /// cycles/energy accounting.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn exec_program(&mut self, program: &Program) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::ExecProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// Stores a typed [`Program`] in this session: the server validates,
    /// lowers and compiles it once, and returns the id (plus static cycle
    /// cost and bindable write count) for [`Client::run_stored`] calls.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn store_program(&mut self, program: &Program) -> Result<StoredMeta, ClientError> {
        let body = RequestBody::StoreProgram {
            instrs: program.instrs().to_vec(),
            name: None,
        };
        match self.expect(body, false)? {
            ResponseBody::Stored(meta) => Ok(meta),
            other => Err(protocol_kind("stored", &other)),
        }
    }

    /// [`Client::store_program`] under a registry name: later calls can
    /// address the program by name ([`Client::run_stored_named`],
    /// [`Client::delete_program`]) instead of remembering the pid. Names
    /// are unique per session; storing a second program under a live name
    /// is a server error.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn store_program_named(
        &mut self,
        program: &Program,
        name: impl Into<String>,
    ) -> Result<StoredMeta, ClientError> {
        let body = RequestBody::StoreProgram {
            instrs: program.instrs().to_vec(),
            name: Some(name.into()),
        };
        match self.expect(body, false)? {
            ResponseBody::Stored(meta) => Ok(meta),
            other => Err(protocol_kind("stored", &other)),
        }
    }

    /// The session's stored-program registry: every entry with its name
    /// (if any), static cost facts, and cumulative run history (runs,
    /// errors, total cycles/energy, last status), ordered by pid.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn list_programs(&mut self) -> Result<Vec<ProgramEntry>, ClientError> {
        match self.expect(RequestBody::ListPrograms, true)? {
            ResponseBody::Programs(entries) => Ok(entries),
            other => Err(protocol_kind("programs", &other)),
        }
    }

    /// Deletes a stored program (by pid or name), freeing its
    /// per-session and registry-wide slots.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; an unknown target
    /// is a server error.
    pub fn delete_program(&mut self, target: StoredTarget) -> Result<(), ClientError> {
        match self.expect(RequestBody::DeleteProgram { target }, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Statically analyzes a typed [`Program`] server-side — validation
    /// plus lint — and returns its diagnostics without storing or
    /// executing anything. An empty vector means the stream is valid and
    /// the linter found nothing to say; a validation failure comes back
    /// as an `error`-severity diagnostic, not a request error.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors (the request is
    /// idempotent and retried like other read-only ops).
    pub fn lint_program(&mut self, program: &Program) -> Result<Vec<Diagnostic>, ClientError> {
        let body = RequestBody::LintProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, true)? {
            ResponseBody::Diagnostics(diags) => Ok(diags),
            other => Err(protocol_kind("diagnostics", &other)),
        }
    }

    /// Runs a stored program. `inputs` rebinds the program's write values
    /// (one entry per `write`/`write_mult` in submitted order, `None`
    /// keeping the stored values); pass `&[]` to run it exactly as stored.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; an unknown id or a
    /// bad binding is a server error.
    pub fn run_stored(
        &mut self,
        pid: u64,
        inputs: &[Option<Vec<u64>>],
    ) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::RunStored {
            target: StoredTarget::Pid(pid),
            inputs: inputs.to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// [`Client::run_stored`], addressing the program by its registry
    /// name instead of its pid.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; an unknown name or
    /// a bad binding is a server error.
    pub fn run_stored_named(
        &mut self,
        name: impl Into<String>,
        inputs: &[Option<Vec<u64>>],
    ) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::RunStored {
            target: StoredTarget::Name(name.into()),
            inputs: inputs.to_vec(),
        };
        match self.expect(body, false)? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// This session's activity account (state before this request).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn stats(&mut self) -> Result<SessionActivity, ClientError> {
        match self.expect(RequestBody::Stats, false)? {
            ResponseBody::Stats(s) => Ok(s),
            other => Err(protocol_kind("stats", &other)),
        }
    }

    /// Asks the executing job to panic (fault injection). The expected
    /// outcome on a fault-injection server is `Err(ClientError::Server)` —
    /// the panic is contained to this request.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn inject_panic(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::InjectPanic, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Upgrades this connection's session to a **durable** one: the
    /// server registers it under an unguessable token (returned in the
    /// [`SessionInfo`]) and the client holds that token from here on —
    /// stamping every request with an idempotency seq, auto-resuming the
    /// session inside [`Client::reconnect`], and safely retrying all
    /// seq-guarded ops across transport errors (see [`RetryPolicy`]).
    ///
    /// State accumulated on the connection so far (model, stored
    /// programs, account) moves into the durable session. Calling this
    /// on an already-durable connection returns the existing session's
    /// info rather than a second token.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors — a full registry
    /// answers `limit_exceeded` naming `sessions`. A transport retry of
    /// this op may leave an orphaned session behind on the server; it is
    /// swept after the TTL.
    pub fn open_session(&mut self) -> Result<SessionInfo, ClientError> {
        match self.expect(RequestBody::OpenSession, true)? {
            ResponseBody::Session(info) => {
                self.token = Some(info.token.clone());
                self.next_seq = info.last_seq.map_or(0, |s| s + 1);
                Ok(info)
            }
            other => Err(protocol_kind("session", &other)),
        }
    }

    /// Attaches this connection to an existing durable session by token,
    /// restoring its model, stored programs, account and in-window rate
    /// budgets. On success the client continues the session's
    /// idempotency sequence where it left off (`last_seq + 1`).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors: `session_expired`
    /// when the session sat detached past the server's TTL and was
    /// collected, `bad_token` for a token the server never issued, and a
    /// busy refusal while another live connection holds the session
    /// (retried with the server's back-off hint when a [`RetryPolicy`]
    /// is set). On failure the client holds no session.
    pub fn resume_session(&mut self, token: impl Into<String>) -> Result<SessionInfo, ClientError> {
        self.token = Some(token.into());
        match self.resume_attached() {
            Ok(info) => Ok(info),
            Err(e) => {
                self.token = None;
                Err(e)
            }
        }
    }

    /// Resumes the held token on the current connection, retrying busy
    /// refusals (the old connection's reader has not let go yet — a
    /// transient server-side race) per the retry policy.
    fn resume_attached(&mut self) -> Result<SessionInfo, ClientError> {
        let token = self
            .token
            .clone()
            .expect("resume_attached requires a held token");
        let mut attempt: u32 = 0;
        loop {
            let resp = self.call_with(
                RequestBody::ResumeSession {
                    token: token.clone(),
                },
                None,
            )?;
            match resp.body {
                ResponseBody::Session(info) => {
                    // Never rewind: the server's watermark can trail our
                    // counter when recent stamped ops were all refused
                    // (refusals do not consume a seq).
                    if let Some(last) = info.last_seq {
                        self.next_seq = self.next_seq.max(last + 1);
                    }
                    return Ok(info);
                }
                ResponseBody::Error(err) => {
                    let can_retry = self
                        .retry
                        .is_some_and(|policy| attempt + 1 < policy.max_attempts);
                    let busy = err.kind == ErrorKind::Generic && err.retry_after_ms.is_some();
                    if !(busy && can_retry) {
                        return Err(ClientError::Server(err));
                    }
                    let policy = self.retry.expect("can_retry implies a policy");
                    let backoff = err
                        .retry_after_ms
                        .map_or_else(|| policy.delay(attempt), Duration::from_millis)
                        .min(policy.max_delay);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                other => return Err(protocol_kind("session", &other)),
            }
        }
    }

    /// Asks the server to drain queued work and shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Shutdown, false)? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }
}

fn protocol_kind(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a '{wanted}' response, got {got:?}"))
}
