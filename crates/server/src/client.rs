//! A minimal blocking client for the wire protocol (tests, load
//! generation, CLI tooling).

use bpimc_core::{
    LaneOp, Precision, Program, ProgramReport, Request, RequestBody, Response, ResponseBody,
    SessionActivity, StoredMeta,
};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server answered `ok:false` with this message.
    Server(String),
    /// The server answered something the client cannot interpret (bad
    /// line, wrong id, wrong result kind).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a compute server: one request, one response,
/// in order.
///
/// See the crate documentation for a usage example.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are complete lines the server acts on immediately;
        // never let Nagle hold one back waiting for a delayed ACK.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sends one request without waiting for its response, returning the
    /// assigned id — the pipelining half: keep several requests in flight
    /// and collect their responses with [`Client::recv`]. The protocol
    /// answers in request order per connection, so responses match the
    /// send order.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Request { id, body }.to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Blocks for the next response line (pairs with [`Client::send`]).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unparseable line; a server-side
    /// `Error` body is returned as a normal [`Response`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Response::parse(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request and blocks for its response. Ids are assigned
    /// sequentially and verified against the response.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an id mismatch; a server-side `Error`
    /// body is returned as a normal [`Response`].
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let id = self.send(body)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        Ok(resp)
    }

    fn expect(&mut self, body: RequestBody, kind: &str) -> Result<ResponseBody, ClientError> {
        match self.call(body)?.body {
            ResponseBody::Error(msg) => Err(ClientError::Server(msg)),
            other => {
                let _ = kind; // the per-helper match below enforces the kind
                Ok(other)
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors (also below).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Ping, "pong")? {
            ResponseBody::Pong => Ok(()),
            other => Err(protocol_kind("pong", &other)),
        }
    }

    /// In-memory dot product of two equal-length quantized vectors.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn dot(&mut self, precision: Precision, x: &[u64], w: &[u64]) -> Result<u64, ClientError> {
        let body = RequestBody::Dot {
            precision,
            x: x.to_vec(),
            w: w.to_vec(),
        };
        match self.expect(body, "scalar")? {
            ResponseBody::Scalar(n) => Ok(n),
            other => Err(protocol_kind("scalar", &other)),
        }
    }

    /// A lane-wise two-operand op (`add`/`sub`/`mult`/logic).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn lanes(
        &mut self,
        op: LaneOp,
        precision: Precision,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, ClientError> {
        let body = RequestBody::Lanes {
            op,
            precision,
            a: a.to_vec(),
            b: b.to_vec(),
        };
        match self.expect(body, "words")? {
            ResponseBody::Words(ws) => Ok(ws),
            other => Err(protocol_kind("words", &other)),
        }
    }

    /// Stores quantized class prototypes in this session for `classify`.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn load_model(
        &mut self,
        precision: Precision,
        prototypes: &[Vec<u64>],
    ) -> Result<(), ClientError> {
        let body = RequestBody::LoadModel {
            precision,
            prototypes: prototypes.to_vec(),
        };
        match self.expect(body, "ok")? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Classifies a quantized sample against the session's loaded model.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn classify(&mut self, x: &[u64]) -> Result<usize, ClientError> {
        match self.expect(RequestBody::Classify { x: x.to_vec() }, "class")? {
            ResponseBody::Class(c) => Ok(c),
            other => Err(protocol_kind("class", &other)),
        }
    }

    /// Runs a whole typed [`Program`] on the server in one round trip,
    /// returning its read outputs and exact per-instruction
    /// cycles/energy accounting.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn exec_program(&mut self, program: &Program) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::ExecProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, "program")? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// Stores a typed [`Program`] in this session: the server validates,
    /// lowers and compiles it once, and returns the id (plus static cycle
    /// cost and bindable write count) for [`Client::run_stored`] calls.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; a program that does
    /// not validate server-side is a server error.
    pub fn store_program(&mut self, program: &Program) -> Result<StoredMeta, ClientError> {
        let body = RequestBody::StoreProgram {
            instrs: program.instrs().to_vec(),
        };
        match self.expect(body, "stored")? {
            ResponseBody::Stored(meta) => Ok(meta),
            other => Err(protocol_kind("stored", &other)),
        }
    }

    /// Runs a stored program. `inputs` rebinds the program's write values
    /// (one entry per `write`/`write_mult` in submitted order, `None`
    /// keeping the stored values); pass `&[]` to run it exactly as stored.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors; an unknown id or a
    /// bad binding is a server error.
    pub fn run_stored(
        &mut self,
        pid: u64,
        inputs: &[Option<Vec<u64>>],
    ) -> Result<ProgramReport, ClientError> {
        let body = RequestBody::RunStored {
            pid,
            inputs: inputs.to_vec(),
        };
        match self.expect(body, "program")? {
            ResponseBody::Program(r) => Ok(r),
            other => Err(protocol_kind("program", &other)),
        }
    }

    /// This session's activity account (state before this request).
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn stats(&mut self) -> Result<SessionActivity, ClientError> {
        match self.expect(RequestBody::Stats, "stats")? {
            ResponseBody::Stats(s) => Ok(s),
            other => Err(protocol_kind("stats", &other)),
        }
    }

    /// Asks the executing job to panic (fault injection). The expected
    /// outcome on a fault-injection server is `Err(ClientError::Server)` —
    /// the panic is contained to this request.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn inject_panic(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::InjectPanic, "ok")? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }

    /// Asks the server to drain queued work and shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport, server or protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect(RequestBody::Shutdown, "ok")? {
            ResponseBody::Ok => Ok(()),
            other => Err(protocol_kind("ok", &other)),
        }
    }
}

fn protocol_kind(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a '{wanted}' response, got {got:?}"))
}
