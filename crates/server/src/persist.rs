//! Crash-safe durable state: write-ahead journal, compacting snapshots
//! and restart recovery for the session registry.
//!
//! PR 9 made durable sessions survive the *connection*; this module makes
//! them survive the *process*. It is strictly opt-in (`--state-dir` /
//! [`StateConfig`]) and structured around one invariant:
//!
//! > Every state mutation of a **durable** session is appended to the
//! > journal under the same critical section that applies it, and
//! > replaying the journal over the last snapshot reproduces the live
//! > registry — including byte-identical cycle/energy accounts.
//!
//! # On-disk layout
//!
//! A state directory holds generation-numbered files:
//!
//! | file | contents |
//! |---|---|
//! | `snap-<g>.bpimc` | one framed record: the full registry at generation `g` |
//! | `journal-<g>.log` | framed events applied **after** snapshot `g` |
//! | `clean` | clean-shutdown marker naming the final snapshot generation |
//!
//! Every frame is `[u32 len LE][u32 crc32 LE][payload]` where the payload
//! is one JSON document. The CRC (IEEE 802.3, the PNG/zlib polynomial) is
//! over the payload bytes, so a torn tail or a flipped bit is detected
//! rather than replayed. Snapshots are written to a temp file, fsynced,
//! and renamed into place (then the directory is fsynced) — a crash
//! mid-snapshot leaves the previous generation intact.
//!
//! # Recovery
//!
//! Boot picks the newest snapshot that passes its CRC and parse, then
//! replays every `journal-<k>.log` with `k >=` that generation in order,
//! stopping cleanly at the first torn or corrupt record: the journal is
//! truncated there and the dropped byte count is logged. If the clean
//! marker names the chosen snapshot, journal replay is skipped entirely
//! (the warm path). Either way the result is a set of pure-data
//! [`SessionRecord`]s; the server materializes them — recompiling stored
//! programs and classifier models from their journaled source streams —
//! and resumes serving with accounts that are byte-identical to the
//! pre-crash ones (energy is persisted as `f64` bit patterns and replayed
//! through the same additions in the same order).
//!
//! # Exactness
//!
//! [`apply_event`] mirrors `SessionInner::settle` field by field; the
//! deterministic concurrency model `journal-vs-gc-vs-resume`
//! (`crate::models`) checks that a journal produced under racing
//! appenders, sweeps and resumes still replays to the live outcome.

use crate::guard::RateWindow;
use crate::session::{Billing, Session, SessionInner, SessionRegistry, StoredEntry, REPLAY_WINDOW};
use bpimc_core::json::Json;
use bpimc_core::{
    instr_from_json, instr_to_json, Instr, MacroBank, Program, Response, ResponseBody, RunStatus,
    SessionActivity,
};
use bpimc_metrics::EnergyParams;
use bpimc_stats::sync::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// When the journal is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: a `kill -9` loses at most
    /// the record being written. The safest and slowest policy.
    Always,
    /// Sync at most once per interval (piggybacked on appends and the
    /// sweeper tick): bounds loss to the interval's worth of events.
    Interval(Duration),
    /// Never sync explicitly; the OS flushes on its own schedule. A crash
    /// of the *process* alone loses nothing (the page cache survives);
    /// a machine crash may lose recent events.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI form: `always`, `interval:<ms>` or `never`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(Self::Always),
            "never" => Ok(Self::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| Self::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval '{ms}': expected milliseconds")),
                None => Err(format!(
                    "bad fsync policy '{other}': expected always|interval:<ms>|never"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            Self::Never => write!(f, "never"),
        }
    }
}

/// Persistence settings ([`crate::ServerConfig::state`]). `None` there
/// means in-memory only — the pre-persistence behaviour, with zero cost
/// on the serving path.
#[derive(Debug, Clone)]
pub struct StateConfig {
    /// The state directory (created if missing).
    pub dir: PathBuf,
    /// Journal fsync policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Write a compacting snapshot (and truncate the journal) once this
    /// much time passed since the last one *and* the journal is non-empty.
    pub snapshot_interval: Duration,
    /// …or as soon as the journal holds this many records, whichever
    /// comes first. Snapshots ride the sweeper tick, so neither trigger
    /// adds work to the request path.
    pub snapshot_min_records: u64,
}

impl StateConfig {
    /// Defaults for a state directory: fsync `always`, snapshot every 30
    /// seconds or 4096 journal records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_interval: Duration::from_secs(30),
            snapshot_min_records: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 + framing
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected — the zlib/PNG polynomial), table-driven.
/// Hand-rolled because the build image has no crates.io access.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Longest accepted frame payload (16 MiB): a length prefix beyond this is
/// treated as corruption, not an allocation request.
const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Appends one `[len][crc][payload]` frame.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Why frame decoding stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Byte offset of the first frame that failed to decode.
    pub offset: u64,
    /// Bytes from `offset` to the end of the file.
    pub dropped_bytes: u64,
    /// What was wrong with the frame.
    pub reason: String,
}

/// Splits a file's bytes into CRC-checked frame payloads, stopping at the
/// first torn (short) or corrupt (CRC/length mismatch) frame.
fn read_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, Option<Corruption>) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let corrupt = |pos: usize, reason: String| {
        Some(Corruption {
            offset: pos as u64,
            dropped_bytes: (bytes.len() - pos) as u64,
            reason,
        })
    };
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return (frames, corrupt(pos, "torn frame header".into()));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_FRAME_BYTES {
            return (
                frames,
                corrupt(pos, format!("implausible frame length {len}")),
            );
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            return (frames, corrupt(pos, "torn frame payload".into()));
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return (frames, corrupt(pos, "CRC mismatch".into()));
        }
        frames.push(payload.to_vec());
        pos += 8 + len;
    }
    (frames, None)
}

// ---------------------------------------------------------------------------
// Pure-data model: session records and journal events
// ---------------------------------------------------------------------------

/// One stored program's journaled form: the **submitted** instruction
/// stream (recompiled through the same validate/optimize/compile pipeline
/// on recovery) plus its cumulative run history.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRecord {
    /// The session-scoped program id.
    pub pid: u64,
    /// The registry name, if the program was stored with one.
    pub name: Option<String>,
    /// The instruction stream exactly as the client submitted it.
    pub instrs: Vec<Instr>,
    /// Successful runs billed to this program.
    pub runs: u64,
    /// Failed runs.
    pub errors: u64,
    /// Cycles billed across all successful runs.
    pub total_cycles: u64,
    /// Energy billed across all successful runs (femtojoules).
    pub total_energy_fj: f64,
    /// Outcome of the most recent run.
    pub last_status: Option<RunStatus>,
}

/// One durable session as pure data — what snapshots store and journal
/// replay reconstructs, with no locks, clocks or compiled artifacts.
/// Energy fields are persisted as `f64` **bit patterns**, so a recovered
/// account is byte-identical, not just approximately equal.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The session token (the registry key).
    pub token: String,
    /// The cycle/energy account ([`SessionActivity`]).
    pub stats: SessionActivity,
    /// The rate window, as `(window start unix-ms, cycles, energy_fj)`;
    /// `None` for a window that had nothing billed. Restored on recovery
    /// so a restart does not refill an exhausted per-second budget.
    pub rate: Option<(u64, u64, f64)>,
    /// The loaded classifier model's source: `(precision bits, quantized
    /// prototypes)`. Norms and the fused classify template are recomputed
    /// on a scratch macro at recovery (without billing — the original
    /// `load_model` bill is already in `stats`).
    pub model: Option<(u32, Vec<Vec<u64>>)>,
    /// The next program id `store_program` would assign.
    pub next_pid: u64,
    /// The idempotency watermark: highest executed seq.
    pub last_seq: Option<u64>,
    /// Wall-clock milliseconds (unix epoch) when the session's current
    /// detachment began; `None` when it was attached. Recovery credits
    /// the elapsed time against the TTL so a restart never grants a
    /// detached session a fresh clock.
    pub detached_since_ms: Option<u64>,
    /// Stored programs, ordered by pid.
    pub programs: Vec<ProgramRecord>,
    /// The replay window: `(seq, serialized wire response)` pairs, oldest
    /// first, bounded at [`REPLAY_WINDOW`].
    pub replay: Vec<(u64, String)>,
}

impl SessionRecord {
    pub(crate) fn empty(token: String) -> Self {
        Self {
            token,
            stats: SessionActivity::new(),
            rate: None,
            model: None,
            next_pid: 1,
            last_seq: None,
            detached_since_ms: None,
            programs: Vec::new(),
            replay: Vec::new(),
        }
    }
}

/// How one journaled request settled (the pure-data twin of
/// [`Billing`], carrying the error message `settle` reads off the
/// response body).
#[derive(Debug, Clone, PartialEq)]
pub enum BillingRecord {
    /// Executed and billed.
    Ok {
        /// Exact hardware cycles billed.
        cycles: u64,
        /// Exact energy billed (femtojoules).
        energy_fj: f64,
    },
    /// Failed; `message` feeds the ran program's `last_status`.
    Error {
        /// The error message of the failed request.
        message: String,
    },
    /// No accounting (replays, session management).
    None,
}

/// One journaled state mutation. Events exist only for **durable**
/// sessions — ephemeral ones die with their connection by design.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `open_session` minted `token`, adopting the connection's ephemeral
    /// state (usually empty, but a client may stage programs first).
    Open {
        /// The minted token.
        token: String,
        /// The adopted state.
        record: Box<SessionRecord>,
    },
    /// `resume_session` re-attached the session.
    Attach {
        /// The resumed token.
        token: String,
    },
    /// The session's connection let go; the TTL clock started.
    Detach {
        /// The detached token.
        token: String,
        /// Wall-clock milliseconds of the detach (TTL recovery).
        unix_ms: u64,
    },
    /// The TTL sweeper garbage-collected the session.
    Expire {
        /// The swept token.
        token: String,
    },
    /// `load_model` replaced the session's classifier model.
    Model {
        /// The session token.
        token: String,
        /// Lane width in bits.
        precision_bits: u32,
        /// Quantized prototypes (the model's full source).
        prototypes: Vec<Vec<u64>>,
    },
    /// `store_program` added a program.
    Store {
        /// The session token.
        token: String,
        /// The assigned program id.
        pid: u64,
        /// The registry name, if any.
        name: Option<String>,
        /// The submitted instruction stream.
        instrs: Vec<Instr>,
    },
    /// `delete_program` removed a program.
    Delete {
        /// The session token.
        token: String,
        /// The removed program id.
        pid: u64,
    },
    /// One request settled against the session — the journal twin of
    /// `SessionInner::settle`, carrying exactly its arguments.
    Exec {
        /// The session token.
        token: String,
        /// The billing applied.
        billing: BillingRecord,
        /// The stored program the request ran, if any (run history).
        ran_pid: Option<u64>,
        /// The claimed idempotency seq, if the request was stamped.
        seq: Option<u64>,
        /// The serialized response recorded for replay (`seq` set only).
        response: Option<String>,
        /// Wall-clock milliseconds (rate-window reconstruction).
        unix_ms: u64,
    },
}

/// Wall clock as unix milliseconds.
pub(crate) fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The pure-data registry a snapshot stores and replay reconstructs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistryRecord {
    /// Live sessions by token (insertion order is not meaningful).
    pub sessions: Vec<SessionRecord>,
    /// Swept tokens still answering `session_expired`, oldest first.
    pub expired: Vec<String>,
    /// The registry's token-minting counter.
    pub mint_counter: u64,
}

/// Applies one journal event to the pure-data registry — the replay twin
/// of the live mutation paths. `Exec` mirrors `SessionInner::settle`
/// field by field; the concurrency models assert the two stay in lock
/// step.
pub fn apply_event(reg: &mut RegistryRecord, ev: &Event) {
    let find = |sessions: &mut Vec<SessionRecord>, token: &str| -> Option<usize> {
        sessions.iter().position(|r| r.token == token)
    };
    match ev {
        Event::Open { token, record } => {
            if find(&mut reg.sessions, token).is_none() {
                reg.sessions.push((**record).clone());
            }
            reg.mint_counter = reg.mint_counter.wrapping_add(1);
        }
        Event::Attach { token } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                reg.sessions[i].detached_since_ms = None;
            }
        }
        Event::Detach { token, unix_ms } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                // The TTL clock starts at the *first* detach; replay keys
                // the elapsed time off the event's wall clock later, in
                // `Recovered::materialize`.
                if reg.sessions[i].detached_since_ms.is_none() {
                    reg.sessions[i].detached_since_ms = Some(*unix_ms);
                }
            }
        }
        Event::Expire { token } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                reg.sessions.remove(i);
            }
            reg.expired.push(token.clone());
        }
        Event::Model {
            token,
            precision_bits,
            prototypes,
        } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                reg.sessions[i].model = Some((*precision_bits, prototypes.clone()));
            }
        }
        Event::Store {
            token,
            pid,
            name,
            instrs,
        } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                let rec = &mut reg.sessions[i];
                rec.programs.push(ProgramRecord {
                    pid: *pid,
                    name: name.clone(),
                    instrs: instrs.clone(),
                    runs: 0,
                    errors: 0,
                    total_cycles: 0,
                    total_energy_fj: 0.0,
                    last_status: None,
                });
                rec.next_pid = rec.next_pid.max(pid + 1);
            }
        }
        Event::Delete { token, pid } => {
            if let Some(i) = find(&mut reg.sessions, token) {
                reg.sessions[i].programs.retain(|p| p.pid != *pid);
            }
        }
        Event::Exec {
            token,
            billing,
            ran_pid,
            seq,
            response,
            unix_ms,
        } => {
            let Some(i) = find(&mut reg.sessions, token) else {
                return;
            };
            let rec = &mut reg.sessions[i];
            match billing {
                BillingRecord::Ok { cycles, energy_fj } => {
                    rec.stats.record_ok(*cycles, *energy_fj);
                    match &mut rec.rate {
                        Some((start, rc, re)) if unix_ms.saturating_sub(*start) < 1000 => {
                            *rc += cycles;
                            *re += energy_fj;
                        }
                        slot => *slot = Some((*unix_ms, *cycles, *energy_fj)),
                    }
                    if let Some(p) =
                        ran_pid.and_then(|pid| rec.programs.iter_mut().find(|p| p.pid == pid))
                    {
                        p.runs += 1;
                        p.total_cycles += cycles;
                        p.total_energy_fj += energy_fj;
                        p.last_status = Some(RunStatus::Success);
                    }
                }
                BillingRecord::Error { message } => {
                    rec.stats.record_error();
                    if let Some(p) =
                        ran_pid.and_then(|pid| rec.programs.iter_mut().find(|p| p.pid == pid))
                    {
                        p.errors += 1;
                        p.last_status = Some(RunStatus::Error {
                            message: message.clone(),
                        });
                    }
                }
                BillingRecord::None => {}
            }
            if let Some(seq) = seq {
                if rec.last_seq.is_none_or(|last| *seq > last) {
                    rec.last_seq = Some(*seq);
                }
                if rec.replay.len() >= REPLAY_WINDOW {
                    rec.replay.remove(0);
                }
                rec.replay
                    .push((*seq, response.clone().unwrap_or_default()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON codec (events, records, snapshots)
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn u64s_json(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::UInt(v)).collect())
}

fn status_json(status: &Option<RunStatus>) -> Json {
    match status {
        None => Json::Null,
        Some(RunStatus::Success) => obj(vec![("ok", Json::Bool(true))]),
        Some(RunStatus::Error { message }) => obj(vec![
            ("ok", Json::Bool(false)),
            ("message", Json::Str(message.clone())),
        ]),
    }
}

fn status_from_json(v: &Json) -> Result<Option<RunStatus>, String> {
    match v {
        Json::Null => Ok(None),
        Json::Obj(_) => match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(Some(RunStatus::Success)),
            Some(false) => Ok(Some(RunStatus::Error {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            })),
            None => Err("status object without 'ok'".into()),
        },
        _ => Err("status must be null or an object".into()),
    }
}

fn prototypes_json(prototypes: &[Vec<u64>]) -> Json {
    Json::Arr(prototypes.iter().map(|p| u64s_json(p)).collect())
}

fn prototypes_from_json(v: &Json) -> Result<Vec<Vec<u64>>, String> {
    v.as_array()
        .ok_or("prototypes must be an array")?
        .iter()
        .map(|p| p.as_u64_array().ok_or_else(|| "bad prototype row".into()))
        .collect()
}

fn instrs_json(instrs: &[Instr]) -> Json {
    Json::Arr(instrs.iter().map(instr_to_json).collect())
}

fn instrs_from_json(v: &Json) -> Result<Vec<Instr>, String> {
    v.as_array()
        .ok_or("instrs must be an array")?
        .iter()
        .map(|i| instr_from_json(i).map_err(|e| e.to_string()))
        .collect()
}

fn record_json(rec: &SessionRecord) -> Json {
    let mut fields = vec![
        ("token", Json::Str(rec.token.clone())),
        ("requests", Json::UInt(rec.stats.requests)),
        ("errors", Json::UInt(rec.stats.errors)),
        ("cycles", Json::UInt(rec.stats.cycles)),
        ("energy_bits", Json::UInt(rec.stats.energy_fj.to_bits())),
        ("next_pid", Json::UInt(rec.next_pid)),
    ];
    if let Some((start, cycles, energy)) = &rec.rate {
        fields.push((
            "rate",
            obj(vec![
                ("start_ms", Json::UInt(*start)),
                ("cycles", Json::UInt(*cycles)),
                ("energy_bits", Json::UInt(energy.to_bits())),
            ]),
        ));
    }
    if let Some((bits, prototypes)) = &rec.model {
        fields.push((
            "model",
            obj(vec![
                ("precision", Json::UInt(*bits as u64)),
                ("prototypes", prototypes_json(prototypes)),
            ]),
        ));
    }
    if let Some(seq) = rec.last_seq {
        fields.push(("last_seq", Json::UInt(seq)));
    }
    if let Some(ms) = rec.detached_since_ms {
        fields.push(("detached_since_ms", Json::UInt(ms)));
    }
    fields.push((
        "programs",
        Json::Arr(
            rec.programs
                .iter()
                .map(|p| {
                    let mut f = vec![
                        ("pid", Json::UInt(p.pid)),
                        ("instrs", instrs_json(&p.instrs)),
                        ("runs", Json::UInt(p.runs)),
                        ("errors", Json::UInt(p.errors)),
                        ("total_cycles", Json::UInt(p.total_cycles)),
                        ("total_energy_bits", Json::UInt(p.total_energy_fj.to_bits())),
                        ("status", status_json(&p.last_status)),
                    ];
                    if let Some(name) = &p.name {
                        f.insert(1, ("name", Json::Str(name.clone())));
                    }
                    obj(f)
                })
                .collect(),
        ),
    ));
    fields.push((
        "replay",
        Json::Arr(
            rec.replay
                .iter()
                .map(|(seq, resp)| {
                    obj(vec![
                        ("seq", Json::UInt(*seq)),
                        ("response", Json::Str(resp.clone())),
                    ])
                })
                .collect(),
        ),
    ));
    obj(fields)
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn record_from_json(v: &Json) -> Result<SessionRecord, String> {
    let mut rec = SessionRecord::empty(req_str(v, "token")?);
    rec.stats = SessionActivity {
        requests: req_u64(v, "requests")?,
        errors: req_u64(v, "errors")?,
        cycles: req_u64(v, "cycles")?,
        energy_fj: f64::from_bits(req_u64(v, "energy_bits")?),
    };
    rec.next_pid = req_u64(v, "next_pid")?;
    if let Some(rate) = v.get("rate") {
        rec.rate = Some((
            req_u64(rate, "start_ms")?,
            req_u64(rate, "cycles")?,
            f64::from_bits(req_u64(rate, "energy_bits")?),
        ));
    }
    if let Some(model) = v.get("model") {
        rec.model = Some((
            req_u64(model, "precision")? as u32,
            prototypes_from_json(model.get("prototypes").ok_or("model without prototypes")?)?,
        ));
    }
    rec.last_seq = v.get("last_seq").and_then(Json::as_u64);
    rec.detached_since_ms = v.get("detached_since_ms").and_then(Json::as_u64);
    for p in v
        .get("programs")
        .and_then(Json::as_array)
        .ok_or("record without programs")?
    {
        rec.programs.push(ProgramRecord {
            pid: req_u64(p, "pid")?,
            name: p.get("name").and_then(Json::as_str).map(str::to_string),
            instrs: instrs_from_json(p.get("instrs").ok_or("program without instrs")?)?,
            runs: req_u64(p, "runs")?,
            errors: req_u64(p, "errors")?,
            total_cycles: req_u64(p, "total_cycles")?,
            total_energy_fj: f64::from_bits(req_u64(p, "total_energy_bits")?),
            last_status: status_from_json(p.get("status").unwrap_or(&Json::Null))?,
        });
    }
    for r in v
        .get("replay")
        .and_then(Json::as_array)
        .ok_or("record without replay")?
    {
        rec.replay
            .push((req_u64(r, "seq")?, req_str(r, "response")?));
    }
    Ok(rec)
}

fn event_json(ev: &Event) -> Json {
    let mut fields: Vec<(&str, Json)> = Vec::new();
    let kind = match ev {
        Event::Open { token, record } => {
            fields.push(("token", Json::Str(token.clone())));
            fields.push(("record", record_json(record)));
            "open"
        }
        Event::Attach { token } => {
            fields.push(("token", Json::Str(token.clone())));
            "attach"
        }
        Event::Detach { token, unix_ms } => {
            fields.push(("token", Json::Str(token.clone())));
            fields.push(("at_ms", Json::UInt(*unix_ms)));
            "detach"
        }
        Event::Expire { token } => {
            fields.push(("token", Json::Str(token.clone())));
            "expire"
        }
        Event::Model {
            token,
            precision_bits,
            prototypes,
        } => {
            fields.push(("token", Json::Str(token.clone())));
            fields.push(("precision", Json::UInt(*precision_bits as u64)));
            fields.push(("prototypes", prototypes_json(prototypes)));
            "model"
        }
        Event::Store {
            token,
            pid,
            name,
            instrs,
        } => {
            fields.push(("token", Json::Str(token.clone())));
            fields.push(("pid", Json::UInt(*pid)));
            if let Some(name) = name {
                fields.push(("name", Json::Str(name.clone())));
            }
            fields.push(("instrs", instrs_json(instrs)));
            "store"
        }
        Event::Delete { token, pid } => {
            fields.push(("token", Json::Str(token.clone())));
            fields.push(("pid", Json::UInt(*pid)));
            "delete"
        }
        Event::Exec {
            token,
            billing,
            ran_pid,
            seq,
            response,
            unix_ms,
        } => {
            fields.push(("token", Json::Str(token.clone())));
            match billing {
                BillingRecord::Ok { cycles, energy_fj } => {
                    fields.push(("billing", Json::Str("ok".into())));
                    fields.push(("cycles", Json::UInt(*cycles)));
                    fields.push(("energy_bits", Json::UInt(energy_fj.to_bits())));
                }
                BillingRecord::Error { message } => {
                    fields.push(("billing", Json::Str("error".into())));
                    fields.push(("message", Json::Str(message.clone())));
                }
                BillingRecord::None => fields.push(("billing", Json::Str("none".into()))),
            }
            if let Some(pid) = ran_pid {
                fields.push(("ran_pid", Json::UInt(*pid)));
            }
            if let Some(seq) = seq {
                fields.push(("seq", Json::UInt(*seq)));
            }
            if let Some(resp) = response {
                fields.push(("response", Json::Str(resp.clone())));
            }
            fields.push(("at_ms", Json::UInt(*unix_ms)));
            "exec"
        }
    };
    let mut all = vec![("ev", Json::Str(kind.into()))];
    all.extend(fields);
    obj(all)
}

fn event_from_json(v: &Json) -> Result<Event, String> {
    let kind = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("event without 'ev'")?;
    let token = req_str(v, "token")?;
    Ok(match kind {
        "open" => Event::Open {
            token,
            record: Box::new(record_from_json(
                v.get("record").ok_or("open without record")?,
            )?),
        },
        "attach" => Event::Attach { token },
        "detach" => Event::Detach {
            token,
            unix_ms: req_u64(v, "at_ms")?,
        },
        "expire" => Event::Expire { token },
        "model" => Event::Model {
            token,
            precision_bits: req_u64(v, "precision")? as u32,
            prototypes: prototypes_from_json(
                v.get("prototypes").ok_or("model without prototypes")?,
            )?,
        },
        "store" => Event::Store {
            token,
            pid: req_u64(v, "pid")?,
            name: v.get("name").and_then(Json::as_str).map(str::to_string),
            instrs: instrs_from_json(v.get("instrs").ok_or("store without instrs")?)?,
        },
        "delete" => Event::Delete {
            token,
            pid: req_u64(v, "pid")?,
        },
        "exec" => Event::Exec {
            billing: match v.get("billing").and_then(Json::as_str) {
                Some("ok") => BillingRecord::Ok {
                    cycles: req_u64(v, "cycles")?,
                    energy_fj: f64::from_bits(req_u64(v, "energy_bits")?),
                },
                Some("error") => BillingRecord::Error {
                    message: req_str(v, "message")?,
                },
                Some("none") => BillingRecord::None,
                _ => return Err("exec with unknown billing".into()),
            },
            ran_pid: v.get("ran_pid").and_then(Json::as_u64),
            seq: v.get("seq").and_then(Json::as_u64),
            response: v.get("response").and_then(Json::as_str).map(str::to_string),
            unix_ms: req_u64(v, "at_ms")?,
            token,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    })
}

fn snapshot_json(reg: &RegistryRecord, created_ms: u64) -> Json {
    obj(vec![
        ("version", Json::UInt(1)),
        ("created_ms", Json::UInt(created_ms)),
        ("mint_counter", Json::UInt(reg.mint_counter)),
        (
            "expired",
            Json::Arr(reg.expired.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
        (
            "sessions",
            Json::Arr(reg.sessions.iter().map(record_json).collect()),
        ),
    ])
}

fn snapshot_from_json(v: &Json) -> Result<RegistryRecord, String> {
    match v.get("version").and_then(Json::as_u64) {
        Some(1) => {}
        other => return Err(format!("unsupported snapshot version {other:?}")),
    }
    let mut reg = RegistryRecord {
        mint_counter: req_u64(v, "mint_counter")?,
        ..RegistryRecord::default()
    };
    for t in v
        .get("expired")
        .and_then(Json::as_array)
        .ok_or("snapshot without expired ring")?
    {
        reg.expired.push(
            t.as_str()
                .ok_or("expired token must be a string")?
                .to_string(),
        );
    }
    for s in v
        .get("sessions")
        .and_then(Json::as_array)
        .ok_or("snapshot without sessions")?
    {
        reg.sessions.push(record_from_json(s)?);
    }
    Ok(reg)
}

// ---------------------------------------------------------------------------
// Capturing live sessions into records
// ---------------------------------------------------------------------------

/// Captures one live session into its pure-data record. `now` /
/// `now_unix_ms` are the same moment on both clocks, so monotonic ages
/// convert to absolute wall times consistently across one capture.
pub(crate) fn capture_session(
    token: &str,
    inner: &SessionInner,
    now: Instant,
    now_unix_ms: u64,
) -> SessionRecord {
    let (rate_age, rate_cycles, rate_energy) = inner.rate.export(now);
    let rate = (rate_cycles > 0 || rate_energy != 0.0).then(|| {
        (
            now_unix_ms.saturating_sub(rate_age.as_millis() as u64),
            rate_cycles,
            rate_energy,
        )
    });
    let mut programs: Vec<ProgramRecord> = inner
        .stored
        .iter()
        .map(|(&pid, e)| ProgramRecord {
            pid,
            name: e.name.clone(),
            instrs: e.source.clone(),
            runs: e.runs,
            errors: e.errors,
            total_cycles: e.total_cycles,
            total_energy_fj: e.total_energy_fj,
            last_status: e.last_status.clone(),
        })
        .collect();
    programs.sort_by_key(|p| p.pid);
    SessionRecord {
        token: token.to_string(),
        stats: inner.stats,
        rate,
        model: inner
            .model
            .as_ref()
            .map(|m| (m.precision.bits() as u32, m.prototypes_q.clone())),
        next_pid: inner.next_pid,
        last_seq: inner.last_seq(),
        detached_since_ms: inner
            .detached_for(now)
            .map(|d| now_unix_ms.saturating_sub(d.as_millis() as u64)),
        programs,
        replay: inner
            .replay_entries()
            .map(|(seq, body)| {
                let line = Response {
                    id: 0,
                    body: body.clone(),
                }
                .to_json_line();
                (*seq, line)
            })
            .collect(),
    }
}

/// Captures the whole registry. Callers hold the persist guard, so no
/// journaled mutation can interleave with the capture.
fn capture_registry(registry: &SessionRegistry, now: Instant, now_unix_ms: u64) -> RegistryRecord {
    let (sessions, expired, mint_counter) = registry.snapshot_parts();
    let mut records: Vec<SessionRecord> = sessions
        .iter()
        .filter_map(|s| {
            let token = s.token.as_deref()?;
            let inner = s.inner.lock();
            Some(capture_session(token, &inner, now, now_unix_ms))
        })
        .collect();
    records.sort_by(|a, b| a.token.cmp(&b.token));
    RegistryRecord {
        sessions: records,
        expired,
        mint_counter,
    }
}

// ---------------------------------------------------------------------------
// Materializing records back into live sessions
// ---------------------------------------------------------------------------

/// Rebuilds one live session from its record: programs and the model are
/// recompiled from their journaled source streams (on a scratch bank,
/// billing nothing — the original bills are already in the account), the
/// replay window is re-parsed, and the TTL clock restarts at `now` with
/// the pre-crash detachment credited. Artifacts that no longer compile
/// (e.g. the server was restarted with a different macro geometry) are
/// dropped with a note rather than failing the whole recovery; `notes`
/// collects one line per dropped artifact.
pub(crate) fn materialize_session(
    rec: &SessionRecord,
    bank: &mut MacroBank,
    params: &EnergyParams,
    optimize: bool,
    now: Instant,
    notes: &mut Vec<String>,
) -> SessionInner {
    let config = *bank.macro_at(0).config();
    let mut stored = HashMap::new();
    let mut names = HashMap::new();
    for p in &rec.programs {
        let prog = Program::new(p.instrs.clone());
        let compiled = prog
            .validate(&config)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                let prog = if optimize { prog.optimize() } else { prog };
                prog.compile(&config).map_err(|e| e.to_string())
            });
        match compiled {
            Ok(compiled) => {
                if let Some(name) = &p.name {
                    names.insert(name.clone(), p.pid);
                }
                stored.insert(
                    p.pid,
                    StoredEntry {
                        compiled: Arc::new(compiled),
                        name: p.name.clone(),
                        source: p.instrs.clone(),
                        runs: p.runs,
                        errors: p.errors,
                        total_cycles: p.total_cycles,
                        total_energy_fj: p.total_energy_fj,
                        last_status: p.last_status.clone(),
                    },
                );
            }
            Err(e) => notes.push(format!(
                "session {}: dropped stored program {} (no longer compiles: {e})",
                rec.token, p.pid
            )),
        }
    }
    let model = rec.model.as_ref().and_then(|(bits, prototypes)| {
        let precision = match bpimc_core::Precision::try_from_bits(*bits as usize) {
            Ok(p) => p,
            Err(e) => {
                notes.push(format!("session {}: dropped model ({e})", rec.token));
                return None;
            }
        };
        match crate::server::build_model(bank, params, precision, prototypes.clone()) {
            Ok((model, _, _)) => Some(Arc::new(model)),
            Err(e) => {
                notes.push(format!(
                    "session {}: dropped model (no longer builds: {e})",
                    rec.token
                ));
                None
            }
        }
    });
    let replay = rec
        .replay
        .iter()
        .filter_map(|(seq, line)| match Response::parse(line) {
            Ok(resp) => Some((*seq, resp.body)),
            Err(e) => {
                notes.push(format!(
                    "session {}: dropped replay entry for seq {seq} ({e})",
                    rec.token
                ));
                None
            }
        })
        .collect();
    let rate = match &rec.rate {
        Some((start_ms, cycles, energy_fj)) => {
            let age = Duration::from_millis(unix_ms_now().saturating_sub(*start_ms));
            RateWindow::restore(age, *cycles, *energy_fj, now)
        }
        None => RateWindow::new(),
    };
    SessionInner::restore(
        rec.stats,
        rate,
        model,
        stored,
        names,
        rec.next_pid,
        rec.last_seq,
        replay,
        Duration::from_millis(
            rec.detached_since_ms
                .map(|since| unix_ms_now().saturating_sub(since))
                .unwrap_or(0),
        ),
        now,
    )
}

// ---------------------------------------------------------------------------
// The persist handle: journal appends, snapshots, rotation
// ---------------------------------------------------------------------------

fn snap_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-{gen}.bpimc"))
}

fn journal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("journal-{gen}.log"))
}

fn marker_path(dir: &Path) -> PathBuf {
    dir.join("clean")
}

/// The journal writer behind the persist lock.
pub(crate) struct PersistState {
    journal: File,
    /// Records appended to the current journal generation.
    records: u64,
    /// An append has happened since the last sync (interval policy).
    dirty: bool,
    last_sync: Instant,
    /// Current snapshot generation (the journal file is `journal-<gen>`).
    gen: u64,
    last_snapshot: Instant,
}

/// The persistence engine: one journal lock (named
/// `server.persist.journal`) that every durable-session mutation takes
/// **before** the registry or session locks it mutates under — making
/// snapshot-plus-truncate atomic against appenders, so no event is ever
/// both inside a snapshot and in the journal that survives it.
pub(crate) struct Persist {
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_interval: Duration,
    snapshot_min_records: u64,
    state: Mutex<PersistState>,
    finalized: std::sync::atomic::AtomicBool,
}

/// Which path recovery took, plus what it found.
#[derive(Debug)]
pub(crate) struct Recovery {
    /// The reconstructed registry.
    pub registry: RegistryRecord,
    /// Human-readable one-line description of the recovery path.
    pub path: String,
    /// Corruption found in the replayed journal tail, if any (already
    /// truncated away).
    pub corruption: Option<Corruption>,
    /// `(journal generation, byte offset)` where frame decoding failed —
    /// boot truncates that file there so the bad tail is not re-scanned.
    truncate: Option<(u64, u64)>,
}

impl Persist {
    /// Opens (or creates) a state directory: runs recovery, truncates any
    /// torn journal tail, clears the clean-shutdown marker and opens a
    /// fresh journal generation for the new process lifetime.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory or its files cannot be
    /// created/read. Corrupt records are *not* errors — recovery stops at
    /// them by design.
    pub(crate) fn open(config: &StateConfig) -> std::io::Result<(Self, Recovery)> {
        std::fs::create_dir_all(&config.dir)?;
        let scan = scan_state_dir(&config.dir)?;
        let recovery = recover_from_scan(&scan);

        // Truncate the corrupt tail so the next boot does not re-scan it.
        if let Some((gen, offset)) = recovery.truncate {
            let f = OpenOptions::new()
                .write(true)
                .open(journal_path(&config.dir, gen))?;
            f.set_len(offset)?;
            f.sync_data()?;
        }
        let _ = std::fs::remove_file(marker_path(&config.dir));

        // A fresh generation for this lifetime: snapshot what we recovered
        // so every older generation is subsumed, then journal from there.
        let gen = scan.max_gen.map_or(0, |g| g + 1);
        let now = Instant::now();
        let persist = Self {
            dir: config.dir.clone(),
            fsync: config.fsync,
            snapshot_interval: config.snapshot_interval,
            snapshot_min_records: config.snapshot_min_records,
            state: Mutex::named(
                "server.persist.journal",
                PersistState {
                    journal: open_journal(&config.dir, gen)?,
                    records: 0,
                    dirty: false,
                    last_sync: now,
                    gen,
                    last_snapshot: now,
                },
            ),
            finalized: std::sync::atomic::AtomicBool::new(false),
        };
        persist.write_snapshot_file(gen, &recovery.registry)?;
        persist.prune(gen);
        Ok((persist, recovery))
    }

    /// Takes the journal lock. Callers append with [`Persist::append`]
    /// while holding it, around the live mutation the event describes.
    pub(crate) fn begin(&self) -> MutexGuard<'_, PersistState> {
        self.state.lock()
    }

    /// Appends one event frame and applies the fsync policy. I/O errors
    /// are reported to stderr, not propagated: a full disk degrades
    /// durability, never availability.
    pub(crate) fn append(&self, st: &mut PersistState, ev: &Event) {
        let payload = event_json(ev).to_string();
        if let Err(e) = write_frame(&mut st.journal, payload.as_bytes()) {
            eprintln!("bpimc-server: journal append failed: {e}");
            return;
        }
        st.records += 1;
        st.dirty = true;
        match self.fsync {
            FsyncPolicy::Always => {
                let _ = st.journal.sync_data();
                st.dirty = false;
                st.last_sync = Instant::now();
            }
            FsyncPolicy::Interval(d) => {
                if st.last_sync.elapsed() >= d {
                    let _ = st.journal.sync_data();
                    st.dirty = false;
                    st.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
    }

    /// The sweeper tick: flushes an overdue interval-policy sync and
    /// writes a compacting snapshot when either trigger fires.
    pub(crate) fn tick(&self, registry: &SessionRegistry) {
        let mut st = self.begin();
        if st.dirty {
            if let FsyncPolicy::Interval(d) = self.fsync {
                if st.last_sync.elapsed() >= d {
                    let _ = st.journal.sync_data();
                    st.dirty = false;
                    st.last_sync = Instant::now();
                }
            }
        }
        let due = st.records >= self.snapshot_min_records
            || (st.records > 0 && st.last_snapshot.elapsed() >= self.snapshot_interval);
        if due {
            self.snapshot_locked(&mut st, registry);
        }
    }

    /// Graceful shutdown: a final snapshot plus the clean-shutdown marker,
    /// so the next boot takes the warm path. Idempotent (`shutdown()` and
    /// `Drop` may both land here). Call only after every request-serving
    /// thread has exited.
    pub(crate) fn finalize(&self, registry: &SessionRegistry) {
        if self
            .finalized
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            return;
        }
        let mut st = self.begin();
        self.snapshot_locked(&mut st, registry);
        let gen = st.gen;
        drop(st);
        let path = marker_path(&self.dir);
        if std::fs::write(&path, format!("{gen}\n")).is_ok() {
            if let Ok(f) = File::open(&path) {
                let _ = f.sync_data();
            }
            sync_dir(&self.dir);
        }
    }

    /// Writes snapshot `gen+1`, rotates the journal to the new generation
    /// and prunes old files. Holding the persist lock makes this atomic
    /// against appenders: events are either inside the snapshot or in the
    /// new journal, never both, never neither.
    fn snapshot_locked(&self, st: &mut PersistState, registry: &SessionRegistry) {
        let reg = capture_registry(registry, Instant::now(), unix_ms_now());
        let next = st.gen + 1;
        if let Err(e) = self.write_snapshot_file(next, &reg) {
            eprintln!("bpimc-server: snapshot {next} failed: {e}");
            return;
        }
        match open_journal(&self.dir, next) {
            Ok(journal) => {
                // The old journal's events are all inside the durable
                // snapshot now; rotating *is* the truncation.
                let _ = st.journal.sync_data();
                st.journal = journal;
                st.gen = next;
                st.records = 0;
                st.dirty = false;
                st.last_snapshot = Instant::now();
                self.prune(next);
            }
            Err(e) => eprintln!("bpimc-server: journal rotation to gen {next} failed: {e}"),
        }
    }

    /// Atomic snapshot write: temp file, fsync, rename, directory fsync.
    fn write_snapshot_file(&self, gen: u64, reg: &RegistryRecord) -> std::io::Result<()> {
        let payload = snapshot_json(reg, unix_ms_now()).to_string();
        let tmp = self.dir.join(format!("snap-{gen}.tmp"));
        let mut f = File::create(&tmp)?;
        write_frame(&mut f, payload.as_bytes())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, snap_path(&self.dir, gen))?;
        sync_dir(&self.dir);
        Ok(())
    }

    /// Keeps the newest two generations (the current one plus one fallback
    /// in case the current snapshot is later found corrupt).
    fn prune(&self, current: u64) {
        for gen in (0..current.saturating_sub(1)).rev().take(8) {
            let _ = std::fs::remove_file(snap_path(&self.dir, gen));
            let _ = std::fs::remove_file(journal_path(&self.dir, gen));
        }
    }
}

fn open_journal(dir: &Path, gen: u64) -> std::io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(journal_path(dir, gen))
}

fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------------
// Recovery + inspection
// ---------------------------------------------------------------------------

/// One journal file's scan: its generation, the decoded events, and the
/// corruption that stopped the read, if any.
type JournalScan = (u64, Vec<Result<Event, String>>, Option<Corruption>);

/// Everything found in one pass over a state directory.
struct StateScan {
    /// Snapshot generations present, ascending.
    snapshots: Vec<(u64, Result<RegistryRecord, String>)>,
    /// Journal generations present, ascending.
    journals: Vec<JournalScan>,
    /// The clean-shutdown marker's generation, if present and readable.
    clean_marker: Option<u64>,
    /// Highest generation seen across snapshots and journals.
    max_gen: Option<u64>,
}

fn scan_state_dir(dir: &Path) -> std::io::Result<StateScan> {
    let mut snap_gens: Vec<u64> = Vec::new();
    let mut journal_gens: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(g) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".bpimc"))
            .and_then(|s| s.parse().ok())
        {
            snap_gens.push(g);
        } else if let Some(g) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse().ok())
        {
            journal_gens.push(g);
        }
    }
    snap_gens.sort_unstable();
    journal_gens.sort_unstable();
    let max_gen = snap_gens.iter().chain(journal_gens.iter()).max().copied();

    let snapshots = snap_gens
        .into_iter()
        .map(|g| {
            let parsed = read_file(&snap_path(dir, g)).and_then(|bytes| {
                let (frames, corrupt) = read_frames(&bytes);
                match (frames.into_iter().next(), corrupt) {
                    (Some(payload), None) => String::from_utf8(payload)
                        .map_err(|_| "snapshot is not UTF-8".to_string())
                        .and_then(|s| Json::parse(&s).map_err(|e| e.to_string()))
                        .and_then(|v| snapshot_from_json(&v)),
                    (_, Some(c)) => Err(format!("{} at byte {}", c.reason, c.offset)),
                    (None, None) => Err("empty snapshot file".to_string()),
                }
            });
            (g, parsed)
        })
        .collect();

    let mut journals = Vec::new();
    for g in journal_gens {
        let bytes = read_file(&journal_path(dir, g)).unwrap_or_default();
        let (frames, corruption) = read_frames(&bytes);
        let events = frames
            .into_iter()
            .map(|payload| {
                String::from_utf8(payload)
                    .map_err(|_| "event is not UTF-8".to_string())
                    .and_then(|s| Json::parse(&s).map_err(|e| e.to_string()))
                    .and_then(|v| event_from_json(&v))
            })
            .collect();
        journals.push((g, events, corruption));
    }

    let clean_marker = std::fs::read_to_string(marker_path(dir))
        .ok()
        .and_then(|s| s.trim().parse().ok());

    Ok(StateScan {
        snapshots,
        journals,
        clean_marker,
        max_gen,
    })
}

fn read_file(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| e.to_string())
}

/// Reconstructs the registry from a scan: newest valid snapshot, then the
/// journal tail, stopping at the first corrupt record (an unparseable but
/// CRC-valid event counts as corruption too — it means a format bug, and
/// replaying past it would apply events against unknown state).
fn recover_from_scan(scan: &StateScan) -> Recovery {
    let chosen = scan
        .snapshots
        .iter()
        .rev()
        .find_map(|(g, parsed)| parsed.as_ref().ok().map(|reg| (*g, reg.clone())));
    let (base_gen, mut registry) = match chosen {
        Some((g, reg)) => (Some(g), reg),
        None => (None, RegistryRecord::default()),
    };

    // Warm path: the clean marker names the chosen snapshot, so the
    // journal holds nothing newer.
    if let (Some(marker), Some(base)) = (scan.clean_marker, base_gen) {
        if marker == base {
            return Recovery {
                path: format!(
                    "warm restart: clean-shutdown snapshot gen {base} ({} sessions), journal \
                     replay skipped",
                    registry.sessions.len()
                ),
                registry,
                corruption: None,
                truncate: None,
            };
        }
    }

    let mut replayed = 0usize;
    let mut corruption = None;
    let mut truncate = None;
    'journals: for (g, events, file_corruption) in &scan.journals {
        if base_gen.is_some_and(|base| *g < base) {
            continue;
        }
        for ev in events {
            match ev {
                Ok(ev) => {
                    apply_event(&mut registry, ev);
                    replayed += 1;
                }
                Err(e) => {
                    corruption = Some(Corruption {
                        offset: 0,
                        dropped_bytes: 0,
                        reason: format!("unparseable event: {e}"),
                    });
                    break 'journals;
                }
            }
        }
        if let Some(c) = file_corruption {
            corruption = Some(c.clone());
            truncate = Some((*g, c.offset));
            break;
        }
    }
    let path = match (base_gen, &corruption) {
        (base, Some(c)) => format!(
            "recovered {} sessions from {} + {replayed} journal events; stopped at corrupt \
             record ({}, {} bytes dropped)",
            registry.sessions.len(),
            base.map_or("empty state".to_string(), |g| format!("snapshot gen {g}")),
            c.reason,
            c.dropped_bytes,
        ),
        (Some(g), None) => format!(
            "recovered {} sessions from snapshot gen {g} + {replayed} journal events",
            registry.sessions.len()
        ),
        (None, None) => format!(
            "recovered {} sessions from journal replay alone ({replayed} events)",
            registry.sessions.len()
        ),
    };
    Recovery {
        registry,
        path,
        corruption,
        truncate,
    }
}

/// Per-file detail in a [`StateReport`].
#[derive(Debug)]
pub struct FileReport {
    /// Generation number from the file name.
    pub gen: u64,
    /// Decoded records (events for journals, 1 for a valid snapshot).
    pub records: u64,
    /// `None` when the file decoded cleanly.
    pub corruption: Option<Corruption>,
}

/// One session's summary in a [`StateReport`].
#[derive(Debug)]
pub struct SessionSummary {
    /// The session token.
    pub token: String,
    /// The recovered account.
    pub stats: SessionActivity,
    /// Stored programs.
    pub programs: usize,
    /// Idempotency watermark.
    pub last_seq: Option<u64>,
    /// Replay-window entries.
    pub replay: usize,
    /// Unix-epoch milliseconds when its current detachment began, if it
    /// was detached.
    pub detached_since_ms: Option<u64>,
}

/// What [`inspect`] found in a state directory — the `repro state`
/// payload.
#[derive(Debug)]
pub struct StateReport {
    /// Snapshot files, ascending by generation.
    pub snapshots: Vec<FileReport>,
    /// Journal files, ascending by generation.
    pub journals: Vec<FileReport>,
    /// The snapshot generation recovery would start from.
    pub chosen_snapshot: Option<u64>,
    /// The clean-shutdown marker's generation, if present.
    pub clean_marker: Option<u64>,
    /// Whether the warm (marker) path would be taken.
    pub warm: bool,
    /// Journal events recovery would replay.
    pub replayed_events: u64,
    /// The recovered sessions, summarized.
    pub sessions: Vec<SessionSummary>,
    /// Any corruption found (torn tail, CRC failure, unparseable record).
    pub corruptions: Vec<(String, Corruption)>,
}

impl StateReport {
    /// True when any file failed its CRC, length or parse checks —
    /// `repro state` exits non-zero on this.
    pub fn corrupt(&self) -> bool {
        !self.corruptions.is_empty()
    }
}

/// Read-only inspection of a state directory: what every file holds,
/// where decoding stops, and the per-session summary of what recovery
/// would reconstruct. Never modifies the directory.
///
/// # Errors
///
/// Returns the I/O error when the directory cannot be read (missing
/// files and corrupt records are reported in the result, not as errors).
pub fn inspect(dir: &Path) -> std::io::Result<StateReport> {
    let scan = scan_state_dir(dir)?;
    let recovery = recover_from_scan(&scan);
    let mut corruptions = Vec::new();
    let snapshots = scan
        .snapshots
        .iter()
        .map(|(g, parsed)| match parsed {
            Ok(_) => FileReport {
                gen: *g,
                records: 1,
                corruption: None,
            },
            Err(e) => {
                let c = Corruption {
                    offset: 0,
                    dropped_bytes: 0,
                    reason: e.clone(),
                };
                corruptions.push((format!("snap-{g}.bpimc"), c.clone()));
                FileReport {
                    gen: *g,
                    records: 0,
                    corruption: Some(c),
                }
            }
        })
        .collect();
    let journals = scan
        .journals
        .iter()
        .map(|(g, events, corruption)| {
            let bad_event = events.iter().find_map(|e| e.as_ref().err());
            let corruption = match (corruption, bad_event) {
                (Some(c), _) => Some(c.clone()),
                (None, Some(e)) => Some(Corruption {
                    offset: 0,
                    dropped_bytes: 0,
                    reason: format!("unparseable event: {e}"),
                }),
                (None, None) => None,
            };
            if let Some(c) = &corruption {
                corruptions.push((format!("journal-{g}.log"), c.clone()));
            }
            FileReport {
                gen: *g,
                records: events.iter().filter(|e| e.is_ok()).count() as u64,
                corruption,
            }
        })
        .collect();
    let chosen_snapshot = scan
        .snapshots
        .iter()
        .rev()
        .find_map(|(g, parsed)| parsed.is_ok().then_some(*g));
    let warm = matches!(
        (scan.clean_marker, chosen_snapshot),
        (Some(m), Some(c)) if m == c
    );
    let replayed_events = if warm {
        0
    } else {
        scan.journals
            .iter()
            .filter(|(g, _, _)| chosen_snapshot.is_none_or(|base| *g >= base))
            .map(|(_, events, _)| events.iter().filter(|e| e.is_ok()).count() as u64)
            .sum()
    };
    let mut sessions: Vec<SessionSummary> = recovery
        .registry
        .sessions
        .iter()
        .map(|r| SessionSummary {
            token: r.token.clone(),
            stats: r.stats,
            programs: r.programs.len(),
            last_seq: r.last_seq,
            replay: r.replay.len(),
            detached_since_ms: r.detached_since_ms,
        })
        .collect();
    sessions.sort_by(|a, b| a.token.cmp(&b.token));
    Ok(StateReport {
        snapshots,
        journals,
        chosen_snapshot,
        clean_marker: scan.clean_marker,
        warm,
        replayed_events,
        sessions,
        corruptions,
    })
}

// ---------------------------------------------------------------------------
// Journal-hook helpers (called from the dispatcher / control handlers)
// ---------------------------------------------------------------------------

/// Builds the `Exec` event for one settle, mirroring `settle`'s inputs:
/// the billing, the ran program, and — when the outcome consumed a seq —
/// the serialized response the replay window records.
pub(crate) fn exec_event(
    token: &str,
    billing: &Billing,
    ran_pid: Option<u64>,
    seq: Option<u64>,
    body: &ResponseBody,
) -> Event {
    let billing = match billing {
        Billing::Ok { cycles, energy_fj } => BillingRecord::Ok {
            cycles: *cycles,
            energy_fj: *energy_fj,
        },
        Billing::Error => BillingRecord::Error {
            message: match body {
                ResponseBody::Error(e) => e.message.clone(),
                _ => String::new(),
            },
        },
        Billing::None => BillingRecord::None,
    };
    let response = seq.map(|_| {
        Response {
            id: 0,
            body: body.clone(),
        }
        .to_json_line()
    });
    Event::Exec {
        token: token.to_string(),
        billing,
        ran_pid,
        seq,
        response,
        unix_ms: unix_ms_now(),
    }
}

/// Captures a just-opened durable session into its `Open` event. Locks
/// the session's inner state; call with the persist guard held and no
/// session lock held.
pub(crate) fn open_event(session: &Session) -> Option<Event> {
    let token = session.token.as_deref()?;
    let inner = session.inner.lock();
    Some(Event::Open {
        token: token.to_string(),
        record: Box::new(capture_session(
            token,
            &inner,
            Instant::now(),
            unix_ms_now(),
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_core::ErrorBody;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert!(FsyncPolicy::parse("interval:soon").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(250)).to_string(),
            "interval:250"
        );
    }

    #[test]
    fn frames_roundtrip_and_stop_at_torn_or_flipped_bytes() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let (frames, corruption) = read_frames(&buf);
        assert_eq!(frames, vec![b"first".to_vec(), b"second".to_vec()]);
        assert!(corruption.is_none());

        // Torn tail: drop the last 3 bytes.
        let torn = &buf[..buf.len() - 3];
        let (frames, corruption) = read_frames(torn);
        assert_eq!(frames, vec![b"first".to_vec()]);
        let c = corruption.expect("torn frame detected");
        assert_eq!(c.offset, 13, "first frame is 8 + 5 bytes");
        assert!(c.reason.contains("torn"));

        // Bit flip inside the second payload: CRC catches it.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let (frames, corruption) = read_frames(&flipped);
        assert_eq!(frames.len(), 1);
        assert!(corruption.expect("flip detected").reason.contains("CRC"));
    }

    fn sample_record() -> SessionRecord {
        let mut rec = SessionRecord::empty("cafe".into());
        rec.stats.record_ok(7, 1.25);
        rec.stats.record_error();
        rec.rate = Some((1000, 7, 1.25));
        rec.model = Some((8, vec![vec![1, 2], vec![3, 4]]));
        rec.next_pid = 3;
        rec.last_seq = Some(9);
        rec.detached_since_ms = Some(42);
        rec.programs.push(ProgramRecord {
            pid: 2,
            name: Some("p".into()),
            instrs: vec![
                Instr::Write {
                    dst: bpimc_core::Reg(0),
                    precision: bpimc_core::Precision::P8,
                    values: vec![1, 2],
                },
                Instr::Read {
                    src: bpimc_core::Reg(0),
                    precision: bpimc_core::Precision::P8,
                    n: 2,
                },
            ],
            runs: 4,
            errors: 1,
            total_cycles: 40,
            total_energy_fj: 0.1 + 0.2, // deliberately non-representable
            last_status: Some(RunStatus::Error {
                message: "boom".into(),
            }),
        });
        rec.replay.push((
            9,
            Response {
                id: 0,
                body: ResponseBody::Scalar(42),
            }
            .to_json_line(),
        ));
        rec
    }

    #[test]
    fn records_roundtrip_with_exact_energy_bits() {
        let rec = sample_record();
        let back = record_from_json(&Json::parse(&record_json(&rec).to_string()).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(
            back.programs[0].total_energy_fj.to_bits(),
            rec.programs[0].total_energy_fj.to_bits(),
            "energy must survive as exact bits, not as a decimal approximation"
        );
    }

    #[test]
    fn events_roundtrip_through_their_wire_form() {
        let events = vec![
            Event::Open {
                token: "t".into(),
                record: Box::new(sample_record()),
            },
            Event::Attach { token: "t".into() },
            Event::Detach {
                token: "t".into(),
                unix_ms: 123,
            },
            Event::Expire { token: "t".into() },
            Event::Model {
                token: "t".into(),
                precision_bits: 8,
                prototypes: vec![vec![1, 2]],
            },
            Event::Store {
                token: "t".into(),
                pid: 1,
                name: None,
                instrs: sample_record().programs[0].instrs.clone(),
            },
            Event::Delete {
                token: "t".into(),
                pid: 1,
            },
            Event::Exec {
                token: "t".into(),
                billing: BillingRecord::Ok {
                    cycles: 3,
                    energy_fj: 0.3,
                },
                ran_pid: Some(1),
                seq: Some(0),
                response: Some("{}".into()),
                unix_ms: 5,
            },
            Event::Exec {
                token: "t".into(),
                billing: BillingRecord::Error {
                    message: "nope".into(),
                },
                ran_pid: None,
                seq: None,
                response: None,
                unix_ms: 6,
            },
        ];
        for ev in events {
            let back =
                event_from_json(&Json::parse(&event_json(&ev).to_string()).unwrap()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn apply_event_mirrors_settle_semantics() {
        let mut reg = RegistryRecord::default();
        apply_event(
            &mut reg,
            &Event::Open {
                token: "a".into(),
                record: Box::new(SessionRecord::empty("a".into())),
            },
        );
        assert_eq!(reg.mint_counter, 1);
        apply_event(
            &mut reg,
            &Event::Store {
                token: "a".into(),
                pid: 1,
                name: Some("p".into()),
                instrs: vec![],
            },
        );
        // A billed run updates stats, the window and the program history.
        apply_event(
            &mut reg,
            &Event::Exec {
                token: "a".into(),
                billing: BillingRecord::Ok {
                    cycles: 10,
                    energy_fj: 2.5,
                },
                ran_pid: Some(1),
                seq: Some(0),
                response: Some("r0".into()),
                unix_ms: 1000,
            },
        );
        // A failed run in the same window.
        apply_event(
            &mut reg,
            &Event::Exec {
                token: "a".into(),
                billing: BillingRecord::Error {
                    message: "bad".into(),
                },
                ran_pid: Some(1),
                seq: Some(1),
                response: Some("r1".into()),
                unix_ms: 1500,
            },
        );
        let rec = &reg.sessions[0];
        assert_eq!(rec.stats.requests, 2);
        assert_eq!(rec.stats.errors, 1);
        assert_eq!(rec.stats.cycles, 10);
        assert_eq!(rec.rate, Some((1000, 10, 2.5)));
        assert_eq!(rec.next_pid, 2);
        assert_eq!(rec.programs[0].runs, 1);
        assert_eq!(rec.programs[0].errors, 1);
        assert_eq!(
            rec.programs[0].last_status,
            Some(RunStatus::Error {
                message: "bad".into()
            })
        );
        assert_eq!(rec.last_seq, Some(1));
        assert_eq!(rec.replay.len(), 2);

        // A new window starts once the old one ages out.
        apply_event(
            &mut reg,
            &Event::Exec {
                token: "a".into(),
                billing: BillingRecord::Ok {
                    cycles: 1,
                    energy_fj: 0.5,
                },
                ran_pid: None,
                seq: None,
                response: None,
                unix_ms: 2500,
            },
        );
        assert_eq!(reg.sessions[0].rate, Some((2500, 1, 0.5)));

        // Replay window stays bounded, like the live one.
        for seq in 2..(REPLAY_WINDOW as u64 + 4) {
            apply_event(
                &mut reg,
                &Event::Exec {
                    token: "a".into(),
                    billing: BillingRecord::None,
                    ran_pid: None,
                    seq: Some(seq),
                    response: Some(format!("r{seq}")),
                    unix_ms: 2500,
                },
            );
        }
        assert_eq!(reg.sessions[0].replay.len(), REPLAY_WINDOW);

        // Expiry removes the session and remembers the token.
        apply_event(&mut reg, &Event::Expire { token: "a".into() });
        assert!(reg.sessions.is_empty());
        assert_eq!(reg.expired, vec!["a".to_string()]);
    }

    #[test]
    fn exec_event_extracts_error_messages_like_settle_does() {
        let body = ResponseBody::Error(ErrorBody::generic("array on fire"));
        let ev = exec_event("t", &Billing::Error, Some(1), Some(3), &body);
        match ev {
            Event::Exec {
                billing: BillingRecord::Error { message },
                seq: Some(3),
                response: Some(resp),
                ..
            } => {
                assert_eq!(message, "array on fire");
                let parsed = Response::parse(&resp).expect("recorded responses re-parse");
                assert!(matches!(parsed.body, ResponseBody::Error(_)));
            }
            other => panic!("wrong event shape: {other:?}"),
        }
    }
}
