//! Durable sessions: token-keyed tenant state that survives connection
//! drops, and the bounded registry that owns it.
//!
//! Historically a session *was* its connection — the loaded model, the
//! stored-program cache, the exact cycle/energy account and the in-window
//! rate budgets all lived in the reader's `Conn` and died with the
//! socket. This module splits that state out into [`Session`] objects:
//!
//! - An **ephemeral** session (`token: None`) reproduces the old
//!   behaviour exactly — every connection starts with one, and it is
//!   dropped when the connection goes away.
//! - A **durable** session (`token: Some(..)`) is owned by the
//!   [`SessionRegistry`], keyed by an unguessable token. When its
//!   connection drops it is *detached*, lingers for the registry's TTL,
//!   and a later connection can re-attach with `resume_session` — model,
//!   programs, account and rate budgets intact. Past the TTL a sweep
//!   garbage-collects it; the token is remembered in a bounded ring so a
//!   late resume gets the honest `session_expired` rather than
//!   `bad_token`.
//!
//! Durable sessions also carry the idempotency guard: each request may be
//! stamped with a strictly increasing per-session `seq`. The session
//! remembers the last seq that *executed* plus a bounded window of recent
//! responses ([`REPLAY_WINDOW`]), so a client that resends after a
//! mid-request connection drop gets the original response replayed —
//! never a second execution, never a second bill. Transient refusals
//! (overload sheds, rate-budget and inflight refusals, deadlines expired
//! in queue) deliberately do **not** consume a seq: the op never ran, so
//! a retry must be re-admitted fresh.
//!
//! All locks here go through the [`bpimc_stats::sync`] shim, so the
//! registry protocol (resume vs. drain, GC vs. resume, seq replay) runs
//! under the deterministic model scheduler in `crate::models`. Lock
//! order: `server.persist.journal` (when persistence is on) before
//! `server.sessions.registry` before `server.session.inner`; never the
//! reverse.

use crate::exec::Model;
use crate::guard::RateWindow;
use bpimc_core::{
    CompiledProgram, ErrorBody, Instr, LimitKind, ProgramEntry, ResponseBody, RunStatus,
    SessionActivity, SessionInfo, StoredTarget,
};
use bpimc_stats::sync::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Responses a durable session keeps for seq replay. A retrying client
/// resends only its most recent in-flight request, so a small window is
/// plenty; the bound keeps a session's memory footprint independent of
/// its lifetime.
pub(crate) const REPLAY_WINDOW: usize = 32;

/// Swept tokens remembered for the `session_expired` answer. Beyond this
/// many, the oldest are forgotten and answer `bad_token` — indistinguish-
/// able, to a client, from a token that never existed, which is the
/// honest degraded answer.
const EXPIRED_TOKENS: usize = 1024;

/// Back-off hint on the busy refusal of a second concurrent resume: long
/// enough for the holder's reader to notice a dead socket, short enough
/// that a legitimate takeover barely stalls.
const RESUME_BUSY_RETRY_MS: u64 = 25;

/// One stored program in a session's registry: the compiled fast-path
/// artifact plus its name and cumulative run history (the
/// `list_programs` payload).
pub(crate) struct StoredEntry {
    pub compiled: Arc<CompiledProgram>,
    pub name: Option<String>,
    /// The instruction stream exactly as submitted — what the journal
    /// persists, so recovery can recompile through the same pipeline
    /// instead of trusting a serialized artifact.
    pub source: Vec<Instr>,
    pub runs: u64,
    pub errors: u64,
    pub total_cycles: u64,
    pub total_energy_fj: f64,
    pub last_status: Option<RunStatus>,
}

impl StoredEntry {
    pub(crate) fn new(
        compiled: Arc<CompiledProgram>,
        name: Option<String>,
        source: Vec<Instr>,
    ) -> Self {
        Self {
            compiled,
            name,
            source,
            runs: 0,
            errors: 0,
            total_cycles: 0,
            total_energy_fj: 0.0,
            last_status: None,
        }
    }
}

/// How one settled request affects the session account.
pub(crate) enum Billing {
    /// Executed: bill exact cycles/energy into stats and the rate window.
    Ok { cycles: u64, energy_fj: f64 },
    /// Failed or was refused: bill an error (requests count too).
    Error,
    /// A replayed duplicate or a session-management op: no accounting —
    /// the account must reflect each logical op exactly once, however
    /// many times its request was (re)sent.
    None,
}

/// The state behind one session's lock.
pub(crate) struct SessionInner {
    pub stats: SessionActivity,
    /// Cycle/energy spend in the current budget window (guardrails). The
    /// whole window travels with the session, so a resumed tenant cannot
    /// reset its in-window budget by reconnecting.
    pub rate: RateWindow,
    pub model: Option<Arc<Model>>,
    pub stored: HashMap<u64, StoredEntry>,
    /// Registry names to pids (`store_program` with a `name`).
    pub names: HashMap<String, u64>,
    pub next_pid: u64,
    /// Highest request seq that has executed (idempotency guard).
    last_seq: Option<u64>,
    /// Recent `(seq, response)` pairs for replay, oldest first.
    replay: VecDeque<(u64, ResponseBody)>,
    /// A live connection currently owns this session (durable sessions
    /// accept at most one at a time).
    attached: bool,
    /// When the last connection let go — the TTL clock.
    detached_at: Option<Instant>,
    /// Detachment served *before* the last recovery, credited against the
    /// TTL: `Instant`s do not survive a restart, so recovery restarts the
    /// clock at boot but carries the pre-crash elapsed time here. A
    /// resume clears it along with `detached_at`.
    detached_carry: Duration,
}

impl SessionInner {
    fn new() -> Self {
        Self {
            stats: SessionActivity::new(),
            rate: RateWindow::new(),
            model: None,
            stored: HashMap::new(),
            names: HashMap::new(),
            next_pid: 1,
            last_seq: None,
            replay: VecDeque::new(),
            attached: true,
            detached_at: None,
            detached_carry: Duration::ZERO,
        }
    }

    /// Rebuilds a recovered session's state. The session materializes
    /// *detached* — its pre-crash connection is certainly gone — with the
    /// TTL clock restarted at `now` and `detached_carry` (how long it had
    /// already been detached before the crash) credited against it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        stats: SessionActivity,
        rate: RateWindow,
        model: Option<Arc<Model>>,
        stored: HashMap<u64, StoredEntry>,
        names: HashMap<String, u64>,
        next_pid: u64,
        last_seq: Option<u64>,
        replay: Vec<(u64, ResponseBody)>,
        detached_carry: Duration,
        now: Instant,
    ) -> Self {
        Self {
            stats,
            rate,
            model,
            stored,
            names,
            next_pid,
            last_seq,
            replay: replay.into_iter().collect(),
            attached: false,
            detached_at: Some(now),
            detached_carry,
        }
    }

    /// How long this session has been detached at `now`, including time
    /// carried over from before a restart; `None` while attached.
    pub(crate) fn detached_for(&self, now: Instant) -> Option<Duration> {
        if self.attached {
            return None;
        }
        self.detached_at
            .map(|t| now.saturating_duration_since(t) + self.detached_carry)
    }

    /// The replay window's `(seq, response)` pairs, oldest first (what
    /// the persistence layer snapshots).
    pub(crate) fn replay_entries(&self) -> impl Iterator<Item = &(u64, ResponseBody)> {
        self.replay.iter()
    }

    /// True when `seq` was already claimed by an earlier request — the
    /// caller must answer from the replay window instead of executing.
    pub(crate) fn is_replay(&self, seq: u64) -> bool {
        self.last_seq.is_some_and(|last| seq <= last)
    }

    /// Marks `seq` as executing. Idempotent; never lowers the watermark.
    pub(crate) fn claim_seq(&mut self, seq: u64) {
        if self.last_seq.is_none_or(|last| seq > last) {
            self.last_seq = Some(seq);
        }
    }

    /// The recorded response for a replayed `seq`, while it is still
    /// inside the bounded window.
    pub(crate) fn replayed(&self, seq: u64) -> Option<ResponseBody> {
        self.replay
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, body)| body.clone())
    }

    /// The highest executed seq (reported on resume so a continuing
    /// client can pick the next one).
    pub(crate) fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Resolves a stored-program address to `(pid, compiled)`.
    pub(crate) fn resolve(&self, target: &StoredTarget) -> Option<(u64, Arc<CompiledProgram>)> {
        let pid = match target {
            StoredTarget::Pid(pid) => *pid,
            StoredTarget::Name(name) => *self.names.get(name)?,
        };
        self.stored.get(&pid).map(|e| (pid, e.compiled.clone()))
    }

    /// Removes a stored program (and its name mapping), returning its pid.
    pub(crate) fn remove_stored(&mut self, target: &StoredTarget) -> Option<u64> {
        let pid = match target {
            StoredTarget::Pid(pid) => *pid,
            StoredTarget::Name(name) => *self.names.get(name)?,
        };
        let entry = self.stored.remove(&pid)?;
        if let Some(name) = entry.name {
            self.names.remove(&name);
        }
        Some(pid)
    }

    /// The `list_programs` payload: every entry with its run history,
    /// ordered by pid.
    pub(crate) fn program_entries(&self) -> Vec<ProgramEntry> {
        let mut entries: Vec<ProgramEntry> = self
            .stored
            .iter()
            .map(|(&pid, e)| ProgramEntry {
                pid,
                name: e.name.clone(),
                cycles: e.compiled.cycles(),
                writes: e.compiled.write_count() as u64,
                runs: e.runs,
                errors: e.errors,
                total_cycles: e.total_cycles,
                total_energy_fj: e.total_energy_fj,
                last_status: e.last_status.clone(),
            })
            .collect();
        entries.sort_by_key(|e| e.pid);
        entries
    }

    /// Settles one request against this session: applies its billing,
    /// updates the run history of the stored program it ran (if any), and
    /// — when `seq` is set — records the seq as executed with its
    /// response cached for replay.
    pub(crate) fn settle(
        &mut self,
        billing: Billing,
        ran_pid: Option<u64>,
        seq: Option<u64>,
        body: &ResponseBody,
    ) {
        match billing {
            Billing::Ok { cycles, energy_fj } => {
                self.stats.record_ok(cycles, energy_fj);
                self.rate.charge(cycles, energy_fj);
                if let Some(entry) = ran_pid.and_then(|pid| self.stored.get_mut(&pid)) {
                    entry.runs += 1;
                    entry.total_cycles += cycles;
                    entry.total_energy_fj += energy_fj;
                    entry.last_status = Some(RunStatus::Success);
                }
            }
            Billing::Error => {
                self.stats.record_error();
                if let Some(entry) = ran_pid.and_then(|pid| self.stored.get_mut(&pid)) {
                    entry.errors += 1;
                    let message = match body {
                        ResponseBody::Error(e) => e.message.clone(),
                        _ => String::new(),
                    };
                    entry.last_status = Some(RunStatus::Error { message });
                }
            }
            Billing::None => {}
        }
        if let Some(seq) = seq {
            self.claim_seq(seq);
            if self.replay.len() >= REPLAY_WINDOW {
                self.replay.pop_front();
            }
            self.replay.push_back((seq, body.clone()));
        }
    }
}

/// One tenant's serving state, shared between its (current) connection,
/// in-flight batch items and — when durable — the registry.
pub(crate) struct Session {
    /// `None` for an ephemeral (connection-lifetime) session.
    pub token: Option<String>,
    pub inner: Mutex<SessionInner>,
}

impl Session {
    /// A fresh connection-lifetime session (the pre-token behaviour).
    pub(crate) fn ephemeral() -> Arc<Session> {
        Arc::new(Session {
            token: None,
            inner: Mutex::named("server.session.inner", SessionInner::new()),
        })
    }

    pub(crate) fn is_durable(&self) -> bool {
        self.token.is_some()
    }

    /// Convenience: settle under the session lock.
    pub(crate) fn settle(
        &self,
        billing: Billing,
        ran_pid: Option<u64>,
        seq: Option<u64>,
        body: &ResponseBody,
    ) {
        self.inner.lock().settle(billing, ran_pid, seq, body);
    }

    /// Lets go of this session: the next resume may attach. Starts the
    /// TTL clock on the first detach; a no-op on ephemeral sessions and
    /// idempotent on durable ones (repeat detaches never extend the TTL).
    pub(crate) fn detach(&self, now: Instant) {
        if !self.is_durable() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.attached = false;
        if inner.detached_at.is_none() {
            inner.detached_at = Some(now);
        }
    }

    /// The `session` response payload for this (durable) session.
    pub(crate) fn info(&self) -> SessionInfo {
        let inner = self.inner.lock();
        SessionInfo {
            token: self.token.clone().unwrap_or_default(),
            stats: inner.stats,
            stored_programs: inner.stored.len() as u64,
            last_seq: inner.last_seq(),
        }
    }
}

/// Sizing of the durable-session registry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegistryCaps {
    /// How long a detached session lingers before a sweep collects it.
    pub ttl: Duration,
    /// Most durable sessions (attached + detached) at once.
    pub max_sessions: usize,
    /// Most stored programs across every durable session — the global
    /// bound that keeps orphaned sessions from exhausting memory even
    /// when each is under its per-session cap.
    pub max_programs: usize,
}

pub(crate) struct RegistryState {
    by_token: HashMap<String, Arc<Session>>,
    /// Swept tokens, oldest first (bounded at [`EXPIRED_TOKENS`]).
    expired: VecDeque<String>,
    /// Stored programs across every durable session.
    pub(crate) total_stored: usize,
    /// Monotonic salt for token minting.
    mint_counter: u64,
}

/// The bounded table of durable sessions, plus the TTL sweeper's
/// coordination state.
pub(crate) struct SessionRegistry {
    pub(crate) caps: RegistryCaps,
    state: Mutex<RegistryState>,
    /// Sweeper shutdown flag + wakeup.
    sweeper_stop: Mutex<bool>,
    sweeper_cv: Condvar,
}

/// splitmix64: the same finalizer the fault plan uses — full-avalanche
/// mixing, so related inputs produce unrelated tokens.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl SessionRegistry {
    pub(crate) fn new(caps: RegistryCaps) -> Self {
        Self {
            caps,
            state: Mutex::named(
                "server.sessions.registry",
                RegistryState {
                    by_token: HashMap::new(),
                    expired: VecDeque::new(),
                    total_stored: 0,
                    mint_counter: 0,
                },
            ),
            sweeper_stop: Mutex::named("server.sessions.sweeper", false),
            sweeper_cv: Condvar::new(),
        }
    }

    /// Mints a 128-bit hex token. Entropy is mixed from the wall clock's
    /// nanoseconds, ASLR'd addresses and a counter through splitmix64 —
    /// unguessable in practice for a research serving stack, though not a
    /// CSPRNG (the container image has no OS randomness source to draw
    /// on, and the protocol treats tokens as capabilities, not keys).
    fn mint_token(state: &mut RegistryState) -> String {
        state.mint_counter = state.mint_counter.wrapping_add(1);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let stack = &state.mint_counter as *const _ as u64;
        let heap = state.by_token.capacity() as u64 ^ (state as *const _ as u64);
        let a = mix(nanos ^ mix(state.mint_counter) ^ stack.rotate_left(13));
        let b = mix(a ^ mix(heap) ^ nanos.rotate_left(31));
        format!("{a:016x}{b:016x}")
    }

    /// Upgrades `current` (an ephemeral session) to a durable one: moves
    /// its whole state — account, model, programs, rate window — into a
    /// fresh token-keyed session registered here. The caller swaps the
    /// connection's session slot to the returned session.
    ///
    /// # Errors
    ///
    /// `limit_exceeded` naming `sessions` when the registry is full, or
    /// `registry_programs` when adopting the session's stored programs
    /// would break the global cap.
    pub(crate) fn open(&self, current: &Session, _now: Instant) -> Result<Arc<Session>, ErrorBody> {
        let mut state = self.state.lock();
        if state.by_token.len() >= self.caps.max_sessions {
            return Err(ErrorBody::limit(
                LimitKind::Sessions,
                Some(self.caps.ttl.as_millis() as u64),
                format!(
                    "session registry is full ({} durable sessions)",
                    self.caps.max_sessions
                ),
            ));
        }
        let mut current_inner = current.inner.lock();
        let adopted = current_inner.stored.len();
        if state.total_stored + adopted > self.caps.max_programs {
            return Err(ErrorBody::limit(
                LimitKind::RegistryPrograms,
                None,
                format!(
                    "registry-wide stored-program cap reached ({} across all sessions)",
                    self.caps.max_programs
                ),
            ));
        }
        let mut moved = std::mem::replace(&mut *current_inner, SessionInner::new());
        drop(current_inner);
        moved.attached = true;
        moved.detached_at = None;
        let token = Self::mint_token(&mut state);
        let session = Arc::new(Session {
            token: Some(token.clone()),
            inner: Mutex::named("server.session.inner", moved),
        });
        state.total_stored += adopted;
        state.by_token.insert(token, session.clone());
        Ok(session)
    }

    /// Attaches a connection to the session `token` names.
    ///
    /// # Errors
    ///
    /// `bad_token` for a token this registry never minted,
    /// `session_expired` for one whose session was swept, and a generic
    /// busy refusal (with a `retry_after_ms` hint) when another
    /// connection currently holds the session.
    pub(crate) fn resume(&self, token: &str, _now: Instant) -> Result<Arc<Session>, ErrorBody> {
        let state = self.state.lock();
        let Some(session) = state.by_token.get(token).cloned() else {
            if state.expired.iter().any(|t| t == token) {
                return Err(ErrorBody::session_expired(
                    "session expired: it sat disconnected past the server's TTL and was \
                     garbage-collected; open a fresh session",
                ));
            }
            return Err(ErrorBody::bad_token("unknown session token"));
        };
        let mut inner = session.inner.lock();
        if inner.attached {
            return Err(ErrorBody {
                retry_after_ms: Some(RESUME_BUSY_RETRY_MS),
                ..ErrorBody::generic(
                    "session is attached to another live connection; retry after it detaches",
                )
            });
        }
        inner.attached = true;
        inner.detached_at = None;
        inner.detached_carry = Duration::ZERO;
        drop(inner);
        drop(state);
        Ok(session)
    }

    /// Collects every detached session whose TTL elapsed at `now`
    /// (counting detachment carried over from before a restart),
    /// remembering the swept tokens for `session_expired` answers.
    /// Returns the swept tokens so a persistence layer can journal them.
    pub(crate) fn sweep(&self, now: Instant) -> Vec<String> {
        let mut state = self.state.lock();
        let dead: Vec<String> = state
            .by_token
            .iter()
            .filter(|(_, session)| {
                session
                    .inner
                    .lock()
                    .detached_for(now)
                    .is_some_and(|d| d >= self.caps.ttl)
            })
            .map(|(token, _)| token.clone())
            .collect();
        for token in &dead {
            if let Some(session) = state.by_token.remove(token) {
                state.total_stored = state
                    .total_stored
                    .saturating_sub(session.inner.lock().stored.len());
            }
            if state.expired.len() >= EXPIRED_TOKENS {
                state.expired.pop_front();
            }
            state.expired.push_back(token.clone());
        }
        dead
    }

    /// Durable sessions currently registered (the concurrency models'
    /// postcondition checks).
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.state.lock().by_token.len()
    }

    /// Locks the registry's global stored-program quota. Lock order:
    /// take this **before** any `session.inner` lock.
    pub(crate) fn quota(&self) -> MutexGuard<'_, RegistryState> {
        self.state.lock()
    }

    /// Everything a snapshot needs: the live sessions, the expired-token
    /// ring (oldest first) and the mint counter. Takes and releases the
    /// registry lock; callers serialize against mutations by holding the
    /// persistence layer's journal lock around the whole capture.
    pub(crate) fn snapshot_parts(&self) -> (Vec<Arc<Session>>, Vec<String>, u64) {
        let state = self.state.lock();
        (
            state.by_token.values().cloned().collect(),
            state.expired.iter().cloned().collect(),
            state.mint_counter,
        )
    }

    /// Installs recovered state at boot, before any connection is
    /// accepted: the rebuilt sessions, the expired-token ring and the
    /// mint counter (so post-restart tokens keep their uniqueness salt).
    pub(crate) fn install_recovered(
        &self,
        sessions: Vec<Arc<Session>>,
        expired: Vec<String>,
        mint_counter: u64,
    ) {
        let mut state = self.state.lock();
        for session in sessions {
            let token = session
                .token
                .clone()
                .expect("recovered sessions are durable");
            state.total_stored += session.inner.lock().stored.len();
            state.by_token.insert(token, session);
        }
        state.expired = expired.into_iter().collect();
        state.mint_counter = state.mint_counter.max(mint_counter);
    }

    /// The sweeper thread body: wakes every quarter-TTL (clamped to
    /// 10ms..1s) and runs `tick` — a sweep, plus whatever housekeeping
    /// the server hangs off the same cadence (journal fsync deadlines,
    /// snapshot triggers) — until [`SessionRegistry::stop_sweeper`].
    pub(crate) fn run_sweeper(&self, tick: impl Fn()) {
        let interval = (self.caps.ttl / 4)
            .max(Duration::from_millis(10))
            .min(Duration::from_secs(1));
        let mut stop = self.sweeper_stop.lock();
        while !*stop {
            let (guard, timed_out) = self.sweeper_cv.wait_timeout(stop, interval);
            stop = guard;
            if *stop {
                return;
            }
            if timed_out {
                drop(stop);
                tick();
                stop = self.sweeper_stop.lock();
            }
        }
    }

    /// Stops [`SessionRegistry::run_sweeper`] (idempotent).
    pub(crate) fn stop_sweeper(&self) {
        *self.sweeper_stop.lock() = true;
        self.sweeper_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(ttl_ms: u64) -> RegistryCaps {
        RegistryCaps {
            ttl: Duration::from_millis(ttl_ms),
            max_sessions: 4,
            max_programs: 100,
        }
    }

    #[test]
    fn tokens_are_distinct_and_opaque() {
        let registry = SessionRegistry::new(caps(1000));
        let now = Instant::now();
        let mut tokens = std::collections::HashSet::new();
        for _ in 0..4 {
            let s = registry.open(&Session::ephemeral(), now).expect("open");
            let token = s.token.clone().expect("durable sessions have tokens");
            assert_eq!(token.len(), 32, "{token}");
            assert!(token.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(tokens.insert(token), "tokens must be distinct");
        }
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn registry_cap_refuses_the_next_open() {
        let registry = SessionRegistry::new(caps(1000));
        let now = Instant::now();
        for _ in 0..4 {
            registry
                .open(&Session::ephemeral(), now)
                .expect("under cap");
        }
        let err = registry
            .open(&Session::ephemeral(), now)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.limit, Some(LimitKind::Sessions));
    }

    #[test]
    fn resume_rules_attached_detached_swept_and_forged() {
        let registry = SessionRegistry::new(caps(50));
        let t0 = Instant::now();
        let session = registry.open(&Session::ephemeral(), t0).expect("open");
        let token = session.token.clone().unwrap();

        // Attached: a second resume is refused with a back-off hint.
        let busy = registry.resume(&token, t0).map(|_| ()).unwrap_err();
        assert_eq!(busy.kind, bpimc_core::ErrorKind::Generic);
        assert!(busy.retry_after_ms.is_some());

        // Detached within TTL: resume re-attaches.
        session.detach(t0);
        assert!(registry.sweep(t0 + Duration::from_millis(10)).is_empty());
        let resumed = registry.resume(&token, t0).expect("resume");
        assert!(Arc::ptr_eq(&resumed, &session));

        // Swept past TTL: session_expired, and the session is gone.
        resumed.detach(t0);
        assert_eq!(
            registry.sweep(t0 + Duration::from_millis(60)),
            vec![token.clone()]
        );
        assert_eq!(registry.len(), 0);
        let expired = registry.resume(&token, t0).map(|_| ()).unwrap_err();
        assert_eq!(expired.kind, bpimc_core::ErrorKind::SessionExpired);

        // A token never minted here: bad_token.
        let forged = registry.resume("deadbeef", t0).map(|_| ()).unwrap_err();
        assert_eq!(forged.kind, bpimc_core::ErrorKind::BadToken);
    }

    #[test]
    fn detach_is_idempotent_and_never_extends_the_ttl() {
        let registry = SessionRegistry::new(caps(50));
        let t0 = Instant::now();
        let session = registry.open(&Session::ephemeral(), t0).expect("open");
        session.detach(t0);
        // A repeat detach later must not restart the clock.
        session.detach(t0 + Duration::from_millis(40));
        assert_eq!(registry.sweep(t0 + Duration::from_millis(55)).len(), 1);
    }

    #[test]
    fn restored_sessions_carry_pre_restart_detachment_into_the_ttl() {
        let registry = SessionRegistry::new(caps(50));
        let t0 = Instant::now();
        let session = registry.open(&Session::ephemeral(), t0).expect("open");
        let token = session.token.clone().unwrap();
        // Simulate recovery: the session had already been detached for
        // 40ms when the process died; the clock restarts at t0.
        {
            let mut inner = session.inner.lock();
            let restored = SessionInner::restore(
                inner.stats,
                RateWindow::new(),
                None,
                HashMap::new(),
                HashMap::new(),
                inner.next_pid,
                inner.last_seq(),
                Vec::new(),
                Duration::from_millis(40),
                t0,
            );
            *inner = restored;
        }
        // 40ms carried + 20ms live = 60ms > 50ms TTL: swept, even though
        // only 20ms passed since "boot".
        assert_eq!(
            registry.sweep(t0 + Duration::from_millis(20)),
            vec![token.clone()]
        );

        // A resume clears the carry: a fresh detach gets the full TTL.
        let session = registry.open(&Session::ephemeral(), t0).expect("open");
        {
            let mut inner = session.inner.lock();
            *inner = SessionInner::restore(
                inner.stats,
                RateWindow::new(),
                None,
                HashMap::new(),
                HashMap::new(),
                1,
                None,
                Vec::new(),
                Duration::from_millis(40),
                t0,
            );
        }
        let token = session.token.clone().unwrap();
        registry.resume(&token, t0).expect("resume clears carry");
        session.detach(t0 + Duration::from_millis(10));
        assert!(
            registry.sweep(t0 + Duration::from_millis(55)).is_empty(),
            "carry must not outlive the resume that cleared it"
        );
        assert_eq!(registry.sweep(t0 + Duration::from_millis(61)).len(), 1);
    }

    #[test]
    fn seq_guard_claims_replays_and_bounds_its_window() {
        let session = Session::ephemeral();
        let mut inner = session.inner.lock();
        assert!(!inner.is_replay(0));
        inner.settle(
            Billing::Ok {
                cycles: 5,
                energy_fj: 1.0,
            },
            None,
            Some(0),
            &ResponseBody::Scalar(42),
        );
        assert!(inner.is_replay(0));
        assert_eq!(inner.replayed(0), Some(ResponseBody::Scalar(42)));
        assert_eq!(inner.stats.requests, 1);
        // Fill past the window: seq 0 falls out, the newest stay.
        for seq in 1..=(REPLAY_WINDOW as u64) {
            inner.settle(Billing::None, None, Some(seq), &ResponseBody::Pong);
        }
        assert!(inner.is_replay(0), "claimed seqs stay claimed");
        assert_eq!(inner.replayed(0), None, "but the window is bounded");
        assert_eq!(
            inner.replayed(REPLAY_WINDOW as u64),
            Some(ResponseBody::Pong)
        );
        // Replay-window settles bill nothing.
        assert_eq!(inner.stats.requests, 1);
    }

    #[test]
    fn run_history_tracks_success_error_and_totals() {
        use bpimc_core::{MacroConfig, ProgramBuilder};
        let mut bld = ProgramBuilder::new();
        let r = bld.alloc();
        bld.write_to(r, bpimc_core::Precision::P8, vec![1, 2]);
        bld.read(r, bpimc_core::Precision::P8, 2);
        let compiled = bld
            .finish()
            .compile(&MacroConfig::paper_macro())
            .expect("compile");

        let session = Session::ephemeral();
        let mut inner = session.inner.lock();
        inner.stored.insert(
            7,
            StoredEntry::new(Arc::new(compiled), Some("p".into()), Vec::new()),
        );
        inner.names.insert("p".into(), 7);
        assert_eq!(inner.resolve(&StoredTarget::Name("p".into())).unwrap().0, 7);

        inner.settle(
            Billing::Ok {
                cycles: 10,
                energy_fj: 2.0,
            },
            Some(7),
            None,
            &ResponseBody::Ok,
        );
        inner.settle(
            Billing::Error,
            Some(7),
            None,
            &ResponseBody::Error(ErrorBody::generic("bad binding")),
        );
        let entries = inner.program_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].runs, 1);
        assert_eq!(entries[0].errors, 1);
        assert_eq!(entries[0].total_cycles, 10);
        assert_eq!(
            entries[0].last_status,
            Some(RunStatus::Error {
                message: "bad binding".into()
            })
        );
        assert_eq!(
            inner.remove_stored(&StoredTarget::Name("p".into())),
            Some(7)
        );
        assert!(inner.names.is_empty());
        assert!(inner.stored.is_empty());
    }
}
