//! Per-session guardrails: resource limits and their exact metering.
//!
//! The paper's fixed cost model (Table I cycles, Table II energy) is what
//! makes these budgets *exact* rather than heuristic: every request is
//! billed the precise hardware cycles and femtojoules its job consumed
//! (from the executing macro's activity log), and [`RateWindow`] meters
//! those same numbers against the session's per-second budgets. A tenant
//! that exhausts its budget gets a structured `limit_exceeded` error with
//! a retry-after hint instead of degrading every other session.

use bpimc_core::{ErrorBody, LimitKind};
use std::time::{Duration, Instant};

/// The budget window: budgets are per second, metered over tumbling
/// one-second windows.
const WINDOW: Duration = Duration::from_secs(1);

/// Per-session resource limits, enforced before a request touches any
/// array state. All rate/size limits default to `None` (unlimited), so a
/// default-configured server has zero guardrail cost on the hot path.
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Hardware cycles one session may bill per second, metered against
    /// the exact per-request activity accounting.
    pub max_cycles_per_sec: Option<u64>,
    /// Energy (femtojoules) one session may bill per second.
    pub max_energy_fj_per_sec: Option<f64>,
    /// Most requests one connection may have in flight (queued or
    /// executing, response not yet produced) at once.
    pub max_inflight: Option<u64>,
    /// Longest instruction stream accepted by `exec_program` and
    /// `store_program`.
    pub max_program_instrs: Option<usize>,
    /// Stored programs one session may hold at once (`store_program`
    /// beyond this answers `limit_exceeded`; the cache is freed when the
    /// connection drops).
    pub max_stored_programs: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self {
            max_cycles_per_sec: None,
            max_energy_fj_per_sec: None,
            max_inflight: None,
            max_program_instrs: None,
            max_stored_programs: 64,
        }
    }
}

impl SessionLimits {
    /// True when no per-second budget is configured — the admission check
    /// can skip taking a timestamp entirely.
    pub fn unmetered(&self) -> bool {
        self.max_cycles_per_sec.is_none() && self.max_energy_fj_per_sec.is_none()
    }

    /// Checks a submitted program's instruction count.
    ///
    /// # Errors
    ///
    /// A structured `limit_exceeded` naming `program_length`.
    pub fn check_program_len(&self, instrs: usize) -> Result<(), ErrorBody> {
        match self.max_program_instrs {
            Some(max) if instrs > max => Err(ErrorBody::limit(
                LimitKind::ProgramLength,
                None,
                format!("program has {instrs} instructions but the limit is {max}"),
            )),
            _ => Ok(()),
        }
    }
}

/// One session's cycle/energy spend inside the current one-second window.
///
/// `admit` rolls the window and answers whether the session may start
/// another metered request; `charge` adds a finished request's exact
/// cycles/energy. Checks happen **before** execution (so an over-budget
/// session is refused before any array state changes) against work already
/// billed — one request may overshoot the budget, but the overshoot is
/// itself billed, so sustained throughput converges on the budget.
#[derive(Debug)]
pub struct RateWindow {
    start: Instant,
    cycles: u64,
    energy_fj: f64,
}

impl RateWindow {
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            cycles: 0,
            energy_fj: 0.0,
        }
    }

    /// Admission check for one metered request at `now`.
    ///
    /// # Errors
    ///
    /// A structured `limit_exceeded` naming the exhausted budget, with a
    /// retry-after hint of the window's remaining milliseconds.
    pub fn admit(&mut self, limits: &SessionLimits, now: Instant) -> Result<(), ErrorBody> {
        if limits.unmetered() {
            return Ok(());
        }
        let elapsed = now.duration_since(self.start);
        if elapsed >= WINDOW {
            self.start = now;
            self.cycles = 0;
            self.energy_fj = 0.0;
        }
        let retry_ms = || {
            Some(
                WINDOW
                    .saturating_sub(now.duration_since(self.start))
                    .as_millis() as u64,
            )
        };
        if let Some(max) = limits.max_cycles_per_sec {
            if self.cycles >= max {
                return Err(ErrorBody::limit(
                    LimitKind::CycleRate,
                    retry_ms(),
                    format!(
                        "session cycle budget exhausted ({} of {max} cycles this second)",
                        self.cycles
                    ),
                ));
            }
        }
        if let Some(max) = limits.max_energy_fj_per_sec {
            if self.energy_fj >= max {
                return Err(ErrorBody::limit(
                    LimitKind::EnergyRate,
                    retry_ms(),
                    format!(
                        "session energy budget exhausted ({:.1} of {max:.1} fJ this second)",
                        self.energy_fj
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Bills one finished request's exact activity into the window.
    pub fn charge(&mut self, cycles: u64, energy_fj: f64) {
        self.cycles += cycles;
        self.energy_fj += energy_fj;
    }

    /// The window's state for a snapshot: `(age at `now`, cycles,
    /// energy)`. Ages convert to wall-clock offsets outside, where the
    /// caller holds both clocks.
    pub(crate) fn export(&self, now: Instant) -> (Duration, u64, f64) {
        (
            now.saturating_duration_since(self.start),
            self.cycles,
            self.energy_fj,
        )
    }

    /// Rebuilds a window recovered from disk: one that started `age` ago
    /// relative to `now`. A window already past [`WINDOW`] restores
    /// empty — `admit` would roll it on first use anyway — so a restart
    /// neither refills an exhausted in-window budget nor meters stale
    /// spend against a fresh second.
    pub(crate) fn restore(age: Duration, cycles: u64, energy_fj: f64, now: Instant) -> Self {
        if age >= WINDOW {
            return Self {
                start: now,
                cycles: 0,
                energy_fj: 0.0,
            };
        }
        Self {
            start: now.checked_sub(age).unwrap_or(now),
            cycles,
            energy_fj,
        }
    }
}

impl Default for RateWindow {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_core::ErrorKind;

    #[test]
    fn default_limits_are_unmetered() {
        let limits = SessionLimits::default();
        assert!(limits.unmetered());
        assert_eq!(limits.max_stored_programs, 64);
        let mut win = RateWindow::new();
        win.charge(u64::MAX / 2, 1e30);
        assert!(win.admit(&limits, Instant::now()).is_ok());
        assert!(limits.check_program_len(usize::MAX).is_ok());
    }

    #[test]
    fn cycle_budget_trips_and_refills_on_window_roll() {
        let limits = SessionLimits {
            max_cycles_per_sec: Some(100),
            ..SessionLimits::default()
        };
        let mut win = RateWindow::new();
        let t0 = Instant::now();
        assert!(win.admit(&limits, t0).is_ok());
        win.charge(100, 0.0);
        let err = win.admit(&limits, t0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::LimitExceeded);
        assert_eq!(err.limit, Some(LimitKind::CycleRate));
        assert!(err.retry_after_ms.is_some_and(|ms| ms <= 1000));
        // The next window refills the budget.
        assert!(win.admit(&limits, t0 + Duration::from_millis(1001)).is_ok());
        assert_eq!(win.cycles, 0);
    }

    #[test]
    fn energy_budget_trips_independently() {
        let limits = SessionLimits {
            max_energy_fj_per_sec: Some(500.0),
            ..SessionLimits::default()
        };
        let mut win = RateWindow::new();
        win.charge(0, 500.0);
        let err = win.admit(&limits, Instant::now()).unwrap_err();
        assert_eq!(err.limit, Some(LimitKind::EnergyRate));
    }

    #[test]
    fn restore_preserves_live_windows_and_drops_stale_ones() {
        let limits = SessionLimits {
            max_cycles_per_sec: Some(100),
            ..SessionLimits::default()
        };
        let now = Instant::now();
        // A half-spent window restored mid-second still meters the spend.
        let mut win = RateWindow::restore(Duration::from_millis(400), 100, 1.5, now);
        assert_eq!(win.export(now), (Duration::from_millis(400), 100, 1.5));
        assert!(win.admit(&limits, now).is_err(), "budget stays exhausted");
        // …until the window it belonged to actually ends.
        assert!(win.admit(&limits, now + Duration::from_millis(601)).is_ok());
        // A window older than a second restores empty.
        let mut stale = RateWindow::restore(Duration::from_millis(1000), 100, 1.5, now);
        assert!(stale.admit(&limits, now).is_ok());
    }

    #[test]
    fn program_length_limit_names_itself() {
        let limits = SessionLimits {
            max_program_instrs: Some(8),
            ..SessionLimits::default()
        };
        assert!(limits.check_program_len(8).is_ok());
        let err = limits.check_program_len(9).unwrap_err();
        assert_eq!(err.limit, Some(LimitKind::ProgramLength));
    }
}
