//! A multi-client compute service over a shared [`MacroBank`].
//!
//! The paper (like IMAC and X-SRAM) frames an SRAM-IMC macro as a shared
//! accelerator that many workloads time-multiplex. This crate is that
//! serving layer for the reproduction: a dependency-free threaded TCP
//! service (`std::net`, line-delimited JSON — the build image is offline,
//! so no tokio) that accepts concurrent client connections and multiplexes
//! their requests onto one [`MacroBank`].
//!
//! [`MacroBank`]: bpimc_core::MacroBank
//!
//! # Architecture
//!
//! * **One reader thread per connection** parses request lines and pushes
//!   them into the request queue, which keeps one **bounded FIFO per
//!   session** drained **round-robin** — fair scheduling: a client
//!   pipelining thousands of requests cannot starve other sessions, and a
//!   session at its queue share blocks only its own reader (backpressure
//!   propagates to that client through TCP flow control rather than
//!   through dropped or rejected requests).
//! * **One dispatcher thread** drains the queue. Runs of consecutive
//!   *compute* requests (dot products, lane-wise macro ops at P2–P32,
//!   classification, whole `exec_program` pipelines, `run_stored` replays)
//!   become one [`MacroBank::try_run_batch`] call, spreading independent
//!   requests across the bank's macros; control requests (`ping`, `stats`,
//!   `load_model`, `store_program`, `shutdown`) execute inline between
//!   runs, so every session observes its own requests in order.
//! * **Parallel response writers**: responses leave through a bounded
//!   per-connection outbox — written inline while the client keeps up,
//!   handed to the connection's writer thread once a backlog builds, so
//!   fan-out to slow clients never serializes through the dispatcher. A
//!   peer that stops reading is timed out and dropped instead of wedging
//!   anything.
//! * **One execution path**: every arithmetic request is lowered to a
//!   typed [`Program`](bpimc_core::prog::Program) and run by the single
//!   program executor, so wire ops, client pipelines and library callers
//!   share validation, lowering (fused add+shift) and accounting.
//! * **Sessions** hold a loaded classifier model (with its
//!   classify pipeline pre-compiled once into a
//!   [`CompiledProgram`](bpimc_core::CompiledProgram) template), a
//!   *named* stored-program registry (`store_program` validates and
//!   compiles once, optionally under a name; `run_stored` replays by pid
//!   or name with rebound write values and zero per-call validation or
//!   lowering; `list_programs` reports each entry's cumulative run
//!   history; `delete_program` frees a slot), and a
//!   [`SessionActivity`](bpimc_core::SessionActivity) account: every
//!   successful request is billed the exact hardware cycles and femtojoules
//!   its job consumed, measured from the executing macro's activity log.
//! * **Durable sessions**: `open_session` upgrades the connection's
//!   session to a registry-owned object keyed by an unguessable token;
//!   after a connection drop, `resume_session` on a new connection
//!   restores the model, program registry, account and in-window rate
//!   budgets intact. Detached sessions linger under
//!   [`ServerConfig::session_ttl`] and are then garbage-collected by a
//!   sweeper thread (a late resume answers `session_expired`; a forged
//!   token answers `bad_token`), with global caps on sessions and
//!   registry-wide stored programs so orphans cannot exhaust memory. At
//!   most one live connection holds a token at a time. Requests may carry
//!   a per-session `seq` number: a retry of an executed seq replays the
//!   recorded response instead of executing again, so reconnect-and-retry
//!   can never double-execute or double-bill.
//! * **Crash-safe durable state** ([`StateConfig`]): with `state` set,
//!   every state-mutating event (session opens/resumes/detaches, model
//!   loads, program stores/deletes, executed seqs with their responses,
//!   account deltas) appends to a CRC-framed write-ahead journal, fsynced
//!   per [`FsyncPolicy`]; the sweeper thread takes periodic compacting
//!   snapshots (atomic tmp+rename). On boot the server recovers the
//!   newest valid snapshot plus the journal tail — stopping cleanly at
//!   the first torn or corrupt record — and resumes with byte-identical
//!   accounts, recompiled stored programs, restarted TTL clocks, and the
//!   seq replay window intact, so a `kill -9` can never double-bill a
//!   retried request. [`inspect`] (the `repro state` subcommand) audits a
//!   state directory offline. With `state` unset every journal hook is
//!   one `Option` branch: the hot path is unchanged.
//! * **Per-session guardrails** ([`SessionLimits`]): optional per-second
//!   cycle and energy budgets — metered against the same exact accounting
//!   the session is billed, which the paper's fixed cost model makes
//!   precise rather than heuristic — plus an in-flight request cap, a
//!   program-length cap, and the stored-program cap. A request over a
//!   limit answers a structured `limit_exceeded` error naming the limit,
//!   with a retry-after hint, before any array state changes.
//! * **Deadlines**: any request may carry `timeout_ms`; an expired
//!   request is shed from the queue (or abandoned when its job starts)
//!   with a structured `deadline_exceeded` error instead of consuming
//!   macro time.
//! * **Admission control**: when the total queued backlog crosses a
//!   high watermark the server sheds new compute requests with a
//!   structured `overloaded` error (hysteresis: shedding turns off at a
//!   low watermark), instead of only backpressuring readers; control ops
//!   (`ping`, `stats`) are always admitted so health checks survive
//!   overload.
//! * **Chaos harness** ([`FaultPlan`]): a seeded, deterministic schedule
//!   of injected worker panics, delayed executions, stalled response
//!   writers and mid-request connection drops — a pure function of
//!   `(seed, connection, request)`, so tests can predict every fault and
//!   assert exact accounting under fire. Replaces the old boolean
//!   `fault_injection` flag; `inject_panic` requests are honoured when
//!   the plan's `inject_panic_op` is set.
//! * **Panic containment**: a request that panics its job (a bug, an
//!   injected chaos panic, or `inject_panic`) gets an error response;
//!   sibling requests in the same batch, other sessions, and the worker
//!   pool are unaffected.
//! * **Client resilience**: [`Client`] surfaces `overloaded` /
//!   `limit_exceeded` / `deadline_exceeded` as typed errors, and can be
//!   given a [`RetryPolicy`] to reconnect with capped exponential backoff.
//!   With a durable session open, the client stamps every request with a
//!   seq number, auto-resumes its session inside the reconnect path, and
//!   safely retries *all* seq-guarded ops across transport errors — not
//!   just idempotent read-only ones.
//! * **Graceful shutdown** (client `shutdown` op or
//!   [`ServerHandle::shutdown`]): the listener stops accepting, queued
//!   requests drain and get responses, then connections close and all
//!   threads join.
//!
//! # Examples
//!
//! ```
//! use bpimc_server::{Client, Server, ServerConfig};
//! use bpimc_core::Precision;
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let dot = client
//!     .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
//!     .unwrap();
//! assert_eq!(dot, 1 * 4 + 2 * 5 + 3 * 6);
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.requests, 1);
//! assert!(stats.cycles > 0);
//! drop(client);
//! handle.shutdown();
//! ```

mod client;
mod exec;
mod fault;
mod guard;
#[cfg(feature = "model")]
pub mod models;
mod persist;
mod server;
mod session;

pub use client::{Client, ClientError, RetryPolicy};
pub use fault::{ComputeFault, FaultPlan, ResponseFault};
pub use guard::SessionLimits;
pub use persist::{
    inspect, Corruption, FileReport, FsyncPolicy, SessionSummary, StateConfig, StateReport,
};
pub use server::{Server, ServerConfig, ServerHandle};
