//! Concurrency models for the serving stack (`model` feature).
//!
//! Each [`ModelSpec`] drives the **production** [`Queue`] / [`Outbox`]
//! protocol objects — the same waits, wakeups, shed hysteresis and
//! drainer-role hand-offs the server runs — inside a deterministic model
//! execution, with an in-memory [`ResponseSink`] standing in for the TCP
//! peer. Harness bookkeeping (counters, transcripts) deliberately uses
//! `std` primitives so it observes the schedule without perturbing it.
//!
//! Run via `cargo test --features model` (the root `concurrency_models`
//! test) or `repro model-check`; replay any failure with the printed seed.

use crate::guard::{RateWindow, SessionLimits};
use crate::server::{Outbox, Queue, ResponseSink};
use bpimc_stats::sync::model::ModelSpec;
use bpimc_stats::sync::thread;
use bpimc_stats::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// In-memory peer: records every drained buffer, never blocks. The model
/// analogue of a healthy client socket.
#[derive(Default)]
struct MemPeer {
    written: std::sync::Mutex<String>,
    severed: AtomicBool,
}

impl ResponseSink for MemPeer {
    fn write_all(&self, buf: &[u8]) -> bool {
        let mut written = self.written.lock().expect("harness lock");
        written.push_str(std::str::from_utf8(buf).expect("responses are UTF-8"));
        true
    }

    fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
    }
}

/// Per-session FIFO order survives the round-robin drain and shed
/// refusals: with two sessions pushing concurrently into one-slot shares
/// (so producers hit the `not_full` wait) and shed admission racing the
/// drain, each session's items still pop in submission order.
fn queue_session_fifo_survives_round_robin() {
    const PER_CONN: u64 = 3;
    const CONNS: u64 = 2;
    let queue = Arc::new(Queue::new(1, 3, 1));
    let producers: Vec<_> = (1..=CONNS)
        .map(|conn| {
            let queue = queue.clone();
            thread::spawn(move || {
                for seq in 0..PER_CONN {
                    // A shed refusal still rides the queue (as an error
                    // item in production), keeping its FIFO slot.
                    let refused = queue.should_shed();
                    queue
                        .push(conn, (conn, seq, refused))
                        .expect("queue open while producing");
                }
            })
        })
        .collect();
    let mut seen: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut total = 0usize;
    while total < (CONNS * PER_CONN) as usize {
        let batch = queue.pop_batch(2).expect("queue open while draining");
        for (conn, seq, _refused) in batch {
            seen.entry(conn).or_default().push(seq);
            total += 1;
        }
    }
    for p in producers {
        p.join().expect("producer exits");
    }
    queue.close();
    assert!(
        queue.pop_batch(4).is_none(),
        "a closed, drained queue reports None"
    );
    for (conn, seqs) in seen {
        assert_eq!(
            seqs,
            (0..PER_CONN).collect::<Vec<_>>(),
            "session {conn} must observe its own requests in order"
        );
    }
}

/// Drain-then-stop shutdown terminates from every explored schedule, and
/// every successfully enqueued item is drained before the consumer sees
/// `None` — queued work always gets responses before shutdown completes.
fn queue_drain_then_stop_shutdown() {
    const PER_CONN: u64 = 3;
    let queue = Arc::new(Queue::<u64>::new(2, 100, 50));
    let pushed_ok = Arc::new(AtomicUsize::new(0));
    let producers: Vec<_> = (1..=2u64)
        .map(|conn| {
            let queue = queue.clone();
            let pushed_ok = pushed_ok.clone();
            thread::spawn(move || {
                for seq in 0..PER_CONN {
                    if queue.push(conn, seq).is_err() {
                        break; // shutdown refused the rest of the stream
                    }
                    pushed_ok.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    let closer = {
        let queue = queue.clone();
        thread::spawn(move || queue.close())
    };
    let mut drained = 0usize;
    while let Some(batch) = queue.pop_batch(2) {
        drained += batch.len();
    }
    for p in producers {
        p.join().expect("producer exits");
    }
    closer.join().expect("closer exits");
    assert_eq!(
        drained,
        pushed_ok.load(Ordering::SeqCst),
        "every accepted item must drain before shutdown completes"
    );
}

/// The outbox never drops or reorders a response: a producer pushing more
/// lines than the backlog capacity (so it blocks on `not_full`) and a
/// writer thread racing for the drainer role still deliver every line,
/// in order, exactly once.
fn outbox_never_drops_or_reorders() {
    const LINES: usize = 5;
    let outbox = Arc::new(Outbox::new(2));
    let peer = Arc::new(MemPeer::default());
    let writer = {
        let outbox = outbox.clone();
        let peer = peer.clone();
        thread::spawn(move || {
            while let Some(state) = outbox.claim_backlog() {
                outbox.drain(peer.as_ref(), state);
            }
        })
    };
    for i in 0..LINES {
        outbox.expect_response();
        outbox.push_line(peer.as_ref(), format!("{i}\n"));
    }
    outbox.no_more_requests();
    writer
        .join()
        .expect("writer exits once the backlog is settled");
    let written = peer.written.lock().expect("harness lock").clone();
    let expected: String = (0..LINES).map(|i| format!("{i}\n")).collect();
    assert_eq!(
        written, expected,
        "responses must arrive complete and in production order"
    );
    assert!(
        !peer.severed.load(Ordering::SeqCst),
        "a healthy peer is never severed"
    );
}

/// Budget metering never double-bills (or loses a charge) under
/// contention: two sessions' worth of racing requests against one shared
/// window admit exactly budget/cost requests — fewer means a charge was
/// applied twice, more means one was lost.
fn rate_window_never_double_bills() {
    const COST: u64 = 10;
    const BUDGET: u64 = 40;
    let limits = SessionLimits {
        max_cycles_per_sec: Some(BUDGET),
        ..SessionLimits::default()
    };
    let window = Arc::new(Mutex::named("server.conn.session", RateWindow::new()));
    let t0 = Instant::now();
    let admitted = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let window = window.clone();
            let admitted = admitted.clone();
            thread::spawn(move || {
                for _ in 0..3 {
                    let mut win = window.lock();
                    if win.admit(&limits, t0).is_ok() {
                        win.charge(COST, 0.0);
                        admitted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker exits");
    }
    assert_eq!(
        admitted.load(Ordering::SeqCst) as u64,
        BUDGET / COST,
        "exactly budget/cost requests admit in one window"
    );
    assert!(
        window.lock().admit(&limits, t0).is_err(),
        "the exhausted budget stays visible"
    );
}

/// The serving stack's model suite, in the shape `repro model-check` and
/// the root `concurrency_models` test both consume.
pub const MODELS: &[ModelSpec] = &[
    ModelSpec {
        name: "server-queue-session-fifo",
        invariant: "per-session FIFO order survives round-robin drain and shed refusals",
        run: queue_session_fifo_survives_round_robin,
    },
    ModelSpec {
        name: "server-queue-drain-then-stop",
        invariant: "shutdown drains every accepted item, then terminates, in every schedule",
        run: queue_drain_then_stop_shutdown,
    },
    ModelSpec {
        name: "server-outbox-no-drop-no-reorder",
        invariant: "the outbox delivers every response exactly once, in order, under backpressure",
        run: outbox_never_drops_or_reorders,
    },
    ModelSpec {
        name: "server-rate-window-no-double-billing",
        invariant: "budget metering admits exactly budget/cost racing requests per window",
        run: rate_window_never_double_bills,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_stats::sync::model::{check, ExploreConfig};

    #[test]
    fn server_models_hold_across_the_default_matrix() {
        let cfg = ExploreConfig::from_env(8);
        for spec in MODELS {
            check(spec.name, &cfg, spec.run);
        }
    }
}
