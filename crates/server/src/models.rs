//! Concurrency models for the serving stack (`model` feature).
//!
//! Each [`ModelSpec`] drives the **production** [`Queue`] / [`Outbox`]
//! protocol objects — the same waits, wakeups, shed hysteresis and
//! drainer-role hand-offs the server runs — inside a deterministic model
//! execution, with an in-memory [`ResponseSink`] standing in for the TCP
//! peer. Harness bookkeeping (counters, transcripts) deliberately uses
//! `std` primitives so it observes the schedule without perturbing it.
//!
//! Run via `cargo test --features model` (the root `concurrency_models`
//! test) or `repro model-check`; replay any failure with the printed seed.

use crate::guard::{RateWindow, SessionLimits};
use crate::server::{Outbox, Queue, ResponseSink};
use crate::session::{Billing, RegistryCaps, Session, SessionRegistry};
use bpimc_core::{ErrorKind, ResponseBody};
use bpimc_stats::sync::model::ModelSpec;
use bpimc_stats::sync::thread;
use bpimc_stats::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// In-memory peer: records every drained buffer, never blocks. The model
/// analogue of a healthy client socket.
#[derive(Default)]
struct MemPeer {
    written: std::sync::Mutex<String>,
    severed: AtomicBool,
}

impl ResponseSink for MemPeer {
    fn write_all(&self, buf: &[u8]) -> bool {
        let mut written = self.written.lock().expect("harness lock");
        written.push_str(std::str::from_utf8(buf).expect("responses are UTF-8"));
        true
    }

    fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
    }
}

/// Per-session FIFO order survives the round-robin drain and shed
/// refusals: with two sessions pushing concurrently into one-slot shares
/// (so producers hit the `not_full` wait) and shed admission racing the
/// drain, each session's items still pop in submission order.
fn queue_session_fifo_survives_round_robin() {
    const PER_CONN: u64 = 3;
    const CONNS: u64 = 2;
    let queue = Arc::new(Queue::new(1, 3, 1));
    let producers: Vec<_> = (1..=CONNS)
        .map(|conn| {
            let queue = queue.clone();
            thread::spawn(move || {
                for seq in 0..PER_CONN {
                    // A shed refusal still rides the queue (as an error
                    // item in production), keeping its FIFO slot.
                    let refused = queue.should_shed();
                    queue
                        .push(conn, (conn, seq, refused))
                        .expect("queue open while producing");
                }
            })
        })
        .collect();
    let mut seen: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut total = 0usize;
    while total < (CONNS * PER_CONN) as usize {
        let batch = queue.pop_batch(2).expect("queue open while draining");
        for (conn, seq, _refused) in batch {
            seen.entry(conn).or_default().push(seq);
            total += 1;
        }
    }
    for p in producers {
        p.join().expect("producer exits");
    }
    queue.close();
    assert!(
        queue.pop_batch(4).is_none(),
        "a closed, drained queue reports None"
    );
    for (conn, seqs) in seen {
        assert_eq!(
            seqs,
            (0..PER_CONN).collect::<Vec<_>>(),
            "session {conn} must observe its own requests in order"
        );
    }
}

/// Drain-then-stop shutdown terminates from every explored schedule, and
/// every successfully enqueued item is drained before the consumer sees
/// `None` — queued work always gets responses before shutdown completes.
fn queue_drain_then_stop_shutdown() {
    const PER_CONN: u64 = 3;
    let queue = Arc::new(Queue::<u64>::new(2, 100, 50));
    let pushed_ok = Arc::new(AtomicUsize::new(0));
    let producers: Vec<_> = (1..=2u64)
        .map(|conn| {
            let queue = queue.clone();
            let pushed_ok = pushed_ok.clone();
            thread::spawn(move || {
                for seq in 0..PER_CONN {
                    if queue.push(conn, seq).is_err() {
                        break; // shutdown refused the rest of the stream
                    }
                    pushed_ok.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    let closer = {
        let queue = queue.clone();
        thread::spawn(move || queue.close())
    };
    let mut drained = 0usize;
    while let Some(batch) = queue.pop_batch(2) {
        drained += batch.len();
    }
    for p in producers {
        p.join().expect("producer exits");
    }
    closer.join().expect("closer exits");
    assert_eq!(
        drained,
        pushed_ok.load(Ordering::SeqCst),
        "every accepted item must drain before shutdown completes"
    );
}

/// The outbox never drops or reorders a response: a producer pushing more
/// lines than the backlog capacity (so it blocks on `not_full`) and a
/// writer thread racing for the drainer role still deliver every line,
/// in order, exactly once.
fn outbox_never_drops_or_reorders() {
    const LINES: usize = 5;
    let outbox = Arc::new(Outbox::new(2));
    let peer = Arc::new(MemPeer::default());
    let writer = {
        let outbox = outbox.clone();
        let peer = peer.clone();
        thread::spawn(move || {
            while let Some(state) = outbox.claim_backlog() {
                outbox.drain(peer.as_ref(), state);
            }
        })
    };
    for i in 0..LINES {
        outbox.expect_response();
        outbox.push_line(peer.as_ref(), format!("{i}\n"));
    }
    outbox.no_more_requests();
    writer
        .join()
        .expect("writer exits once the backlog is settled");
    let written = peer.written.lock().expect("harness lock").clone();
    let expected: String = (0..LINES).map(|i| format!("{i}\n")).collect();
    assert_eq!(
        written, expected,
        "responses must arrive complete and in production order"
    );
    assert!(
        !peer.severed.load(Ordering::SeqCst),
        "a healthy peer is never severed"
    );
}

/// Budget metering never double-bills (or loses a charge) under
/// contention: two sessions' worth of racing requests against one shared
/// window admit exactly budget/cost requests — fewer means a charge was
/// applied twice, more means one was lost.
fn rate_window_never_double_bills() {
    const COST: u64 = 10;
    const BUDGET: u64 = 40;
    let limits = SessionLimits {
        max_cycles_per_sec: Some(BUDGET),
        ..SessionLimits::default()
    };
    let window = Arc::new(Mutex::named("server.session.inner", RateWindow::new()));
    let t0 = Instant::now();
    let admitted = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let window = window.clone();
            let admitted = admitted.clone();
            thread::spawn(move || {
                for _ in 0..3 {
                    let mut win = window.lock();
                    if win.admit(&limits, t0).is_ok() {
                        win.charge(COST, 0.0);
                        admitted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker exits");
    }
    assert_eq!(
        admitted.load(Ordering::SeqCst) as u64,
        BUDGET / COST,
        "exactly budget/cost requests admit in one window"
    );
    assert!(
        window.lock().admit(&limits, t0).is_err(),
        "the exhausted budget stays visible"
    );
}

/// Registry sizing for the session models: room to spare, so only the
/// modelled race — never an incidental cap — decides the outcome.
fn model_caps(ttl: Duration) -> RegistryCaps {
    RegistryCaps {
        ttl,
        max_sessions: 4,
        max_programs: 16,
    }
}

/// A dying reader's detach racing a reconnecting client's resume hands
/// the session to **exactly one** holder in every schedule: a resume that
/// beats the detach is busy-refused (with a retry hint) and succeeds once
/// the detach lands; a resume that loses blocks nothing and leaves the
/// session attached for the new connection. The session itself survives
/// either way.
fn session_resume_vs_drain_exclusive() {
    let registry = Arc::new(SessionRegistry::new(model_caps(Duration::from_secs(60))));
    let now = Instant::now();
    let session = registry
        .open(&Session::ephemeral(), now)
        .expect("registry has room");
    let token = session
        .token
        .clone()
        .expect("durable sessions carry a token");
    // T1: the old connection's reader exits and lets go of the session.
    let drainer = {
        let session = session.clone();
        thread::spawn(move || session.detach(now))
    };
    // T2: the reconnecting client races the detach with one resume.
    let racer = {
        let registry = registry.clone();
        let token = token.clone();
        thread::spawn(move || registry.resume(&token, now).is_ok())
    };
    let raced_in = racer.join().expect("racer exits");
    drainer.join().expect("drainer exits");
    let second = registry.resume(&token, now).map(|_| ());
    match (raced_in, &second) {
        // The racer attached; any further resume must be busy-refused.
        (true, Err(err)) => assert!(
            err.retry_after_ms.is_some(),
            "a busy refusal carries a retry hint: {err:?}"
        ),
        // The racer was busy-refused; after the detach the session is
        // free, so the retry attaches cleanly.
        (false, Ok(())) => {}
        _ => panic!("attach must be exclusive: raced_in={raced_in}, second={second:?}"),
    }
    assert_eq!(registry.len(), 1, "the session survives the race");
}

/// The per-session seq guard makes delivery exactly-once under races: an
/// original execution and a post-reconnect resend of the same logical
/// request (same seq) settle **one** bill in every schedule — the loser
/// observes the claimed seq and answers from the replay window instead of
/// executing again.
fn session_seq_guard_never_double_bills() {
    const COST: u64 = 7;
    const SEQ: u64 = 0;
    let session = Session::ephemeral();
    let billed = Arc::new(AtomicUsize::new(0));
    let attempts: Vec<_> = (0..2)
        .map(|_| {
            let session = session.clone();
            let billed = billed.clone();
            thread::spawn(move || {
                // One delivery attempt of the same logical request: the
                // replay check and the settle are atomic under the
                // session lock, exactly as the dispatcher does it.
                let mut inner = session.inner.lock();
                if inner.is_replay(SEQ) {
                    assert!(
                        inner.replayed(SEQ).is_some(),
                        "a claimed seq answers from the replay window"
                    );
                } else {
                    inner.settle(
                        Billing::Ok {
                            cycles: COST,
                            energy_fj: 1.0,
                        },
                        None,
                        Some(SEQ),
                        &ResponseBody::Ok,
                    );
                    billed.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for a in attempts {
        a.join().expect("attempt exits");
    }
    let inner = session.inner.lock();
    assert_eq!(
        billed.load(Ordering::SeqCst),
        1,
        "exactly one attempt executes"
    );
    assert_eq!(inner.stats.requests, 1, "the account sees one request");
    assert_eq!(inner.stats.cycles, COST, "the op is billed exactly once");
    assert_eq!(
        inner.last_seq(),
        Some(SEQ),
        "the seq watermark advanced once"
    );
}

/// The TTL sweeper racing a resume of the same expired session resolves
/// exclusively in every schedule: either the resume wins (the session
/// attaches and the sweep must spare it) or the sweep wins (the session
/// is collected and the resume answers `session_expired`) — never both,
/// and the registry count agrees with whichever happened.
fn session_gc_vs_resume_exclusive() {
    // A zero TTL makes the detached session collectible immediately.
    let registry = Arc::new(SessionRegistry::new(model_caps(Duration::ZERO)));
    let now = Instant::now();
    let session = registry
        .open(&Session::ephemeral(), now)
        .expect("registry has room");
    let token = session
        .token
        .clone()
        .expect("durable sessions carry a token");
    session.detach(now);
    let sweeper = {
        let registry = registry.clone();
        thread::spawn(move || registry.sweep(now))
    };
    let resumer = {
        let registry = registry.clone();
        let token = token.clone();
        thread::spawn(move || registry.resume(&token, now).map(|_| ()))
    };
    let swept = sweeper.join().expect("sweeper exits");
    let resumed = resumer.join().expect("resumer exits");
    match resumed {
        Ok(()) => {
            assert!(swept.is_empty(), "a resumed session is never collected");
            assert_eq!(registry.len(), 1, "the resumed session stays registered");
        }
        Err(err) => {
            assert_eq!(
                err.kind,
                ErrorKind::SessionExpired,
                "a swept token answers session_expired: {err:?}"
            );
            assert_eq!(
                swept,
                vec![token],
                "the losing resume implies the sweep collected it"
            );
            assert_eq!(registry.len(), 0, "the collected session is gone");
        }
    }
}

/// The write-ahead journal agrees with the live registry in every
/// schedule of the sweep / resume race: both racers append their events
/// under the persist lock exactly as the server does (lock, mutate,
/// append — one atomic unit), and replaying the journal through
/// [`apply_event`](crate::persist::apply_event) reconstructs whichever
/// outcome the schedule picked. A schedule where the journal could
/// record an Expire for a session the resume kept (or vice versa) would
/// mean a crash right there recovers the wrong registry.
fn journal_vs_gc_vs_resume_consistent() {
    use crate::persist::{apply_event, Event, RegistryRecord, SessionRecord};
    let registry = Arc::new(SessionRegistry::new(model_caps(Duration::ZERO)));
    let now = Instant::now();
    let session = registry
        .open(&Session::ephemeral(), now)
        .expect("registry has room");
    let token = session
        .token
        .clone()
        .expect("durable sessions carry a token");
    session.detach(now);
    // The journal as the server writes it, seeded with the events that
    // built the live state above. The persist lock is outermost, so
    // taking the registry lock inside it is the production lock order.
    let journal = Arc::new(Mutex::named(
        "server.persist.journal",
        vec![
            Event::Open {
                token: token.clone(),
                record: Box::new(SessionRecord::empty(token.clone())),
            },
            Event::Detach {
                token: token.clone(),
                unix_ms: 0,
            },
        ],
    ));
    let sweeper = {
        let registry = registry.clone();
        let journal = journal.clone();
        thread::spawn(move || {
            let mut journal = journal.lock();
            for t in registry.sweep(now) {
                journal.push(Event::Expire { token: t });
            }
        })
    };
    let resumer = {
        let registry = registry.clone();
        let journal = journal.clone();
        let token = token.clone();
        thread::spawn(move || {
            let mut journal = journal.lock();
            let attached = registry.resume(&token, now).is_ok();
            if attached {
                journal.push(Event::Attach { token });
            }
            attached
        })
    };
    let attached = resumer.join().expect("resumer exits");
    sweeper.join().expect("sweeper exits");
    let mut replayed = RegistryRecord::default();
    for ev in journal.lock().iter() {
        apply_event(&mut replayed, ev);
    }
    let recovered = replayed.sessions.iter().find(|s| s.token == token);
    if attached {
        assert_eq!(registry.len(), 1, "the resume kept the session live");
        let rec = recovered.expect("the journal preserves the resumed session");
        assert!(
            rec.detached_since_ms.is_none(),
            "the Attach event cleared the recorded TTL clock"
        );
        assert!(replayed.expired.is_empty(), "nothing was collected");
    } else {
        assert_eq!(registry.len(), 0, "the sweep collected the session");
        assert!(
            recovered.is_none(),
            "the journal must not resurrect a collected session"
        );
        assert_eq!(
            replayed.expired,
            vec![token],
            "the Expire event landed in the journal"
        );
    }
}

/// The serving stack's model suite, in the shape `repro model-check` and
/// the root `concurrency_models` test both consume.
pub const MODELS: &[ModelSpec] = &[
    ModelSpec {
        name: "server-queue-session-fifo",
        invariant: "per-session FIFO order survives round-robin drain and shed refusals",
        run: queue_session_fifo_survives_round_robin,
    },
    ModelSpec {
        name: "server-queue-drain-then-stop",
        invariant: "shutdown drains every accepted item, then terminates, in every schedule",
        run: queue_drain_then_stop_shutdown,
    },
    ModelSpec {
        name: "server-outbox-no-drop-no-reorder",
        invariant: "the outbox delivers every response exactly once, in order, under backpressure",
        run: outbox_never_drops_or_reorders,
    },
    ModelSpec {
        name: "server-rate-window-no-double-billing",
        invariant: "budget metering admits exactly budget/cost racing requests per window",
        run: rate_window_never_double_bills,
    },
    ModelSpec {
        name: "server-session-resume-vs-drain",
        invariant: "a resume racing a reader's detach attaches exactly one holder, never two",
        run: session_resume_vs_drain_exclusive,
    },
    ModelSpec {
        name: "server-session-seq-no-double-billing",
        invariant: "an original and its seq-stamped resend settle exactly one bill",
        run: session_seq_guard_never_double_bills,
    },
    ModelSpec {
        name: "server-session-gc-vs-resume",
        invariant: "a sweep racing a resume resolves exclusively: attach or session_expired",
        run: session_gc_vs_resume_exclusive,
    },
    ModelSpec {
        name: "server-journal-vs-gc-vs-resume",
        invariant: "journal replay reconstructs the live registry in every sweep/resume schedule",
        run: journal_vs_gc_vs_resume_consistent,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_stats::sync::model::{check, ExploreConfig};

    #[test]
    fn server_models_hold_across_the_default_matrix() {
        let cfg = ExploreConfig::from_env(8);
        for spec in MODELS {
            check(spec.name, &cfg, spec.run);
        }
    }
}
