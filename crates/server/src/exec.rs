//! Executes one compute request on one macro, with exact per-request
//! cycle/energy accounting.
//!
//! Every arithmetic request — `dot`, the lane-wise ops, `classify`'s dots
//! and `exec_program` itself — is lowered to a [`Program`] and run by the
//! single program executor ([`Program::run`]), so there is exactly one
//! execution path from the wire to the array.

use crate::fault::ComputeFault;
use bpimc_core::prog::{CompiledProgram, Instr, Program, ProgramBuilder};
use bpimc_core::{
    ErrorBody, ImcMacro, LaneOp, LimitKind, Precision, ProgramReport, RequestBody, ResponseBody,
};
use bpimc_metrics::EnergyParams;
use bpimc_nn::{chunks_per_class, classify_bindings, classify_from_outputs, imc_dot};
use std::sync::Arc;
use std::time::Instant;

/// A classifier model loaded into a session by `load_model`.
#[derive(Debug)]
pub(crate) struct Model {
    /// Lane width the prototypes are quantized to.
    pub precision: Precision,
    /// One quantized weight vector per class.
    pub prototypes_q: Vec<Vec<u64>>,
    /// Precomputed `|w_c|^2` self-dots (computed on a macro at load time,
    /// billed to the `load_model` request).
    pub norms: Vec<u64>,
    /// The fused all-prototypes classify program, validated and lowered
    /// once at `load_model`; per request only the sample's chunks are
    /// rebound ([`CompiledProgram::run_with_inputs`]).
    pub template: CompiledProgram,
}

/// One queued compute request, ready to run on whichever macro claims it.
///
/// Session state the request depends on (the classifier model, the stored
/// program) is snapshotted at job-build time (`Arc` clones), so a
/// `load_model`/`store_program` earlier in the same drained batch is
/// visible and a concurrent change from the same session cannot race the
/// job.
pub(crate) struct ComputeJob {
    pub body: RequestBody,
    pub model: Option<Arc<Model>>,
    pub stored: Option<Arc<CompiledProgram>>,
    /// The request's deadline, re-checked when the job starts: a request
    /// whose deadline passed while earlier batch work ran is abandoned
    /// before touching any array state (the mid-execution half of
    /// cooperative cancellation; the in-queue half lives in the
    /// dispatcher).
    pub deadline: Option<Instant>,
    /// Guardrail: longest accepted `exec_program` instruction stream.
    pub max_program_instrs: Option<usize>,
    /// Chaos: fault injected into this job's execution, if any.
    pub fault: Option<ComputeFault>,
    /// Honour an explicit `inject_panic` request.
    pub inject_panic_allowed: bool,
    /// Run [`Program::optimize`] on `exec_program` streams before
    /// executing ([`crate::ServerConfig::optimize_programs`]).
    pub optimize: bool,
}

/// True for request kinds that run on a macro via the batched executor.
pub(crate) fn is_compute(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::Dot { .. }
            | RequestBody::Lanes { .. }
            | RequestBody::Classify { .. }
            | RequestBody::ExecProgram { .. }
            | RequestBody::RunStored { .. }
            | RequestBody::InjectPanic
    )
}

/// Runs one compute job with activity capture: the macro's log is cleared
/// before and after, so the returned `(cycles, energy_fj)` are exactly this
/// request's hardware work and the bank's logs stay bounded no matter how
/// long the server runs.
///
/// The deadline re-check and any injected chaos fault fire here, on the
/// worker thread, **before** `compute_body` touches the array — an
/// expired or panicked job leaves the macro's state and activity log
/// untouched for the next claimant.
pub(crate) fn run_compute(
    mac: &mut ImcMacro,
    job: &ComputeJob,
    params: &EnergyParams,
) -> (Result<ResponseBody, ErrorBody>, u64, f64) {
    if job
        .deadline
        .is_some_and(|deadline| Instant::now() >= deadline)
    {
        return (
            Err(ErrorBody::deadline(
                "deadline expired mid-batch, before this request started executing",
            )),
            0,
            0.0,
        );
    }
    match job.fault {
        Some(ComputeFault::Panic) => panic!("injected chaos fault (worker panic)"),
        Some(ComputeFault::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
    mac.clear_activity();
    let out = compute_body(mac, job, params);
    let cycles = mac.activity().total_cycles();
    let energy_fj = params.log_energy_fj(mac.activity());
    mac.clear_activity();
    (out, cycles, energy_fj)
}

/// Multiplication (and therefore dot/classify) needs `2P`-bit product
/// lanes; rejects precisions too wide for the macro's row.
pub(crate) fn check_product_lanes(precision: Precision, cols: usize) -> Result<(), String> {
    if 2 * precision.bits() > cols {
        return Err(format!(
            "precision {} needs {}-bit product lanes but the macro has {cols} columns",
            precision.bits(),
            2 * precision.bits(),
        ));
    }
    Ok(())
}

fn check_words_fit(name: &str, words: &[u64], precision: Precision) -> Result<(), String> {
    match words.iter().find(|&&w| w > precision.max_value()) {
        Some(&w) => Err(format!(
            "'{name}' value {w} does not fit {} bits",
            precision.bits()
        )),
        None => Ok(()),
    }
}

fn compute_body(
    mac: &mut ImcMacro,
    job: &ComputeJob,
    params: &EnergyParams,
) -> Result<ResponseBody, ErrorBody> {
    match &job.body {
        RequestBody::Dot { precision, x, w } => {
            if x.len() != w.len() {
                return Err(
                    format!("'x' ({}) and 'w' ({}) differ in length", x.len(), w.len()).into(),
                );
            }
            check_words_fit("x", x, *precision)?;
            check_words_fit("w", w, *precision)?;
            check_product_lanes(*precision, mac.cols())?;
            Ok(ResponseBody::Scalar(imc_dot(mac, *precision, x, w)))
        }
        RequestBody::Lanes {
            op,
            precision,
            a,
            b,
        } => {
            if a.len() != b.len() {
                return Err(
                    format!("'a' ({}) and 'b' ({}) differ in length", a.len(), b.len()).into(),
                );
            }
            check_words_fit("a", a, *precision)?;
            check_words_fit("b", b, *precision)?;
            let prog = lanes_program(*op, *precision, a, b, mac.cols())?;
            let run = prog.run(mac).map_err(|e| ErrorBody::from(&e))?;
            Ok(ResponseBody::Words(run.outputs.concat()))
        }
        RequestBody::Classify { x } => {
            let model = job
                .model
                .as_deref()
                .ok_or("no model loaded in this session")?;
            let dim = model.prototypes_q.first().map_or(0, Vec::len);
            if x.len() != dim {
                return Err(format!(
                    "sample has {} features but the model expects {dim}",
                    x.len()
                )
                .into());
            }
            check_words_fit("x", x, model.precision)?;
            // The fused classify template was compiled at `load_model`;
            // rebind just the sample's product-lane chunks (one fused
            // program per call — C dots, one executor trip, zero
            // validation/lowering). Instruction stream, cycles and scores
            // are bit-identical to building the program fresh.
            let classes = model.prototypes_q.len();
            let chunks = chunks_per_class(model.precision, dim, mac.cols());
            let inputs = classify_bindings(model.precision, classes, x, mac.cols());
            let outputs = model
                .template
                .run_outputs(mac, &inputs)
                .map_err(|e| ErrorBody::from(&e))?;
            Ok(ResponseBody::Class(classify_from_outputs(
                &outputs,
                chunks,
                &model.norms,
            )))
        }
        RequestBody::ExecProgram { instrs } => {
            // The program-length guardrail fires before any array state
            // changes — validation and execution never see an over-long
            // stream.
            if let Some(max) = job.max_program_instrs.filter(|&max| instrs.len() > max) {
                return Err(ErrorBody::limit(
                    LimitKind::ProgramLength,
                    None,
                    format!(
                        "program has {} instructions but the limit is {max}",
                        instrs.len()
                    ),
                ));
            }
            let prog = Program::new(instrs.clone());
            // Optimizing an invalid stream would mask the real error, so
            // only valid programs are rewritten (optimize() itself is a
            // no-op on anything it cannot prove safe).
            let prog = if job.optimize && prog.validate(mac.config()).is_ok() {
                prog.optimize()
            } else {
                prog
            };
            let run = prog.run(mac).map_err(|e| ErrorBody::from(&e))?;
            program_report(mac, params, run)
        }
        RequestBody::RunStored { target, inputs } => {
            let compiled = job
                .stored
                .as_deref()
                .ok_or(format!("no {target} in this session"))?;
            let bindings: Vec<Option<&[u64]>> = if inputs.is_empty() {
                vec![None; compiled.write_count()]
            } else {
                inputs.iter().map(|e| e.as_deref()).collect()
            };
            let run = compiled
                .run_with_inputs(mac, &bindings)
                .map_err(|e| ErrorBody::from(&e))?;
            program_report(mac, params, run)
        }
        RequestBody::InjectPanic => {
            if job.inject_panic_allowed {
                panic!("injected fault (inject_panic request)");
            }
            Err("fault injection is disabled on this server".into())
        }
        other => Err(format!("not a compute request: {other:?}").into()),
    }
}

/// Folds a program run into the wire's `program` report, with exact
/// per-instruction energy from the activity-log spans the run recorded —
/// not a per-cycle average. Shared by `exec_program` and `run_stored`.
fn program_report(
    mac: &ImcMacro,
    params: &EnergyParams,
    run: bpimc_core::ProgramRun,
) -> Result<ResponseBody, ErrorBody> {
    let energy_fj = run
        .instr_spans
        .iter()
        .map(|span| params.cycles_energy_fj(&mac.activity().cycles()[span.clone()]))
        .collect();
    Ok(ResponseBody::Program(ProgramReport {
        outputs: run.outputs,
        cycles: run.instr_cycles,
        energy_fj,
    }))
}

/// Lowers one lane-wise two-operand request to a [`Program`], chunked to
/// the macro's lane capacity so vectors longer than one row still execute.
/// Each chunk recycles the same three registers (operand A, operand B,
/// result), so the row budget stays constant regardless of vector length
/// and the emitted instruction stream matches what a direct `ImcMacro`
/// caller would do cycle for cycle.
fn lanes_program(
    op: LaneOp,
    precision: Precision,
    a: &[u64],
    b: &[u64],
    cols: usize,
) -> Result<Program, String> {
    let lanes = match op {
        LaneOp::Mult => {
            check_product_lanes(precision, cols)?;
            precision.product_lanes(cols)
        }
        _ => precision.lanes(cols),
    };
    let mut bld = ProgramBuilder::new();
    let ra = bld.alloc();
    let rb = bld.alloc();
    let rd = bld.alloc();
    for (ac, bc) in a.chunks(lanes).zip(b.chunks(lanes)) {
        match op {
            LaneOp::Mult => {
                bld.write_mult_to(ra, precision, ac.to_vec());
                bld.write_mult_to(rb, precision, bc.to_vec());
                bld.push(Instr::Mult {
                    a: ra,
                    b: rb,
                    dst: rd,
                    precision,
                });
                bld.read_products(rd, precision, ac.len());
            }
            LaneOp::Add | LaneOp::Sub | LaneOp::Logic(_) => {
                bld.write_to(ra, precision, ac.to_vec());
                bld.write_to(rb, precision, bc.to_vec());
                bld.push(match op {
                    LaneOp::Add => Instr::Add {
                        a: ra,
                        b: rb,
                        dst: rd,
                        precision,
                    },
                    LaneOp::Sub => Instr::Sub {
                        a: ra,
                        b: rb,
                        dst: rd,
                        precision,
                    },
                    LaneOp::Logic(l) => Instr::Logic {
                        op: l,
                        a: ra,
                        b: rb,
                        dst: rd,
                    },
                    LaneOp::Mult => unreachable!("handled above"),
                });
                bld.read(rd, precision, ac.len());
            }
        }
    }
    Ok(bld.finish())
}
