//! The threaded TCP service: accept loop, per-connection readers, bounded
//! request queue, the dispatcher that batches onto the `MacroBank`, and
//! the durable-session registry with its TTL sweeper.

use crate::exec::{is_compute, run_compute, ComputeJob, Model};
use crate::fault::{FaultPlan, ResponseFault};
use crate::guard::SessionLimits;
use crate::persist::{self, Event, Persist, StateConfig};
use crate::session::{Billing, RegistryCaps, Session, SessionRegistry, StoredEntry};
use bpimc_core::{
    ErrorBody, ErrorKind, LimitKind, MacroBank, MacroConfig, Program, Request, RequestBody,
    Response, ResponseBody, StoredMeta,
};
use bpimc_metrics::{paper_calibrated_params, EnergyParams};
use bpimc_nn::{classify_program, prototype_norms};
use bpimc_stats::parallel::worker_count;
use bpimc_stats::sync::atomic::{AtomicBool, AtomicU64};
use bpimc_stats::sync::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Macros in the shared bank (defaults to the host's parallelism).
    pub macros: usize,
    /// Bound of each **session's** share of the request queue. A session
    /// that fills its share blocks its own connection reader — the
    /// backpressure lands on the chatty client through TCP flow control —
    /// while other sessions keep queueing and being served.
    pub queue_capacity: usize,
    /// Most requests the dispatcher drains into one bank batch.
    pub batch_max: usize,
    /// The chaos schedule (defaults to [`FaultPlan::none`]; replaces the
    /// old `fault_injection` boolean — use
    /// [`FaultPlan::inject_panic_only`] for that behaviour).
    pub faults: FaultPlan,
    /// Per-session guardrails (defaults to unlimited rates, 64 stored
    /// programs).
    pub limits: SessionLimits,
    /// Socket write timeout: a peer that stops reading for this long
    /// mid-write is treated as gone (its responses are dropped and the
    /// outbox closes) instead of wedging the dispatcher, its writer
    /// thread, or graceful shutdown.
    pub write_timeout: Duration,
    /// Admission control: total queued items at or above this flips the
    /// server into shedding (new compute requests answer `overloaded`;
    /// control ops are always admitted). Must stay below the hard
    /// aggregate bound (`GLOBAL_SHARES` x `queue_capacity`), which still
    /// backstops by blocking readers.
    pub shed_high: usize,
    /// Shedding switches back off once total queued items drain to this
    /// (hysteresis, so the server does not flap at the boundary).
    pub shed_low: usize,
    /// Run [`Program::optimize`] on `store_program` / `exec_program`
    /// streams before compiling them (off by default). The optimizer is
    /// semantics-preserving — identical output bits, cycles no worse —
    /// but per-instruction accounting and `run_stored` input slots follow
    /// the optimized stream, so clients opt in via the operator.
    pub optimize_programs: bool,
    /// How long a detached durable session (its connection dropped, no
    /// resume yet) lingers before the sweeper garbage-collects it.
    pub session_ttl: Duration,
    /// Most durable sessions — attached or detached — the registry holds
    /// at once; `open_session` past this answers `limit_exceeded`
    /// (`sessions`).
    pub max_sessions: usize,
    /// Global cap on stored programs summed across every durable session
    /// (`limit_exceeded` naming `registry_programs`) — so orphaned
    /// sessions each under the per-session cap cannot together exhaust
    /// server memory while they wait out the TTL.
    pub max_registry_programs: usize,
    /// Crash-safe durable state (`--state-dir`): `Some` journals every
    /// durable-session mutation to disk, snapshots periodically, and
    /// recovers both at the next boot. `None` (the default) keeps all
    /// state in memory with zero persistence cost on the serving path.
    pub state: Option<StateConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let macros = worker_count(usize::MAX);
        let queue_capacity = 1024;
        Self {
            macros,
            queue_capacity,
            batch_max: (16 * macros.max(1)).max(64),
            faults: FaultPlan::none(),
            limits: SessionLimits::default(),
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            shed_high: GLOBAL_SHARES * queue_capacity * 3 / 4,
            shed_low: GLOBAL_SHARES * queue_capacity / 2,
            optimize_programs: false,
            session_ttl: DEFAULT_SESSION_TTL,
            max_sessions: 1024,
            max_registry_programs: 4096,
            state: None,
        }
    }
}

impl ServerConfig {
    /// Rescales the shed watermarks to a new queue capacity (3/4 and 1/2
    /// of the hard aggregate bound) — call after changing
    /// `queue_capacity` unless you set the watermarks yourself.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self.shed_high = GLOBAL_SHARES * capacity * 3 / 4;
        self.shed_low = GLOBAL_SHARES * capacity / 2;
        self
    }
}

/// Responses one connection's outbox buffers before the dispatcher blocks
/// on that connection (the bounded hand-off to its writer thread).
const OUTBOX_CAPACITY: usize = 256;

/// Default for [`ServerConfig::write_timeout`].
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default for [`ServerConfig::session_ttl`]: long enough to ride out any
/// realistic reconnect backoff, short enough that orphaned sessions never
/// pile up meaningfully.
const DEFAULT_SESSION_TTL: Duration = Duration::from_secs(60);

/// A response write stalling at least this long marks its connection
/// `slow` (sticky): later responses always go through the connection's
/// writer thread instead of the inline fast path, so a peer that reads
/// sluggishly can stall the dispatcher at most once. Only writes whose
/// *throughput* is also under [`SLOW_PEER_BYTES_PER_SEC`] count — a large
/// coalesced drain to a healthy bandwidth-limited peer is not a stall.
const SLOW_WRITE_THRESHOLD: std::time::Duration = std::time::Duration::from_millis(20);

/// Below this write throughput a long write counts as a peer stall rather
/// than a big transfer (1 MB/s — an order of magnitude under any link the
/// service is meant for, far above a wedged peer's ~0).
const SLOW_PEER_BYTES_PER_SEC: f64 = 1e6;

/// Retry-after hint on `overloaded` sheds: long enough that a backing-off
/// client skips the worst of the burst, short enough to find the queue
/// drained (error items drain at memory speed, not macro speed).
const SHED_RETRY_AFTER_MS: u64 = 50;

/// Hard cap on one request line. Readers discard over-long lines (and
/// answer with an error) instead of buffering them, so a client streaming
/// an unterminated request cannot grow server memory without bound.
const MAX_LINE_BYTES: usize = 4 << 20;

/// One queued request with the connection it came from. Malformed lines
/// — and requests refused at admission (shed, over the in-flight cap) —
/// travel through the queue too (`body: Err`), so their error responses
/// keep the per-connection FIFO ordering the protocol promises.
struct Item {
    conn: Arc<Conn>,
    id: u64,
    /// Position in the connection's request stream (keys the fault plan).
    seq: u64,
    /// The client-stamped idempotency sequence number, if the request
    /// carried one (meaningful only on durable sessions).
    req_seq: Option<u64>,
    /// When the request's `timeout_ms` expires, if it carried one.
    deadline: Option<Instant>,
    body: Result<RequestBody, ErrorBody>,
}

/// Aggregate bound: total queued items may reach this many session
/// shares, whatever the connection count — so N connections cannot
/// queue N full FIFOs of near-`MAX_LINE_BYTES` requests and grow
/// server memory without limit. At the aggregate bound every reader
/// blocks (the pre-fairness global behaviour, as the backstop).
pub(crate) const GLOBAL_SHARES: usize = 16;

/// The bounded queue between connection readers and the dispatcher.
///
/// Internally one FIFO **per session**, drained round-robin one request at
/// a time — the fairness fix for the old single global FIFO, where one
/// client pipelining thousands of requests made everyone else wait for the
/// whole backlog. Per-connection FIFO order (the protocol's promise) is
/// untouched; only the interleaving *between* sessions changes. The
/// capacity bound applies per session, so a flooding client backpressures
/// itself without consuming other sessions' queue space.
///
/// Generic over the queued payload so the concurrency models (`model`
/// feature) can drive the exact production protocol — the same waits,
/// wakeups, shed hysteresis and round-robin drain — with plain values
/// instead of live connections. The server instantiates `Queue<Item>`.
pub(crate) struct Queue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Shedding flips on at this many total queued items…
    shed_high: usize,
    /// …and back off once the total drains to this (hysteresis).
    shed_low: usize,
}

struct QueueState<T> {
    /// Connection ids with a non-empty FIFO, in rotation order.
    ready: VecDeque<u64>,
    /// The per-session FIFOs (entries removed when drained).
    per_conn: HashMap<u64, VecDeque<T>>,
    /// Items across all sessions (the aggregate-memory bound).
    total: usize,
    /// Admission control: while set, new compute requests are answered
    /// `overloaded` instead of queued (control ops always pass).
    shedding: bool,
    closed: bool,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize, shed_high: usize, shed_low: usize) -> Self {
        Self {
            state: Mutex::named(
                "server.queue.state",
                QueueState {
                    ready: VecDeque::new(),
                    per_conn: HashMap::new(),
                    total: 0,
                    shedding: false,
                    closed: false,
                },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            shed_high: shed_high.max(1),
            shed_low: shed_low.min(shed_high.saturating_sub(1)),
        }
    }

    /// Admission check with hysteresis: shedding flips on when the total
    /// backlog reaches `shed_high` and off once it drains to `shed_low`.
    /// Readers call this per compute request; a `true` answer means the
    /// request should be refused with `overloaded` (which still rides the
    /// queue as an error item, preserving response order — error items
    /// cost no macro time, so a shedding server drains them fast).
    pub(crate) fn should_shed(&self) -> bool {
        let mut state = self.state.lock();
        if state.total >= self.shed_high {
            state.shedding = true;
        } else if state.total <= self.shed_low {
            state.shedding = false;
        }
        state.shedding
    }

    /// Blocks while this item's session is at its queue share, or the
    /// queue as a whole is at its aggregate bound (the backpressure
    /// points). `Err(())` means the server is shutting down and the item
    /// was not enqueued.
    pub(crate) fn push(&self, conn_id: u64, item: T) -> Result<(), ()> {
        let mut state = self.state.lock();
        while !state.closed
            && (state.total >= GLOBAL_SHARES * self.capacity
                || state
                    .per_conn
                    .get(&conn_id)
                    .is_some_and(|q| q.len() >= self.capacity))
        {
            state = self.not_full.wait(state);
        }
        if state.closed {
            return Err(());
        }
        let fifo = state.per_conn.entry(conn_id).or_default();
        let was_empty = fifo.is_empty();
        fifo.push_back(item);
        state.total += 1;
        if was_empty {
            state.ready.push_back(conn_id);
        }
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until items are available; drains up to `max`, taking one
    /// request per ready session per rotation (round-robin). `None` means
    /// closed **and** fully drained — queued work always gets responses
    /// before shutdown completes.
    pub(crate) fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock();
        while state.ready.is_empty() && !state.closed {
            state = self.not_empty.wait(state);
        }
        if state.ready.is_empty() {
            return None;
        }
        let mut batch = Vec::new();
        while batch.len() < max.max(1) {
            let Some(conn_id) = state.ready.pop_front() else {
                break;
            };
            let fifo = state
                .per_conn
                .get_mut(&conn_id)
                .expect("ready sessions have a FIFO");
            batch.push(fifo.pop_front().expect("ready FIFOs are non-empty"));
            let drained = fifo.is_empty();
            state.total -= 1;
            if drained {
                state.per_conn.remove(&conn_id);
            } else {
                state.ready.push_back(conn_id);
            }
        }
        drop(state);
        self.not_full.notify_all();
        Some(batch)
    }

    pub(crate) fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The bounded response queue between response producers (the dispatcher,
/// during shutdown also readers) and one connection's writer thread.
///
/// The hot path writes **inline**: when nothing is pending, no drain is in
/// progress and the peer has never stalled a write, the responder takes
/// the drainer role, writes its own serialized line and returns — no
/// thread hand-off, which on hosts with slow futex wakes is worth hundreds
/// of microseconds per response. The writer thread takes over when fan-out
/// decouples from the dispatcher's pace: a backlog is pending, another
/// drain is already in flight, or the connection has been marked `slow`.
/// Either way at most one thread writes to the socket at a time
/// (`draining`), so response bytes never interleave.
///
/// **Slow peers cannot hold the dispatcher.** Any drain whose socket write
/// stalls past [`SLOW_WRITE_THRESHOLD`] marks the connection `slow` —
/// sticky — after which every response is handed to the writer thread, so
/// the dispatcher is exposed to at most one bounded stall per connection
/// ([`ServerConfig::write_timeout`] caps even that). A slow connection whose bounded
/// outbox then fills is declared wedged and dropped rather than letting
/// its backpressure reach the dispatcher through the full-outbox wait.
///
/// `inflight` counts requests this connection has in the central queue
/// whose response has not been produced yet; the writer thread exits only
/// when the reader is gone **and** nothing is in flight **and** the
/// backlog is drained, so a pipelining client that half-closes after its
/// last request still receives every response.
pub(crate) struct Outbox {
    state: Mutex<OutboxState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The transport an [`Outbox`] drains into. Production code implements it
/// on [`Conn`] (a `TcpStream`); the concurrency models substitute an
/// in-memory peer, so the exact drain/backpressure/wedge protocol runs
/// under the deterministic scheduler.
pub(crate) trait ResponseSink {
    /// Writes one coalesced buffer; `false` means the peer is gone.
    fn write_all(&self, buf: &[u8]) -> bool;
    /// Severs the underlying transport in both directions.
    fn sever(&self);
}

pub(crate) struct OutboxState {
    /// Serialized response lines (each newline-terminated) not yet handed
    /// to the kernel.
    pending: VecDeque<String>,
    /// One thread (writer or an inline responder) is currently writing.
    draining: bool,
    inflight: u64,
    /// No further requests will arrive (reader exited, or server drained).
    reader_gone: bool,
    /// A write to this peer has stalled before (sticky): never write
    /// inline again — fan-out goes through the writer thread only.
    slow: bool,
    /// An injected chaos stall: the next drain sleeps this long (off the
    /// dispatcher, on the writer thread) before writing.
    stall: Option<Duration>,
    /// Socket dead (error or a write-timeout stall): pushes are silently
    /// dropped so producers can never block on a vanished client.
    closed: bool,
}

impl Outbox {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::named(
                "server.outbox.state",
                OutboxState {
                    pending: VecDeque::new(),
                    draining: false,
                    inflight: 0,
                    reader_gone: false,
                    slow: false,
                    stall: None,
                    closed: false,
                },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Registers one request whose response is owed (called by the reader
    /// before the central-queue push, so the writer never exits between a
    /// request being queued and its response being produced). Returns the
    /// new in-flight count so the reader can enforce the per-connection
    /// cap without a second lock.
    pub(crate) fn expect_response(&self) -> u64 {
        let mut state = self.state.lock();
        state.inflight += 1;
        state.inflight
    }

    /// Injects a chaos stall: marks the connection `slow` (so the write
    /// happens on the writer thread, not the dispatcher) and makes the
    /// next drain sleep `d` before writing — a peer reading sluggishly.
    fn inject_stall(&self, d: Duration) {
        let mut state = self.state.lock();
        state.slow = true;
        state.stall = Some(d);
    }

    /// Severs the connection (chaos `Drop` fault): closes the outbox so
    /// producers never block on it and the writer thread exits, then shuts
    /// the socket down so the reader sees EOF.
    fn force_close(&self, sink: &impl ResponseSink) {
        let mut state = self.state.lock();
        state.closed = true;
        state.pending.clear();
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
        sink.sever();
    }

    /// Queues one serialized line, blocking while the bounded backlog is
    /// full; then either writes it inline (fast path, see the type docs)
    /// or leaves it for the writer thread. Balances one `expect_response`.
    pub(crate) fn push_line(&self, sink: &impl ResponseSink, line: String) {
        let mut state = self.state.lock();
        state.inflight = state.inflight.saturating_sub(1);
        while !state.closed && state.pending.len() >= self.capacity {
            if state.slow {
                // A peer that both stalled a write and let its bounded
                // outbox fill is effectively not reading. Drop it rather
                // than letting its backpressure block the producer (the
                // dispatcher) behind the full-outbox wait.
                state.closed = true;
                state.pending.clear();
                drop(state);
                self.not_full.notify_all();
                self.not_empty.notify_all();
                sink.sever();
                return;
            }
            state = self.not_full.wait(state);
        }
        if state.closed {
            drop(state);
            self.not_empty.notify_all();
            return;
        }
        state.pending.push_back(line);
        if state.draining || state.slow || state.pending.len() > 1 {
            // A drain is active, the peer has stalled before, or a backlog
            // exists: the writer thread owns the fan-out from here.
            drop(state);
            self.not_empty.notify_one();
            return;
        }
        self.drain(sink, state);
    }

    /// Takes the drainer role: coalesces everything pending into one
    /// buffer, writes it with a single syscall, repeats until the backlog
    /// is empty. Called with the state lock held; writes happen unlocked.
    pub(crate) fn drain<'a>(
        &'a self,
        sink: &impl ResponseSink,
        mut state: MutexGuard<'a, OutboxState>,
    ) {
        state.draining = true;
        loop {
            let at_capacity = state.pending.len() >= self.capacity;
            let stall = state.stall.take();
            let buf: String = state.pending.drain(..).collect();
            drop(state);
            if at_capacity {
                // Only a full backlog can have blocked producers waiting.
                self.not_full.notify_all();
            }
            if let Some(d) = stall {
                // Injected chaos stall: always consumed here, off the
                // dispatcher (`inject_stall` marked the connection slow,
                // so this drain runs on the writer thread).
                std::thread::sleep(d);
            }
            let t_write = std::time::Instant::now();
            let ok = sink.write_all(buf.as_bytes());
            let elapsed = t_write.elapsed();
            state = self.state.lock();
            if elapsed >= SLOW_WRITE_THRESHOLD
                && (buf.len() as f64) < SLOW_PEER_BYTES_PER_SEC * elapsed.as_secs_f64()
            {
                // This peer can stall a write (long wait, little data
                // moved). Never again on the inline path: all further
                // fan-out goes through the writer thread, bounding the
                // dispatcher's exposure to one stall per connection.
                state.slow = true;
            }
            if !ok {
                state.draining = false;
                state.closed = true;
                state.pending.clear();
                drop(state);
                self.not_full.notify_all();
                self.not_empty.notify_all();
                sink.sever();
                return;
            }
            if state.pending.is_empty() {
                state.draining = false;
                // Wake the parked writer thread only when it may have to
                // exit now — an unconditional wake here would cost a
                // pointless context switch per response on the fast path.
                let wake_writer = state.reader_gone && state.inflight == 0;
                drop(state);
                if wake_writer {
                    self.not_empty.notify_all();
                }
                return;
            }
        }
    }

    /// Marks that no further requests will arrive on this connection.
    pub(crate) fn no_more_requests(&self) {
        self.state.lock().reader_gone = true;
        self.not_empty.notify_all();
    }

    /// The writer thread's wait: blocks until there is a backlog to drain
    /// (returns the locked state, `draining` already claimed) or the
    /// connection is finished (`None`: exit).
    pub(crate) fn claim_backlog(&self) -> Option<MutexGuard<'_, OutboxState>> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return None;
            }
            if !state.pending.is_empty() && !state.draining {
                return Some(state);
            }
            if state.pending.is_empty()
                && !state.draining
                && state.reader_gone
                && state.inflight == 0
            {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }
}

/// One client connection. Its session lives behind a *slot*: every
/// connection starts with a fresh ephemeral [`Session`], and
/// `open_session` / `resume_session` swap a durable one in. The slot lock
/// is only ever held long enough to clone or swap the `Arc` — all real
/// state sits behind the session's own lock — so it nests inside nothing.
struct Conn {
    id: u64,
    stream: TcpStream,
    outbox: Outbox,
    session: Mutex<Arc<Session>>,
}

impl Conn {
    /// The session currently attached to this connection.
    fn session(&self) -> Arc<Session> {
        self.session.lock().clone()
    }

    /// Produces one response: serialized here, then written inline when
    /// this connection is keeping up, or handed to its writer thread when
    /// a backlog is pending (bounded at `OUTBOX_CAPACITY` lines — beyond
    /// that the producer blocks, the per-connection backpressure point).
    fn respond(&self, id: u64, body: ResponseBody) {
        let mut line = Response { id, body }.to_json_line();
        line.push('\n');
        self.outbox.push_line(self, line);
    }
}

impl ResponseSink for Conn {
    fn write_all(&self, buf: &[u8]) -> bool {
        Write::write_all(&mut &self.stream, buf).is_ok()
    }

    fn sever(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// The per-connection writer thread: parks until a response backlog
/// appears (a client reading slower than the dispatcher answers), then
/// drains it in coalesced writes — the response fan-out path that used to
/// serialize through the dispatcher. [`ServerConfig::write_timeout`] (set
/// on the socket at accept) bounds how long any drain — inline or here —
/// can stall on a peer that stopped reading; a stalled peer's outbox
/// closes and its remaining responses are dropped.
fn writer_loop(conn: &Arc<Conn>) {
    while let Some(state) = conn.outbox.claim_backlog() {
        conn.outbox.drain(conn.as_ref(), state);
    }
}

/// State shared by the accept loop, readers, writers, dispatcher and
/// handle.
struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    queue: Queue<Item>,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    sessions: Arc<SessionRegistry>,
    /// The write-ahead journal + snapshot engine, when `--state-dir` is
    /// on. `None` costs the serving path exactly one branch per settle.
    persist: Option<Arc<Persist>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    shutting_down: AtomicBool,
}

impl Shared {
    /// Settles one request against its session, journaling the identical
    /// mutation when persistence is on and the session is durable. The
    /// journal lock is taken *before* the session lock and held across
    /// both the mutation and the append, so a concurrent snapshot can
    /// never capture the mutation yet lose its event (or vice versa).
    fn settle(
        &self,
        session: &Session,
        billing: Billing,
        ran_pid: Option<u64>,
        seq: Option<u64>,
        body: &ResponseBody,
    ) {
        match (&self.persist, session.token.as_deref()) {
            (Some(p), Some(token)) if !matches!(billing, Billing::None) || seq.is_some() => {
                let ev = persist::exec_event(token, &billing, ran_pid, seq, body);
                let mut journal = p.begin();
                session.settle(billing, ran_pid, seq, body);
                p.append(&mut journal, &ev);
            }
            _ => session.settle(billing, ran_pid, seq, body),
        }
    }

    /// Bills one error with no response to record, via the journal hook.
    fn record_error(&self, session: &Session) {
        self.settle(session, Billing::Error, None, None, &ResponseBody::Ok);
    }

    /// [`Session::detach`] with the journal hook: the detach event
    /// carries the wall clock so a restart resumes the TTL countdown
    /// where it stood instead of granting a fresh one.
    fn detach_session(&self, session: &Session, now: Instant) {
        match (&self.persist, session.token.as_deref()) {
            (Some(p), Some(token)) => {
                let ev = Event::Detach {
                    token: token.to_string(),
                    unix_ms: persist::unix_ms_now(),
                };
                let mut journal = p.begin();
                session.detach(now);
                p.append(&mut journal, &ev);
            }
            _ => session.detach(now),
        }
    }

    /// Idempotent: stops the accept loop, closes the queue and stops the
    /// session sweeper. Already queued requests still drain and get
    /// responses; new pushes fail.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        self.sessions.stop_sweeper();
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
    }

    /// Closes every live connection so reader threads see EOF and exit.
    fn close_all_conns(&self) {
        for conn in self.conns.lock().values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// The service entry point; see the crate documentation for the protocol.
pub struct Server;

impl Server {
    /// Binds the service and spawns its accept and dispatcher threads.
    /// `addr` may use port 0 for an ephemeral port; the bound address is
    /// available as [`ServerHandle::local_addr`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let sessions = Arc::new(SessionRegistry::new(RegistryCaps {
            ttl: config.session_ttl,
            max_sessions: config.max_sessions,
            max_programs: config.max_registry_programs,
        }));
        // Recovery happens before the listener accepts anything: by the
        // time a client can connect, every recovered session is already
        // resumable with its pre-crash account, programs and seq window.
        let persist = match &config.state {
            Some(state) => Some(Arc::new(recover(
                state,
                &sessions,
                config.optimize_programs,
            )?)),
            None => None,
        };
        let queue = Queue::new(config.queue_capacity, config.shed_high, config.shed_low);
        let shared = Arc::new(Shared {
            config,
            addr,
            queue,
            conns: Mutex::named("server.conns", HashMap::new()),
            sessions: sessions.clone(),
            persist: persist.clone(),
            readers: Mutex::named("server.readers", Vec::new()),
            writers: Mutex::named("server.writers", Vec::new()),
            next_conn_id: AtomicU64::named("server.conn.next-id", 1),
            shutting_down: AtomicBool::named("server.shutting-down", false),
        });

        let sweeper = std::thread::Builder::new()
            .name("bpimc-session-gc".into())
            .spawn(move || {
                let registry = sessions.clone();
                sessions.run_sweeper(move || {
                    let now = Instant::now();
                    match &persist {
                        Some(p) => {
                            // Lock order: journal before registry. Held
                            // across sweep + append, each expiry is one
                            // atomic journal unit.
                            {
                                let mut journal = p.begin();
                                for token in registry.sweep(now) {
                                    p.append(&mut journal, &Event::Expire { token });
                                }
                            }
                            // Interval fsyncs and due snapshots ride the
                            // same tick — nothing on the request path.
                            p.tick(&registry);
                        }
                        None => {
                            registry.sweep(now);
                        }
                    }
                });
            })
            .expect("spawning the session sweeper thread");
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("bpimc-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawning the accept thread")
        };
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("bpimc-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the dispatcher thread")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            sweeper: Some(sweeper),
        })
    }
}

/// Opens the state directory and rebuilds what it holds: newest valid
/// snapshot, journal-tail replay, then materialization — stored programs
/// and classifier models recompiled from their journaled source streams
/// on a scratch macro (billing nothing; the original bills are already in
/// the recovered accounts). Runs to completion before the server accepts
/// its first connection, and logs which recovery path was taken.
fn recover(
    state: &StateConfig,
    sessions: &Arc<SessionRegistry>,
    optimize: bool,
) -> std::io::Result<Persist> {
    let (persist, recovery) = Persist::open(state)?;
    eprintln!("bpimc-server: {}", recovery.path);
    if let Some(c) = &recovery.corruption {
        eprintln!(
            "bpimc-server: journal tail dropped at byte {}: {} ({} bytes discarded)",
            c.offset, c.reason, c.dropped_bytes
        );
    }
    let recovered = recovery.registry;
    if recovered.sessions.is_empty() && recovered.expired.is_empty() && recovered.mint_counter == 0
    {
        return Ok(persist);
    }
    let mut bank = MacroBank::new(1, MacroConfig::paper_macro());
    let params = paper_calibrated_params();
    let now = Instant::now();
    let mut notes = Vec::new();
    let live: Vec<Arc<Session>> = recovered
        .sessions
        .iter()
        .map(|rec| {
            let inner =
                persist::materialize_session(rec, &mut bank, &params, optimize, now, &mut notes);
            Arc::new(Session {
                token: Some(rec.token.clone()),
                inner: Mutex::named("server.session.inner", inner),
            })
        })
        .collect();
    for note in notes {
        eprintln!("bpimc-server: recovery: {note}");
    }
    sessions.install_recovered(live, recovered.expired, recovered.mint_counter);
    Ok(persist)
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates a graceful shutdown and waits for every thread to finish:
    /// queued requests drain with responses, then connections close.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down for another reason (a client's
    /// `shutdown` request), then joins every thread.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for h in readers {
            let _ = h.join();
        }
        let writers = std::mem::take(&mut *self.shared.writers.lock());
        for h in writers {
            let _ = h.join();
        }
        // Every thread that could mutate session state is joined (readers
        // journal their final detaches on exit), so this snapshot is the
        // complete final state: write it plus the clean-shutdown marker,
        // and the next boot skips journal replay entirely.
        if let Some(p) = &self.shared.persist {
            p.finalize(&self.shared.sessions);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are complete lines a client acts on immediately: send
        // them now instead of letting Nagle pair small writes with delayed
        // ACKs (which stalls pipelined streams for tens of milliseconds).
        let _ = stream.set_nodelay(true);
        // Bounds every response write — inline or on the writer thread —
        // so a peer that stops reading cannot wedge a drain forever.
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            id,
            stream,
            outbox: Outbox::new(OUTBOX_CAPACITY),
            session: Mutex::named("server.conn.session-slot", Session::ephemeral()),
        });
        shared.conns.lock().insert(id, conn.clone());
        // Re-check AFTER registering: if a shutdown slipped in between the
        // loop-top check and the insert, `close_all_conns` may already have
        // run without seeing this connection — sever it here so its reader
        // cannot outlive the shutdown and wedge `join`.
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let writer_conn = conn.clone();
        let writer = std::thread::Builder::new()
            .name(format!("bpimc-write-{id}"))
            .spawn(move || writer_loop(&writer_conn))
            .expect("spawning a connection writer");
        reap_and_push(&shared.writers, writer);
        let reader_shared = shared.clone();
        let reader = std::thread::Builder::new()
            .name(format!("bpimc-conn-{id}"))
            .spawn(move || reader_loop(conn, &reader_shared))
            .expect("spawning a connection reader");
        reap_and_push(&shared.readers, reader);
    }
}

/// Stores a per-connection thread handle, reaping finished ones so a
/// long-running server does not accumulate one JoinHandle per connection
/// it ever accepted.
fn reap_and_push(slot: &Mutex<Vec<JoinHandle<()>>>, handle: JoinHandle<()>) {
    let mut handles = slot.lock();
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
    handles.push(handle);
}

/// How one capped line read ended.
enum LineRead {
    /// Connection closed (or errored) with nothing buffered.
    Eof,
    /// A complete line is in the buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was discarded up
    /// to (and including) the next newline.
    TooLong,
}

/// `read_line` with a hard size cap: over-long lines are *discarded* in
/// chunks rather than buffered, bounding per-connection memory.
fn read_line_capped(reader: &mut BufReader<TcpStream>, line: &mut String, cap: usize) -> LineRead {
    use std::io::BufRead;
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(_) => return LineRead::Eof,
        };
        if available.is_empty() {
            // EOF: a trailing unterminated line still counts as a line.
            if buf.is_empty() {
                return LineRead::Eof;
            }
            *line = String::from_utf8_lossy(&buf).into_owned();
            return LineRead::Line;
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |p| p);
        if buf.len() + take > cap {
            // Too long: drop what we have and skip to the next newline.
            buf.clear();
            loop {
                let chunk = match reader.fill_buf() {
                    Ok(c) => c,
                    Err(_) => return LineRead::Eof,
                };
                if chunk.is_empty() {
                    return LineRead::TooLong;
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(p) => {
                        reader.consume(p + 1);
                        return LineRead::TooLong;
                    }
                    None => {
                        let n = chunk.len();
                        reader.consume(n);
                    }
                }
            }
        }
        buf.extend_from_slice(&available[..take]);
        match newline {
            Some(p) => {
                reader.consume(p + 1);
                *line = String::from_utf8_lossy(&buf).into_owned();
                return LineRead::Line;
            }
            None => reader.consume(take),
        }
    }
}

fn reader_loop(conn: Arc<Conn>, shared: &Arc<Shared>) {
    let Ok(read_half) = conn.stream.try_clone() else {
        conn.outbox.no_more_requests();
        shared.conns.lock().remove(&conn.id);
        shared.detach_session(&conn.session(), Instant::now());
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let limits = shared.config.limits;
    let mut seq: u64 = 0;
    loop {
        let (id, req_seq, deadline, mut body) =
            match read_line_capped(&mut reader, &mut line, MAX_LINE_BYTES) {
                LineRead::Eof => break,
                LineRead::TooLong => (
                    0,
                    None,
                    None,
                    Err(ErrorBody::generic(format!(
                        "request line exceeds {MAX_LINE_BYTES} bytes"
                    ))),
                ),
                LineRead::Line => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match Request::parse(&line) {
                        Ok(req) => {
                            // The deadline clock starts when the line is read:
                            // time spent queued counts against it.
                            let deadline = req
                                .timeout_ms
                                .map(|ms| Instant::now() + Duration::from_millis(ms));
                            (req.id, req.seq, deadline, Ok(req.body))
                        }
                        // Malformed lines go through the queue like any other
                        // request, so their error responses keep the
                        // per-connection FIFO ordering. A line whose id is
                        // unreadable is answered with the documented sentinel
                        // id 0 (`peek_id` returns `None` for those).
                        Err(e) => (
                            Request::peek_id(&line).unwrap_or(0),
                            None,
                            None,
                            Err(ErrorBody::generic(e.to_string())),
                        ),
                    }
                }
            };
        // Register the owed response *before* queueing, so the writer
        // thread cannot exit between the push and the dispatcher's answer.
        let inflight = conn.outbox.expect_response();
        // Admission control, compute requests only — control ops (ping,
        // stats, shutdown, …) always pass so health checks survive
        // overload. Refusals still ride the queue as error items, keeping
        // the per-connection FIFO response order.
        if matches!(&body, Ok(b) if is_compute(b)) {
            if let Some(max) = limits.max_inflight.filter(|&max| inflight > max) {
                body = Err(ErrorBody::limit(
                    LimitKind::Inflight,
                    None,
                    format!("{inflight} requests in flight but the limit is {max}"),
                ));
            } else if shared.queue.should_shed() {
                body = Err(ErrorBody::overloaded(
                    Some(SHED_RETRY_AFTER_MS),
                    "server overloaded: request queue is above its shed watermark",
                ));
            }
        }
        if shared
            .queue
            .push(
                conn.id,
                Item {
                    conn: conn.clone(),
                    id,
                    seq,
                    req_seq,
                    deadline,
                    body,
                },
            )
            .is_err()
        {
            // Queue closed: the dispatcher will never answer. This is the
            // one response written off-order, and only during shutdown.
            shared.record_error(&conn.session());
            conn.respond(id, ResponseBody::Error("server is shutting down".into()));
            break;
        }
        seq += 1;
    }
    // The writer finishes any in-flight responses, then exits.
    conn.outbox.no_more_requests();
    // Deregister this connection *before* detaching its session: a
    // concurrent `resume_session` that attaches a session to this
    // connection re-checks `conns` after the swap and detaches again if
    // we are already gone, so this ordering leaves no window in which a
    // session stays attached to a dead connection (see `handle_control`).
    shared.conns.lock().remove(&conn.id);
    shared.detach_session(&conn.session(), Instant::now());
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let config = &shared.config;
    let mut bank = MacroBank::new(config.macros.max(1), MacroConfig::paper_macro());
    let params = paper_calibrated_params();
    while let Some(batch) = shared.queue.pop_batch(config.batch_max) {
        process_batch(batch, &mut bank, &params, shared);
    }
    // Queue closed and drained: every queued request has its response in
    // an outbox. Let the writers flush those, then sever the connections
    // so readers exit.
    for conn in shared.conns.lock().values() {
        conn.outbox.no_more_requests();
    }
    let writers = std::mem::take(&mut *shared.writers.lock());
    for w in writers {
        let _ = w.join();
    }
    shared.close_all_conns();
}

/// Whether one compute item in a drained run executes on the bank, was
/// refused before touching any array state (deadline already expired in
/// queue, rate budget exhausted), or is an idempotent-retry duplicate.
/// Every variant keeps its slot in the response order.
enum Prepared {
    /// Executes as a bank job; its seq (if stamped) was claimed at
    /// job-build time, so a same-batch duplicate already resolves to
    /// `Replay`.
    Run,
    /// Refused before execution. Transient by construction — the op never
    /// ran — so a stamped seq is deliberately *not* claimed: the client's
    /// retry of the same seq gets re-admitted fresh.
    Refused(ErrorBody),
    /// The stamped seq was already claimed by an earlier request: answer
    /// from the session's replay window at record time (by then the
    /// original — which precedes this slot in response order — has cached
    /// its response), executing and billing nothing.
    Replay(u64),
}

/// One slot of a drained compute run: the connection and session it
/// settles against, response-ordering keys, and how it was prepared.
struct MetaItem {
    conn: Arc<Conn>,
    /// Snapshotted at job-build time: control ops that swap the
    /// connection's session slot cannot race a compute run (they execute
    /// between runs), so this is the session the request was admitted
    /// under — the one its outcome must settle against.
    session: Arc<Session>,
    id: u64,
    /// Conn-stream position (keys the fault plan).
    seq: u64,
    /// The claimed idempotency seq to record the response under, if the
    /// request was stamped, durable and actually executed.
    claimed: Option<u64>,
    /// The stored program a `run_stored` resolved to (run history).
    ran_pid: Option<u64>,
    prep: Prepared,
}

/// The canned answer for a stamped seq that was claimed but has fallen
/// out of the bounded replay window (a retry arriving implausibly late).
fn stale_seq_error(seq: u64) -> ErrorBody {
    ErrorBody::generic(format!(
        "request seq {seq} was already executed but its response left the replay window; \
         do not reuse seq numbers"
    ))
}

/// Processes one drained batch in FIFO order: runs of consecutive compute
/// requests execute as one bank batch (requests spread across macros),
/// control requests execute inline between runs. Responses and session
/// accounting happen in arrival order, so each session observes its own
/// requests sequentially.
///
/// Guardrails run here, at job-build time — before any array state
/// changes: a request whose deadline already expired in queue, or whose
/// session is over its cycle/energy budget, is answered with its
/// structured error instead of becoming a job.
fn process_batch(
    batch: Vec<Item>,
    bank: &mut MacroBank,
    params: &EnergyParams,
    shared: &Arc<Shared>,
) {
    let limits = shared.config.limits;
    let faults = shared.config.faults;
    let is_compute_item = |item: &Item| matches!(&item.body, Ok(body) if is_compute(body));
    let mut iter = batch.into_iter().peekable();
    while let Some(item) = iter.next() {
        if is_compute_item(&item) {
            let mut meta: Vec<MetaItem> = Vec::new();
            let mut jobs = Vec::new();
            let mut next = Some(item);
            loop {
                let it = match next.take() {
                    Some(it) => it,
                    None => match iter.next_if(is_compute_item) {
                        Some(it) => it,
                        None => break,
                    },
                };
                let body = it.body.expect("compute items carry a parsed body");
                let session = it.conn.session();
                // The idempotency guard applies to requests that carry a
                // seq on a durable session (ephemeral sessions cannot
                // reconnect, so there is nothing to guard).
                let guarded = it.req_seq.filter(|_| session.is_durable());
                let needs_snapshot = matches!(
                    &body,
                    RequestBody::Classify { .. } | RequestBody::RunStored { .. }
                );
                let needs_meter = it.deadline.is_some() || !limits.unmetered();
                // `Instant::now` and the session lock are skipped entirely
                // when nothing needs them (the default config's dot/lanes
                // path), keeping the hot path unchanged.
                let (mut model, mut stored, mut ran_pid, mut claimed) = (None, None, None, None);
                let refusal = if guarded.is_some() || needs_meter || needs_snapshot {
                    let mut inner = session.inner.lock();
                    if let Some(rseq) = guarded.filter(|&rseq| inner.is_replay(rseq)) {
                        drop(inner);
                        meta.push(MetaItem {
                            conn: it.conn,
                            session,
                            id: it.id,
                            seq: it.seq,
                            claimed: None,
                            ran_pid: None,
                            prep: Prepared::Replay(rseq),
                        });
                        continue;
                    }
                    // Deadline + rate budget, checked before the job
                    // exists — and before the seq is claimed, so these
                    // transient refusals stay retryable.
                    let refusal = if needs_meter {
                        let now = Instant::now();
                        if it.deadline.is_some_and(|d| now >= d) {
                            Some(ErrorBody::deadline(
                                "deadline expired while the request was queued",
                            ))
                        } else {
                            inner.rate.admit(&limits, now).err()
                        }
                    } else {
                        None
                    };
                    if refusal.is_none() {
                        if let Some(rseq) = guarded {
                            inner.claim_seq(rseq);
                            claimed = Some(rseq);
                        }
                        // Session state the job depends on is snapshotted
                        // at job-build time (Arc clones): a `load_model`
                        // or `store_program` earlier in the same drained
                        // batch is visible, and later session changes
                        // cannot race the job.
                        match &body {
                            RequestBody::Classify { .. } => model = inner.model.clone(),
                            RequestBody::RunStored { target, .. } => {
                                if let Some((pid, compiled)) = inner.resolve(target) {
                                    ran_pid = Some(pid);
                                    stored = Some(compiled);
                                }
                            }
                            _ => {}
                        }
                    }
                    refusal
                } else {
                    None
                };
                if let Some(err) = refusal {
                    meta.push(MetaItem {
                        conn: it.conn,
                        session,
                        id: it.id,
                        seq: it.seq,
                        claimed: None,
                        ran_pid: None,
                        prep: Prepared::Refused(err),
                    });
                    continue;
                }
                let fault = if faults.is_active() {
                    faults.compute_fault(it.conn.id, it.seq)
                } else {
                    None
                };
                meta.push(MetaItem {
                    conn: it.conn,
                    session,
                    id: it.id,
                    seq: it.seq,
                    claimed,
                    ran_pid,
                    prep: Prepared::Run,
                });
                jobs.push(ComputeJob {
                    body,
                    model,
                    stored,
                    deadline: it.deadline,
                    max_program_instrs: limits.max_program_instrs,
                    fault,
                    inject_panic_allowed: faults.inject_panic_op,
                    optimize: shared.config.optimize_programs,
                });
            }
            let mut results = bank
                .try_run_batch(&jobs, |mac, job| run_compute(mac, job, params))
                .into_iter();
            for m in meta {
                let (body, billing) = match m.prep {
                    Prepared::Replay(rseq) => {
                        // The original precedes this slot in response
                        // order, so its response — if still in the bounded
                        // window — is cached by now. Nothing is billed:
                        // the account reflects each logical op once.
                        let cached = m.session.inner.lock().replayed(rseq);
                        (
                            cached.unwrap_or_else(|| ResponseBody::Error(stale_seq_error(rseq))),
                            Billing::None,
                        )
                    }
                    Prepared::Refused(err) => (ResponseBody::Error(err), Billing::Error),
                    Prepared::Run => match results.next().expect("one result per job") {
                        Ok((Ok(body), cycles, energy_fj)) => {
                            (body, Billing::Ok { cycles, energy_fj })
                        }
                        Ok((Err(err), _, _)) => (ResponseBody::Error(err), Billing::Error),
                        Err(panic) => (
                            ResponseBody::Error(panic.to_string().into()),
                            Billing::Error,
                        ),
                    },
                };
                shared.settle(&m.session, billing, m.ran_pid, m.claimed, &body);
                deliver(&m.conn, m.id, m.seq, body, &faults);
            }
        } else {
            handle_control(item, bank, params, shared);
        }
    }
}

/// Produces one compute response, applying the fault plan's
/// response-delivery faults: a `Drop` severs the connection instead of
/// responding (the response is lost, as it would be to a vanished
/// client); a `Stall` makes the connection's writer sleep before the
/// write (off the dispatcher). Session accounting already happened — a
/// dropped response's work stays billed, exactly like real work a client
/// disconnected from.
fn deliver(conn: &Arc<Conn>, id: u64, seq: u64, body: ResponseBody, faults: &FaultPlan) {
    if faults.is_active() {
        match faults.response_fault(conn.id, seq) {
            Some(ResponseFault::Drop) => {
                conn.outbox.force_close(conn.as_ref());
                return;
            }
            Some(ResponseFault::Stall(d)) => conn.outbox.inject_stall(d),
            None => {}
        }
    }
    conn.respond(id, body);
}

/// Whether a control response may be recorded against its request's seq.
/// Transient refusals — overload sheds and rate/inflight budget errors —
/// mean the op never ran, so the seq must stay unclaimed and a retry of
/// it re-admits fresh. Everything else (success or deterministic failure)
/// is the seq's definitive outcome.
fn control_consumes_seq(body: &ResponseBody) -> bool {
    match body {
        ResponseBody::Error(e) => {
            e.kind != ErrorKind::Overloaded
                && !matches!(
                    e.limit,
                    Some(LimitKind::CycleRate | LimitKind::EnergyRate | LimitKind::Inflight)
                )
        }
        _ => true,
    }
}

/// The common control-op epilogue: settles billing (and, when the request
/// was seq-guarded and the outcome consumes the seq, records the response
/// for replay), then responds. Settling goes through [`Shared::settle`],
/// so every control outcome reaches the journal too.
fn finish_control(
    shared: &Shared,
    conn: &Arc<Conn>,
    session: &Session,
    id: u64,
    guarded: Option<u64>,
    billing: Billing,
    body: ResponseBody,
) {
    let seq = guarded.filter(|_| control_consumes_seq(&body));
    shared.settle(session, billing, None, seq, &body);
    conn.respond(id, body);
}

fn handle_control(item: Item, bank: &mut MacroBank, params: &EnergyParams, shared: &Arc<Shared>) {
    let Item {
        conn,
        id,
        req_seq,
        body,
        ..
    } = item;
    let session = conn.session();
    let body = match body {
        Ok(body) => body,
        Err(err) => {
            // A line that never parsed, or a request refused at admission
            // (shed, over the in-flight cap): answered here, in queue
            // order. Never seq-claimed — sheds and inflight refusals are
            // transient, and malformed lines have no usable seq.
            shared.record_error(&session);
            conn.respond(id, ResponseBody::Error(err));
            return;
        }
    };
    // The idempotency gate. `open_session`/`resume_session` are exempt:
    // they address session *identity* rather than session state, are
    // natural-idempotent anyway, and a resume's seq could only be
    // meaningful on the session it is still trying to attach to.
    let guarded = match &body {
        RequestBody::OpenSession | RequestBody::ResumeSession { .. } => None,
        _ => req_seq.filter(|_| session.is_durable()),
    };
    if let Some(rseq) = guarded {
        let replay = {
            let inner = session.inner.lock();
            inner.is_replay(rseq).then(|| inner.replayed(rseq))
        };
        if let Some(cached) = replay {
            // A duplicate of an op that already ran: replay its recorded
            // response (control ops execute inline in queue order, so the
            // original has always settled by now), billing nothing.
            let body = cached.unwrap_or_else(|| ResponseBody::Error(stale_seq_error(rseq)));
            conn.respond(id, body);
            return;
        }
    }
    match body {
        RequestBody::Ping => {
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Ok {
                    cycles: 0,
                    energy_fj: 0.0,
                },
                ResponseBody::Pong,
            );
        }
        RequestBody::Stats => {
            // Reports the account *before* this request, then bills the
            // stats request itself as zero-cycle work.
            let stats = session.inner.lock().stats;
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Ok {
                    cycles: 0,
                    energy_fj: 0.0,
                },
                ResponseBody::Stats(stats),
            );
        }
        RequestBody::LoadModel {
            precision,
            prototypes,
        } => {
            let limits = shared.config.limits;
            if !limits.unmetered() {
                // `load_model` bills real macro work (the norm
                // precompute), so it is metered like any compute request.
                let refusal = session
                    .inner
                    .lock()
                    .rate
                    .admit(&limits, Instant::now())
                    .err();
                if let Some(err) = refusal {
                    finish_control(
                        shared,
                        &conn,
                        &session,
                        id,
                        guarded,
                        Billing::Error,
                        ResponseBody::Error(err),
                    );
                    return;
                }
            }
            match build_model(bank, params, precision, prototypes) {
                Ok((model, cycles, energy_fj)) => {
                    let model = Arc::new(model);
                    match (&shared.persist, session.token.as_deref()) {
                        (Some(p), Some(token)) => {
                            // The journal records the model's *source*
                            // (precision + prototypes); recovery rebuilds
                            // norms and the fused template from it.
                            let ev = Event::Model {
                                token: token.to_string(),
                                precision_bits: model.precision.bits() as u32,
                                prototypes: model.prototypes_q.clone(),
                            };
                            let mut journal = p.begin();
                            session.inner.lock().model = Some(model);
                            p.append(&mut journal, &ev);
                        }
                        _ => session.inner.lock().model = Some(model),
                    }
                    finish_control(
                        shared,
                        &conn,
                        &session,
                        id,
                        guarded,
                        Billing::Ok { cycles, energy_fj },
                        ResponseBody::Ok,
                    );
                }
                Err(msg) => {
                    finish_control(
                        shared,
                        &conn,
                        &session,
                        id,
                        guarded,
                        Billing::Error,
                        ResponseBody::Error(msg.into()),
                    );
                }
            }
        }
        RequestBody::StoreProgram { instrs, name } => {
            let limits = shared.config.limits;
            if let Err(err) = limits.check_program_len(instrs.len()) {
                finish_control(
                    shared,
                    &conn,
                    &session,
                    id,
                    guarded,
                    Billing::Error,
                    ResponseBody::Error(err),
                );
                return;
            }
            let config = *bank.macro_at(0).config();
            let prog = Program::new(instrs);
            // Lint the stream as submitted (diagnostic spans index the
            // client's instruction list, not the optimized one); on a
            // validation error the structured `invalid_program` response
            // carries the same code/index detail instead.
            if let Err(e) = prog.validate(&config) {
                finish_control(
                    shared,
                    &conn,
                    &session,
                    id,
                    guarded,
                    Billing::Error,
                    ResponseBody::Error(ErrorBody::from(&e)),
                );
                return;
            }
            let diagnostics = prog.lint(&config);
            // The submitted stream, kept with the entry: what the journal
            // persists and recovery recompiles (an ephemeral session's
            // programs can become durable later via `open_session`).
            let source = prog.instrs().to_vec();
            let prog = if shared.config.optimize_programs {
                prog.optimize()
            } else {
                prog
            };
            match prog.compile(&config) {
                Ok(compiled) => {
                    // Lock order: the journal, then the registry's global
                    // program quota (durable sessions only), then the
                    // session — the whole store is one journal unit.
                    let p = shared.persist.as_ref().filter(|_| session.is_durable());
                    let mut journal = p.map(|p| p.begin());
                    let mut quota = session.is_durable().then(|| shared.sessions.quota());
                    let mut inner = session.inner.lock();
                    let refusal = if inner.stored.len() >= limits.max_stored_programs {
                        Some(ErrorBody::limit(
                            LimitKind::StoredPrograms,
                            None,
                            format!(
                                "stored-program limit reached ({} per session)",
                                limits.max_stored_programs
                            ),
                        ))
                    } else if quota
                        .as_ref()
                        .is_some_and(|q| q.total_stored >= shared.sessions.caps.max_programs)
                    {
                        Some(ErrorBody::limit(
                            LimitKind::RegistryPrograms,
                            None,
                            format!(
                                "registry-wide stored-program cap reached ({} across all sessions)",
                                shared.sessions.caps.max_programs
                            ),
                        ))
                    } else if name.as_ref().is_some_and(|n| inner.names.contains_key(n)) {
                        Some(ErrorBody::generic(format!(
                            "a stored program named '{}' already exists in this session; \
                             delete it first or pick another name",
                            name.as_ref().expect("checked above")
                        )))
                    } else {
                        None
                    };
                    if let Some(err) = refusal {
                        let body = ResponseBody::Error(err);
                        let seq = guarded.filter(|_| control_consumes_seq(&body));
                        inner.settle(Billing::Error, None, seq, &body);
                        if let (Some(p), Some(journal), Some(token)) =
                            (p, journal.as_mut(), session.token.as_deref())
                        {
                            let ev = persist::exec_event(token, &Billing::Error, None, seq, &body);
                            p.append(journal, &ev);
                        }
                        drop(inner);
                        drop(quota);
                        conn.respond(id, body);
                        return;
                    }
                    let meta = StoredMeta {
                        pid: inner.next_pid,
                        cycles: compiled.cycles(),
                        writes: compiled.write_count() as u64,
                        diagnostics,
                    };
                    let store_ev = match (p, session.token.as_deref()) {
                        (Some(_), Some(token)) => Some(Event::Store {
                            token: token.to_string(),
                            pid: meta.pid,
                            name: name.clone(),
                            instrs: source.clone(),
                        }),
                        _ => None,
                    };
                    inner.next_pid += 1;
                    inner.stored.insert(
                        meta.pid,
                        StoredEntry::new(Arc::new(compiled), name.clone(), source),
                    );
                    if let Some(n) = name {
                        inner.names.insert(n, meta.pid);
                    }
                    if let Some(q) = quota.as_mut() {
                        q.total_stored += 1;
                    }
                    // Validation, lint and lowering are host work, not
                    // macro work: a store bills zero hardware cycles.
                    let body = ResponseBody::Stored(meta);
                    let billing = Billing::Ok {
                        cycles: 0,
                        energy_fj: 0.0,
                    };
                    inner.settle(
                        Billing::Ok {
                            cycles: 0,
                            energy_fj: 0.0,
                        },
                        None,
                        guarded,
                        &body,
                    );
                    if let (Some(p), Some(journal), Some(ev), Some(token)) =
                        (p, journal.as_mut(), store_ev, session.token.as_deref())
                    {
                        p.append(journal, &ev);
                        let ev = persist::exec_event(token, &billing, None, guarded, &body);
                        p.append(journal, &ev);
                    }
                    drop(inner);
                    drop(quota);
                    conn.respond(id, body);
                }
                Err(e) => {
                    finish_control(
                        shared,
                        &conn,
                        &session,
                        id,
                        guarded,
                        Billing::Error,
                        ResponseBody::Error(ErrorBody::from(&e)),
                    );
                }
            }
        }
        RequestBody::ListPrograms => {
            // Pure registry read: zero hardware cycles.
            let body = ResponseBody::Programs(session.inner.lock().program_entries());
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Ok {
                    cycles: 0,
                    energy_fj: 0.0,
                },
                body,
            );
        }
        RequestBody::DeleteProgram { target } => {
            // Lock order: journal, then the registry's quota, then the
            // session — the delete and its billing are one journal unit.
            let p = shared.persist.as_ref().filter(|_| session.is_durable());
            let mut journal = p.map(|p| p.begin());
            let mut quota = session.is_durable().then(|| shared.sessions.quota());
            let mut inner = session.inner.lock();
            let (billing, body, deleted) = match inner.remove_stored(&target) {
                Some(pid) => {
                    if let Some(q) = quota.as_mut() {
                        q.total_stored = q.total_stored.saturating_sub(1);
                    }
                    (
                        Billing::Ok {
                            cycles: 0,
                            energy_fj: 0.0,
                        },
                        ResponseBody::Ok,
                        Some(pid),
                    )
                }
                None => (
                    Billing::Error,
                    ResponseBody::Error(ErrorBody::generic(format!("no {target} in this session"))),
                    None,
                ),
            };
            let seq = guarded.filter(|_| control_consumes_seq(&body));
            inner.settle(billing, None, seq, &body);
            if let (Some(p), Some(journal), Some(token)) =
                (p, journal.as_mut(), session.token.as_deref())
            {
                if let Some(pid) = deleted {
                    let ev = Event::Delete {
                        token: token.to_string(),
                        pid,
                    };
                    p.append(journal, &ev);
                }
                let billing = match deleted {
                    Some(_) => Billing::Ok {
                        cycles: 0,
                        energy_fj: 0.0,
                    },
                    None => Billing::Error,
                };
                let ev = persist::exec_event(token, &billing, None, seq, &body);
                p.append(journal, &ev);
            }
            drop(inner);
            drop(quota);
            conn.respond(id, body);
        }
        RequestBody::OpenSession => {
            // Idempotent by construction: a connection already holding a
            // durable session gets that session's info back rather than a
            // second token. Session-management ops are never billed to
            // the account — it must reflect executed ops exactly,
            // however many opens/resumes the transport needed.
            if session.is_durable() {
                conn.respond(id, ResponseBody::Session(session.info()));
                return;
            }
            // The mint and its journal record are one unit: the guard
            // spans the registry insert and the Open append.
            let p = shared.persist.as_ref();
            let mut journal = p.map(|p| p.begin());
            match shared.sessions.open(&session, Instant::now()) {
                Ok(durable) => {
                    if let (Some(p), Some(journal)) = (p, journal.as_mut()) {
                        if let Some(ev) = persist::open_event(&durable) {
                            p.append(journal, &ev);
                        }
                    }
                    drop(journal);
                    *conn.session.lock() = durable.clone();
                    // If the reader exited while we swapped (it removes
                    // the conn from `conns` *before* detaching the slot's
                    // session), its detach may have hit the old ephemeral
                    // session — re-check liveness and detach the durable
                    // one ourselves so it cannot stay attached forever.
                    if !shared.conns.lock().contains_key(&conn.id) {
                        shared.detach_session(&durable, Instant::now());
                    }
                    conn.respond(id, ResponseBody::Session(durable.info()));
                }
                Err(err) => {
                    drop(journal);
                    conn.respond(id, ResponseBody::Error(err));
                }
            }
        }
        RequestBody::ResumeSession { token } => {
            // The resume and its Attach record are one unit; the old
            // session's detach journals as its own unit afterwards (the
            // journal guard is not reentrant).
            let p = shared.persist.as_ref();
            let mut journal = p.map(|p| p.begin());
            match shared.sessions.resume(&token, Instant::now()) {
                Ok(resumed) => {
                    if let (Some(p), Some(journal), Some(tok)) =
                        (p, journal.as_mut(), resumed.token.as_deref())
                    {
                        let ev = Event::Attach {
                            token: tok.to_string(),
                        };
                        p.append(journal, &ev);
                    }
                    drop(journal);
                    let old = {
                        let mut slot = conn.session.lock();
                        std::mem::replace(&mut *slot, resumed.clone())
                    };
                    // The session this connection held until now goes back
                    // to detached (ephemeral ones just drop).
                    shared.detach_session(&old, Instant::now());
                    // Same reader-exit race as in `open_session`.
                    if !shared.conns.lock().contains_key(&conn.id) {
                        shared.detach_session(&resumed, Instant::now());
                    }
                    conn.respond(id, ResponseBody::Session(resumed.info()));
                }
                Err(err) => {
                    drop(journal);
                    conn.respond(id, ResponseBody::Error(err));
                }
            }
        }
        RequestBody::LintProgram { instrs } => {
            let limits = shared.config.limits;
            if let Err(err) = limits.check_program_len(instrs.len()) {
                finish_control(
                    shared,
                    &conn,
                    &session,
                    id,
                    guarded,
                    Billing::Error,
                    ResponseBody::Error(err),
                );
                return;
            }
            let config = *bank.macro_at(0).config();
            let diagnostics = Program::new(instrs).lint(&config);
            // Static analysis is pure host work: zero hardware cycles.
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Ok {
                    cycles: 0,
                    energy_fj: 0.0,
                },
                ResponseBody::Diagnostics(diagnostics),
            );
        }
        RequestBody::Shutdown => {
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Ok {
                    cycles: 0,
                    energy_fj: 0.0,
                },
                ResponseBody::Ok,
            );
            shared.begin_shutdown();
        }
        other => {
            // Compute bodies never reach here (see `process_batch`).
            finish_control(
                shared,
                &conn,
                &session,
                id,
                guarded,
                Billing::Error,
                ResponseBody::Error(format!("unexpected control request: {other:?}").into()),
            );
        }
    }
}

/// Validates and builds a session model, computing the prototype norms on
/// macro 0 of the bank so the `load_model` request is billed the exact
/// norm-precompute work (the per-batch half of the classifier's amortized
/// accounting). The fused all-prototypes classify program is compiled
/// **here, once per model** — every `classify` request then runs the
/// pre-resolved op array with just the sample's chunks rebound, skipping
/// per-call program building, validation and lowering entirely.
pub(crate) fn build_model(
    bank: &mut MacroBank,
    params: &EnergyParams,
    precision: bpimc_core::Precision,
    prototypes_q: Vec<Vec<u64>>,
) -> Result<(Model, u64, f64), String> {
    if prototypes_q.is_empty() {
        return Err("'prototypes' must not be empty".to_string());
    }
    let dim = prototypes_q[0].len();
    if dim == 0 {
        return Err("prototypes must not be empty vectors".to_string());
    }
    crate::exec::check_product_lanes(precision, bank.macro_at(0).cols())?;
    for (c, p) in prototypes_q.iter().enumerate() {
        if p.len() != dim {
            return Err(format!(
                "prototype {c} has {} features but prototype 0 has {dim}",
                p.len()
            ));
        }
        if let Some(&w) = p.iter().find(|&&w| w > precision.max_value()) {
            return Err(format!(
                "prototype {c} value {w} does not fit {} bits",
                precision.bits()
            ));
        }
    }
    let mac = bank.macro_at(0);
    let config = *mac.config();
    let cols = mac.cols();
    mac.clear_activity();
    let norms = prototype_norms(mac, precision, &prototypes_q);
    let cycles = mac.activity().total_cycles();
    let energy_fj = params.log_energy_fj(mac.activity());
    mac.clear_activity();
    // Compile the classify template against an all-zero sample; the x
    // writes are rebound per request (`CompiledProgram::run_with_inputs`).
    let template = classify_program(precision, &prototypes_q, &vec![0u64; dim], cols)
        .compile(&config)
        .map_err(|e| format!("classify template failed to compile: {e}"))?;
    Ok((
        Model {
            precision,
            prototypes_q,
            norms,
            template,
        },
        cycles,
        energy_fj,
    ))
}
