//! The threaded TCP service: accept loop, per-connection readers, bounded
//! request queue, and the dispatcher that batches onto the `MacroBank`.

use crate::exec::{is_compute, run_compute, ComputeJob, Model};
use bpimc_core::{
    MacroBank, MacroConfig, Request, RequestBody, Response, ResponseBody, SessionActivity,
};
use bpimc_metrics::{paper_calibrated_params, EnergyParams};
use bpimc_nn::prototype_norms;
use bpimc_stats::parallel::{lock_unpoisoned, worker_count};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tunables of one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Macros in the shared bank (defaults to the host's parallelism).
    pub macros: usize,
    /// Bound of the request queue. A full queue blocks connection readers,
    /// pushing backpressure into TCP flow control instead of dropping or
    /// rejecting requests.
    pub queue_capacity: usize,
    /// Most requests the dispatcher drains into one bank batch.
    pub batch_max: usize,
    /// Honour `inject_panic` requests (testing/chaos only).
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let macros = worker_count(usize::MAX);
        Self {
            macros,
            queue_capacity: 1024,
            batch_max: 4 * macros.max(1),
            fault_injection: false,
        }
    }
}

/// Hard cap on one request line. Readers discard over-long lines (and
/// answer with an error) instead of buffering them, so a client streaming
/// an unterminated request cannot grow server memory without bound.
const MAX_LINE_BYTES: usize = 4 << 20;

/// One queued request with the connection it came from. Malformed lines
/// travel through the queue too (`body: Err`), so their error responses
/// keep the per-connection FIFO ordering the protocol promises.
struct Item {
    conn: Arc<Conn>,
    id: u64,
    body: Result<RequestBody, String>,
}

/// The bounded FIFO between connection readers and the dispatcher.
struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<Item>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full (the backpressure point). `Err(())`
    /// means the server is shutting down and the item was not enqueued.
    fn push(&self, item: Item) -> Result<(), ()> {
        let mut state = lock_unpoisoned(&self.state);
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.closed {
            return Err(());
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until items are available; drains up to `max` in FIFO order.
    /// `None` means closed **and** fully drained — queued work always gets
    /// responses before shutdown completes.
    fn pop_batch(&self, max: usize) -> Option<Vec<Item>> {
        let mut state = lock_unpoisoned(&self.state);
        while state.items.is_empty() && !state.closed {
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.items.is_empty() {
            return None;
        }
        let take = state.items.len().min(max.max(1));
        let batch: Vec<Item> = state.items.drain(..take).collect();
        drop(state);
        self.not_full.notify_all();
        Some(batch)
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Per-session state: the activity account plus the loaded model.
struct SessionState {
    stats: SessionActivity,
    model: Option<Arc<Model>>,
}

/// One client connection.
struct Conn {
    id: u64,
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    session: Mutex<SessionState>,
}

impl Conn {
    /// Writes one response line; errors are ignored (a vanished client is
    /// detected by its reader thread, not here).
    fn respond(&self, id: u64, body: ResponseBody) {
        let line = Response { id, body }.to_json_line();
        let mut w = lock_unpoisoned(&self.writer);
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }

    fn record_ok(&self, cycles: u64, energy_fj: f64) {
        lock_unpoisoned(&self.session)
            .stats
            .record_ok(cycles, energy_fj);
    }

    fn record_error(&self) {
        lock_unpoisoned(&self.session).stats.record_error();
    }
}

/// State shared by the accept loop, readers, dispatcher and handle.
struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    queue: Queue,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    shutting_down: AtomicBool,
}

impl Shared {
    /// Idempotent: stops the accept loop and closes the queue. Already
    /// queued requests still drain and get responses; new pushes fail.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
    }

    /// Closes every live connection so reader threads see EOF and exit.
    fn close_all_conns(&self) {
        for conn in lock_unpoisoned(&self.conns).values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// The service entry point; see the crate documentation for the protocol.
pub struct Server;

impl Server {
    /// Binds the service and spawns its accept and dispatcher threads.
    /// `addr` may use port 0 for an ephemeral port; the bound address is
    /// available as [`ServerHandle::local_addr`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            addr,
            queue: Queue::new(config.queue_capacity),
            conns: Mutex::new(HashMap::new()),
            readers: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
        });

        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("bpimc-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawning the accept thread")
        };
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("bpimc-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the dispatcher thread")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates a graceful shutdown and waits for every thread to finish:
    /// queued requests drain with responses, then connections close.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down for another reason (a client's
    /// `shutdown` request), then joins every thread.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *lock_unpoisoned(&self.shared.readers));
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            id,
            stream,
            writer: Mutex::new(write_half),
            session: Mutex::new(SessionState {
                stats: SessionActivity::new(),
                model: None,
            }),
        });
        lock_unpoisoned(&shared.conns).insert(id, conn.clone());
        // Re-check AFTER registering: if a shutdown slipped in between the
        // loop-top check and the insert, `close_all_conns` may already have
        // run without seeing this connection — sever it here so its reader
        // cannot outlive the shutdown and wedge `join`.
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let reader_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bpimc-conn-{id}"))
            .spawn(move || reader_loop(conn, &reader_shared))
            .expect("spawning a connection reader");
        let mut readers = lock_unpoisoned(&shared.readers);
        // Reap finished readers so a long-running server does not
        // accumulate one JoinHandle per connection it ever accepted.
        let mut i = 0;
        while i < readers.len() {
            if readers[i].is_finished() {
                let _ = readers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        readers.push(handle);
    }
}

/// How one capped line read ended.
enum LineRead {
    /// Connection closed (or errored) with nothing buffered.
    Eof,
    /// A complete line is in the buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was discarded up
    /// to (and including) the next newline.
    TooLong,
}

/// `read_line` with a hard size cap: over-long lines are *discarded* in
/// chunks rather than buffered, bounding per-connection memory.
fn read_line_capped(reader: &mut BufReader<TcpStream>, line: &mut String, cap: usize) -> LineRead {
    use std::io::BufRead;
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(_) => return LineRead::Eof,
        };
        if available.is_empty() {
            // EOF: a trailing unterminated line still counts as a line.
            if buf.is_empty() {
                return LineRead::Eof;
            }
            *line = String::from_utf8_lossy(&buf).into_owned();
            return LineRead::Line;
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |p| p);
        if buf.len() + take > cap {
            // Too long: drop what we have and skip to the next newline.
            buf.clear();
            loop {
                let chunk = match reader.fill_buf() {
                    Ok(c) => c,
                    Err(_) => return LineRead::Eof,
                };
                if chunk.is_empty() {
                    return LineRead::TooLong;
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(p) => {
                        reader.consume(p + 1);
                        return LineRead::TooLong;
                    }
                    None => {
                        let n = chunk.len();
                        reader.consume(n);
                    }
                }
            }
        }
        buf.extend_from_slice(&available[..take]);
        match newline {
            Some(p) => {
                reader.consume(p + 1);
                *line = String::from_utf8_lossy(&buf).into_owned();
                return LineRead::Line;
            }
            None => reader.consume(take),
        }
    }
}

fn reader_loop(conn: Arc<Conn>, shared: &Arc<Shared>) {
    let Ok(read_half) = conn.stream.try_clone() else {
        lock_unpoisoned(&shared.conns).remove(&conn.id);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        let (id, body) = match read_line_capped(&mut reader, &mut line, MAX_LINE_BYTES) {
            LineRead::Eof => break,
            LineRead::TooLong => (
                0,
                Err(format!("request line exceeds {MAX_LINE_BYTES} bytes")),
            ),
            LineRead::Line => {
                if line.trim().is_empty() {
                    continue;
                }
                match Request::parse(&line) {
                    Ok(req) => (req.id, Ok(req.body)),
                    // Malformed lines go through the queue like any other
                    // request, so their error responses keep the
                    // per-connection FIFO ordering. A line whose id is
                    // unreadable is answered with the documented sentinel
                    // id 0 (`peek_id` returns `None` for those).
                    Err(e) => (Request::peek_id(&line).unwrap_or(0), Err(e.to_string())),
                }
            }
        };
        if shared
            .queue
            .push(Item {
                conn: conn.clone(),
                id,
                body,
            })
            .is_err()
        {
            // Queue closed: the dispatcher will never answer. This is the
            // one response written off-order, and only during shutdown.
            conn.record_error();
            conn.respond(id, ResponseBody::Error("server is shutting down".into()));
            break;
        }
    }
    lock_unpoisoned(&shared.conns).remove(&conn.id);
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let config = shared.config;
    let mut bank = MacroBank::new(config.macros.max(1), MacroConfig::paper_macro());
    let params = paper_calibrated_params();
    while let Some(batch) = shared.queue.pop_batch(config.batch_max) {
        process_batch(batch, &mut bank, &params, shared);
    }
    // Queue closed and drained: sever the connections so readers exit.
    shared.close_all_conns();
}

/// Processes one drained batch in FIFO order: runs of consecutive compute
/// requests execute as one bank batch (requests spread across macros),
/// control requests execute inline between runs. Responses and session
/// accounting happen in arrival order, so each session observes its own
/// requests sequentially.
fn process_batch(
    batch: Vec<Item>,
    bank: &mut MacroBank,
    params: &EnergyParams,
    shared: &Arc<Shared>,
) {
    let is_compute_item = |item: &Item| matches!(&item.body, Ok(body) if is_compute(body));
    let mut iter = batch.into_iter().peekable();
    while let Some(item) = iter.next() {
        if is_compute_item(&item) {
            let mut meta = Vec::new();
            let mut jobs = Vec::new();
            let mut next = Some(item);
            loop {
                let it = match next.take() {
                    Some(it) => it,
                    None => match iter.next_if(is_compute_item) {
                        Some(it) => it,
                        None => break,
                    },
                };
                let body = it.body.expect("compute items carry a parsed body");
                let model = match &body {
                    RequestBody::Classify { .. } => lock_unpoisoned(&it.conn.session).model.clone(),
                    _ => None,
                };
                meta.push((it.conn, it.id));
                jobs.push(ComputeJob {
                    body,
                    model,
                    fault_injection: shared.config.fault_injection,
                });
            }
            let results = bank.try_run_batch(&jobs, |mac, job| run_compute(mac, job, params));
            for ((conn, id), result) in meta.into_iter().zip(results) {
                match result {
                    Ok((Ok(body), cycles, energy_fj)) => {
                        conn.record_ok(cycles, energy_fj);
                        conn.respond(id, body);
                    }
                    Ok((Err(msg), _, _)) => {
                        conn.record_error();
                        conn.respond(id, ResponseBody::Error(msg));
                    }
                    Err(panic) => {
                        conn.record_error();
                        conn.respond(id, ResponseBody::Error(panic.to_string()));
                    }
                }
            }
        } else {
            handle_control(item, bank, params, shared);
        }
    }
}

fn handle_control(item: Item, bank: &mut MacroBank, params: &EnergyParams, shared: &Arc<Shared>) {
    let Item { conn, id, body } = item;
    let body = match body {
        Ok(body) => body,
        Err(msg) => {
            // A line that never parsed: answered here, in queue order.
            conn.record_error();
            conn.respond(id, ResponseBody::Error(msg));
            return;
        }
    };
    match body {
        RequestBody::Ping => {
            conn.record_ok(0, 0.0);
            conn.respond(id, ResponseBody::Pong);
        }
        RequestBody::Stats => {
            // Reports the account *before* this request, then bills the
            // stats request itself as zero-cycle work.
            let stats = lock_unpoisoned(&conn.session).stats;
            conn.record_ok(0, 0.0);
            conn.respond(id, ResponseBody::Stats(stats));
        }
        RequestBody::LoadModel {
            precision,
            prototypes,
        } => match build_model(bank, params, precision, prototypes) {
            Ok((model, cycles, energy_fj)) => {
                let mut session = lock_unpoisoned(&conn.session);
                session.model = Some(Arc::new(model));
                session.stats.record_ok(cycles, energy_fj);
                drop(session);
                conn.respond(id, ResponseBody::Ok);
            }
            Err(msg) => {
                conn.record_error();
                conn.respond(id, ResponseBody::Error(msg));
            }
        },
        RequestBody::Shutdown => {
            conn.record_ok(0, 0.0);
            conn.respond(id, ResponseBody::Ok);
            shared.begin_shutdown();
        }
        other => {
            // Compute bodies never reach here (see `process_batch`).
            conn.record_error();
            conn.respond(
                id,
                ResponseBody::Error(format!("unexpected control request: {other:?}")),
            );
        }
    }
}

/// Validates and builds a session model, computing the prototype norms on
/// macro 0 of the bank so the `load_model` request is billed the exact
/// norm-precompute work (the per-batch half of the classifier's amortized
/// accounting).
fn build_model(
    bank: &mut MacroBank,
    params: &EnergyParams,
    precision: bpimc_core::Precision,
    prototypes_q: Vec<Vec<u64>>,
) -> Result<(Model, u64, f64), String> {
    if prototypes_q.is_empty() {
        return Err("'prototypes' must not be empty".to_string());
    }
    let dim = prototypes_q[0].len();
    if dim == 0 {
        return Err("prototypes must not be empty vectors".to_string());
    }
    crate::exec::check_product_lanes(precision, bank.macro_at(0).cols())?;
    for (c, p) in prototypes_q.iter().enumerate() {
        if p.len() != dim {
            return Err(format!(
                "prototype {c} has {} features but prototype 0 has {dim}",
                p.len()
            ));
        }
        if let Some(&w) = p.iter().find(|&&w| w > precision.max_value()) {
            return Err(format!(
                "prototype {c} value {w} does not fit {} bits",
                precision.bits()
            ));
        }
    }
    let mac = bank.macro_at(0);
    mac.clear_activity();
    let norms = prototype_norms(mac, precision, &prototypes_q);
    let cycles = mac.activity().total_cycles();
    let energy_fj = params.log_energy_fj(mac.activity());
    mac.clear_activity();
    Ok((
        Model {
            precision,
            prototypes_q,
            norms,
        },
        cycles,
        energy_fj,
    ))
}
