//! Deterministic chaos injection: the [`FaultPlan`].
//!
//! A plan is a pure function from `(seed, connection id, request
//! sequence)` to a fault decision — no RNG state, no locks. The same plan
//! on the same request stream injects the same faults every run, so chaos
//! tests can precompute exactly which requests will panic, stall or drop
//! and assert the exact accounting that must survive them. Probabilities
//! are per-mille (‰): `panic_per_mille: 50` panics 5% of compute
//! requests.

use std::time::Duration;

/// What (if anything) to do to one compute request's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeFault {
    /// Panic the worker job (contained per-job; the request answers with
    /// an error and is billed as one).
    Panic,
    /// Sleep this long before executing (a slow macro / contended bank).
    Delay(Duration),
}

/// What (if anything) to do to one request's response delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Stall the connection's response writer this long before the write
    /// (a peer reading sluggishly; exercises the writer-thread path).
    Stall(Duration),
    /// Sever the connection instead of responding (a client vanishing
    /// mid-request).
    Drop,
}

/// A seeded, deterministic schedule of injected faults.
///
/// The default plan injects nothing and honours nothing; it is a handful
/// of integer compares on the hot path. `inject_panic_op` preserves the
/// old `--fault-injection` behaviour (honour explicit `inject_panic`
/// requests) independently of the probabilistic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the decision hash; same seed, same schedule.
    pub seed: u64,
    /// Per-mille of compute requests whose worker job panics.
    pub panic_per_mille: u16,
    /// Per-mille of compute requests delayed by `delay_ms` before running.
    pub delay_per_mille: u16,
    /// Injected execution delay, milliseconds.
    pub delay_ms: u64,
    /// Per-mille of responses whose writer stalls `stall_ms` first.
    pub stall_per_mille: u16,
    /// Injected writer stall, milliseconds.
    pub stall_ms: u64,
    /// Per-mille of responses replaced by severing the connection.
    pub drop_per_mille: u16,
    /// Honour explicit `inject_panic` requests (the legacy
    /// `--fault-injection` switch).
    pub inject_panic_op: bool,
}

impl FaultPlan {
    /// The inert plan: no injected faults, `inject_panic` refused.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The legacy `--fault-injection` plan: no schedule, but explicit
    /// `inject_panic` requests are honoured.
    pub fn inject_panic_only() -> FaultPlan {
        FaultPlan {
            inject_panic_op: true,
            ..FaultPlan::default()
        }
    }

    /// True when the probabilistic schedule can fire at all.
    pub fn is_active(&self) -> bool {
        self.panic_per_mille > 0
            || self.delay_per_mille > 0
            || self.stall_per_mille > 0
            || self.drop_per_mille > 0
    }

    /// The execution fault (if any) for request `seq` on connection
    /// `conn`. Pure: tests and load generators call this to predict the
    /// schedule. Panic wins over delay when both would fire.
    pub fn compute_fault(&self, conn: u64, seq: u64) -> Option<ComputeFault> {
        if self.roll(conn, seq, 0x70616e6963, self.panic_per_mille) {
            return Some(ComputeFault::Panic);
        }
        if self.roll(conn, seq, 0x64656c6179, self.delay_per_mille) {
            return Some(ComputeFault::Delay(Duration::from_millis(self.delay_ms)));
        }
        None
    }

    /// The response-delivery fault (if any) for request `seq` on
    /// connection `conn`. Drop wins over stall when both would fire.
    pub fn response_fault(&self, conn: u64, seq: u64) -> Option<ResponseFault> {
        if self.roll(conn, seq, 0x64726f70, self.drop_per_mille) {
            return Some(ResponseFault::Drop);
        }
        if self.roll(conn, seq, 0x7374616c6c, self.stall_per_mille) {
            return Some(ResponseFault::Stall(Duration::from_millis(self.stall_ms)));
        }
        None
    }

    /// True when any fault in the plan targets connection `conn` within
    /// its first `requests` requests — chaos tests use this to find (by
    /// seed search) connections guaranteed fault-free.
    pub fn touches_conn(&self, conn: u64, requests: u64) -> bool {
        (0..requests).any(|seq| {
            self.compute_fault(conn, seq).is_some() || self.response_fault(conn, seq).is_some()
        })
    }

    fn roll(&self, conn: u64, seq: u64, salt: u64, per_mille: u16) -> bool {
        if per_mille == 0 {
            return false;
        }
        mix(self.seed ^ salt, conn, seq) % 1000 < per_mille as u64
    }
}

/// splitmix64-style avalanche over (seed, conn, seq): cheap, stateless,
/// and well distributed even for consecutive inputs.
fn mix(seed: u64, conn: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(conn.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(seq.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(!plan.inject_panic_op);
        for seq in 0..1000 {
            assert_eq!(plan.compute_fault(1, seq), None);
            assert_eq!(plan.response_fault(1, seq), None);
        }
        assert!(FaultPlan::inject_panic_only().inject_panic_op);
        assert!(!FaultPlan::inject_panic_only().is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let plan = FaultPlan {
            seed: 42,
            panic_per_mille: 100,
            delay_per_mille: 100,
            delay_ms: 5,
            stall_per_mille: 100,
            stall_ms: 5,
            drop_per_mille: 100,
            ..FaultPlan::default()
        };
        let a: Vec<_> = (0..200).map(|s| plan.compute_fault(3, s)).collect();
        let b: Vec<_> = (0..200).map(|s| plan.compute_fault(3, s)).collect();
        assert_eq!(a, b, "same plan, same schedule");
        let other = FaultPlan { seed: 43, ..plan };
        let c: Vec<_> = (0..200).map(|s| other.compute_fault(3, s)).collect();
        assert_ne!(a, c, "a different seed reshuffles the schedule");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            seed: 7,
            panic_per_mille: 100, // 10%
            ..FaultPlan::default()
        };
        let n = 10_000;
        let hits = (0..n)
            .filter(|&s| plan.compute_fault(1, s) == Some(ComputeFault::Panic))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "panic rate {rate}");
    }

    #[test]
    fn touches_conn_finds_clean_connections() {
        let plan = FaultPlan {
            seed: 1,
            panic_per_mille: 30,
            ..FaultPlan::default()
        };
        // Somewhere in the first hundred connections there is both a
        // touched one and a clean one for a 40-request run.
        let touched = (1..100).filter(|&c| plan.touches_conn(c, 40)).count();
        assert!(touched > 0, "some connection is touched");
        assert!(touched < 99, "some connection is clean");
    }
}
