//! Guardrail and chaos tests: per-session limits, deadlines, admission
//! control with hysteresis, and the seeded deterministic fault plan —
//! all asserted with the same exact-accounting ground truth the
//! integration suite uses (direct `ImcMacro` replay).

use bpimc_core::{ImcMacro, MacroConfig, Precision, SessionActivity};
use bpimc_metrics::paper_calibrated_params;
use bpimc_nn::imc_dot;
use bpimc_server::{
    Client, ClientError, FaultPlan, RetryPolicy, Server, ServerConfig, ServerHandle, SessionLimits,
};
use std::time::{Duration, Instant};

fn start(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// The exact cycles/energy one `dot(P8, x, w)` bills, measured on a
/// private macro exactly the way the server measures it.
fn dot_cost(x: &[u64], w: &[u64]) -> (u64, f64) {
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    let params = paper_calibrated_params();
    mac.clear_activity();
    imc_dot(&mut mac, Precision::P8, x, w);
    let cycles = mac.activity().total_cycles();
    let energy = params.log_energy_fj(mac.activity());
    (cycles, energy)
}

// ---------------------------------------------------------------------
// Per-limit `limit_exceeded` errors
// ---------------------------------------------------------------------

#[test]
fn cycle_budget_trips_names_itself_and_refills() {
    let (cost, _) = dot_cost(&[1, 2, 3], &[4, 5, 6]);
    assert!(cost > 1);
    // Admission is check-then-overshoot: a request is admitted while the
    // window's spend is under budget, and its full cost is billed even
    // when that overshoots. A budget below one dot's cost admits the
    // first dot (empty window) and refuses the second.
    let handle = start(ServerConfig {
        limits: SessionLimits {
            max_cycles_per_sec: Some(cost / 2),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    assert_eq!(
        client
            .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
            .expect("first dot"),
        4 + 10 + 18
    );
    match client.dot(Precision::P8, &[1, 2, 3], &[4, 5, 6]) {
        Err(e @ ClientError::Server(_)) => {
            assert!(e.is_limit_exceeded(), "{e}");
            let ClientError::Server(body) = &e else {
                unreachable!()
            };
            assert_eq!(body.limit, Some(bpimc_core::LimitKind::CycleRate));
            assert!(
                e.retry_after().is_some_and(|d| d <= Duration::from_secs(1)),
                "retry-after hint within the window"
            );
            assert!(body.message.contains("cycle budget"), "{body}");
        }
        other => panic!("expected limit_exceeded, got {other:?}"),
    }
    // The refusal is billed as an error, not as cycles (`requests`
    // counts errored requests too).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.cycles, cost);

    // The next window refills the budget.
    std::thread::sleep(Duration::from_millis(1100));
    assert_eq!(
        client
            .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
            .expect("refilled"),
        32
    );
    handle.shutdown();
}

#[test]
fn energy_budget_trips_independently_of_cycles() {
    let (_, energy) = dot_cost(&[9, 9], &[9, 9]);
    assert!(energy > 0.0);
    let handle = start(ServerConfig {
        limits: SessionLimits {
            max_energy_fj_per_sec: Some(energy * 0.5),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client
        .dot(Precision::P8, &[9, 9], &[9, 9])
        .expect("first dot");
    match client.dot(Precision::P8, &[9, 9], &[9, 9]) {
        Err(ClientError::Server(body)) => {
            assert_eq!(body.kind, bpimc_core::ErrorKind::LimitExceeded);
            assert_eq!(body.limit, Some(bpimc_core::LimitKind::EnergyRate));
            assert!(body.message.contains("energy budget"), "{body}");
        }
        other => panic!("expected limit_exceeded, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn program_length_limit_applies_to_exec_and_store() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig {
        limits: SessionLimits {
            max_program_instrs: Some(8),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let make = |pairs: usize| {
        let mut b = ProgramBuilder::new();
        for _ in 0..pairs {
            let x = b.write(Precision::P8, vec![1]);
            b.read(x, Precision::P8, 1);
        }
        b.finish()
    };
    let small = make(3); // 6 instructions: fits
    let big = make(6); // 12 instructions: over the cap
    assert!(small.instrs().len() <= 8 && big.instrs().len() > 8);

    client.exec_program(&small).expect("under the cap");
    for result in [
        client.exec_program(&big).map(|_| ()),
        client.store_program(&big).map(|_| ()),
    ] {
        match result {
            Err(ClientError::Server(body)) => {
                assert_eq!(body.kind, bpimc_core::ErrorKind::LimitExceeded);
                assert_eq!(body.limit, Some(bpimc_core::LimitKind::ProgramLength));
                assert!(body.message.contains("12 instructions"), "{body}");
            }
            other => panic!("expected program_length limit, got {other:?}"),
        }
    }
    // A small program still stores and the session survives.
    client.store_program(&small).expect("store under the cap");
    handle.shutdown();
}

#[test]
fn inflight_cap_sheds_excess_pipelined_requests_in_order() {
    use bpimc_core::{RequestBody, ResponseBody};

    // Delay every compute request so a pipelining client can overrun its
    // in-flight cap before the dispatcher drains anything.
    let handle = start(ServerConfig {
        macros: 1,
        batch_max: 1,
        faults: FaultPlan {
            seed: 1,
            delay_per_mille: 1000,
            delay_ms: 60,
            ..FaultPlan::default()
        },
        limits: SessionLimits {
            max_inflight: Some(3),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let total = 10u64;
    let mut ids = Vec::new();
    for i in 0..total {
        let id = client
            .send(RequestBody::Dot {
                precision: Precision::P8,
                x: vec![i, 1],
                w: vec![2, 3],
            })
            .expect("send");
        ids.push(id);
    }
    let mut rejected = 0u64;
    for (i, id) in ids.iter().enumerate() {
        let resp = client.recv().expect("recv");
        // Responses arrive strictly in request order, refusals included.
        assert_eq!(resp.id, *id);
        match resp.body {
            ResponseBody::Scalar(v) => assert_eq!(v, (i as u64) * 2 + 3),
            ResponseBody::Error(body) => {
                assert_eq!(body.kind, bpimc_core::ErrorKind::LimitExceeded);
                assert_eq!(body.limit, Some(bpimc_core::LimitKind::Inflight));
                rejected += 1;
            }
            other => panic!("unexpected body {other:?}"),
        }
    }
    assert!(
        rejected >= 1,
        "pipelining 10 delayed requests over a cap of 3 must shed some"
    );
    // The session keeps working at a polite pace afterwards.
    assert_eq!(client.dot(Precision::P8, &[5], &[5]).expect("dot"), 25);
    handle.shutdown();
}

#[test]
fn stored_program_cap_answers_structured_limit() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig {
        limits: SessionLimits {
            max_stored_programs: 2,
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let make = |v: u64| {
        let mut b = ProgramBuilder::new();
        let x = b.write(Precision::P8, vec![v]);
        b.read(x, Precision::P8, 1);
        b.finish()
    };
    client.store_program(&make(1)).expect("store 1");
    client.store_program(&make(2)).expect("store 2");
    match client.store_program(&make(3)) {
        Err(ClientError::Server(body)) => {
            assert_eq!(body.kind, bpimc_core::ErrorKind::LimitExceeded);
            assert_eq!(body.limit, Some(bpimc_core::LimitKind::StoredPrograms));
            assert!(body.message.contains("2 per session"), "{body}");
        }
        other => panic!("expected stored_programs limit, got {other:?}"),
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

#[test]
fn deadline_expires_in_queue_and_mid_batch() {
    use bpimc_core::RequestBody;

    // One macro, one-request batches, and a 120 ms injected delay on
    // every compute request: a short-deadline request queued behind a
    // delayed one expires while waiting.
    let handle = start(ServerConfig {
        macros: 1,
        batch_max: 1,
        faults: FaultPlan {
            seed: 1,
            delay_per_mille: 1000,
            delay_ms: 120,
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // First request: no deadline, delayed 120 ms but correct.
    client
        .send(RequestBody::Dot {
            precision: Precision::P8,
            x: vec![2],
            w: vec![3],
        })
        .expect("send blocker");
    // Second request: 30 ms deadline, expires behind the blocker.
    client.set_timeout_ms(Some(30));
    client
        .send(RequestBody::Dot {
            precision: Precision::P8,
            x: vec![4],
            w: vec![5],
        })
        .expect("send doomed");
    client.set_timeout_ms(None);

    let first = client.recv().expect("blocker response");
    assert_eq!(first.body, bpimc_core::ResponseBody::Scalar(6));
    let doomed = client.recv().expect("doomed response");
    match doomed.body {
        bpimc_core::ResponseBody::Error(body) => {
            assert_eq!(body.kind, bpimc_core::ErrorKind::DeadlineExceeded);
            assert!(body.message.contains("expired"), "{body}");
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // The expired request billed no cycles — only the blocker's work.
    let (blocker_cost, _) = dot_cost(&[2], &[3]);
    client.set_timeout_ms(None);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.cycles, blocker_cost, "expired request billed nothing");

    // A generous deadline sails through.
    client.set_timeout_ms(Some(5_000));
    assert_eq!(client.dot(Precision::P8, &[6], &[7]).expect("dot"), 42);
    handle.shutdown();
}

#[test]
fn deadline_expiring_mid_batch_abandons_before_executing() {
    use bpimc_core::RequestBody;

    // Large batch: the blocker and the doomed request drain in the SAME
    // bank batch, so the doomed one passes the dispatcher's in-queue
    // check and expires at job start (the worker-side re-check), while
    // its 120 ms-delayed sibling occupies the only macro.
    let handle = start(ServerConfig {
        macros: 1,
        batch_max: 64,
        faults: FaultPlan {
            seed: 1,
            delay_per_mille: 1000,
            delay_ms: 120,
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    client.set_timeout_ms(Some(40));
    let mut ids = Vec::new();
    for i in 0..4u64 {
        ids.push(
            client
                .send(RequestBody::Dot {
                    precision: Precision::P8,
                    x: vec![i],
                    w: vec![1],
                })
                .expect("send"),
        );
    }
    client.set_timeout_ms(None);
    let mut expired = 0;
    for id in ids {
        let resp = client.recv().expect("recv");
        assert_eq!(resp.id, id);
        if let bpimc_core::ResponseBody::Error(body) = resp.body {
            assert_eq!(body.kind, bpimc_core::ErrorKind::DeadlineExceeded);
            expired += 1;
        }
    }
    // Each delayed dot takes 120 ms on the single macro; with a 40 ms
    // deadline at least the tail of the run must expire (in queue or at
    // job start), and at most the head request can finish.
    assert!(
        expired >= 2,
        "only {expired} of 4 short-deadline requests expired"
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Admission control (shed watermarks + hysteresis)
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_with_hysteresis_and_recovers() {
    use std::io::Write;

    // Tiny queue shares and low watermarks so a single pipelining flood
    // crosses shed_high quickly; every compute request is delayed so the
    // backlog builds faster than it drains.
    let mut config = ServerConfig {
        macros: 1,
        batch_max: 1,
        faults: FaultPlan {
            seed: 3,
            delay_per_mille: 1000,
            delay_ms: 30,
            ..FaultPlan::default()
        },
        ..ServerConfig::default().with_queue_capacity(64)
    };
    config.shed_high = 8;
    config.shed_low = 2;
    let handle = start(config);
    let addr = handle.local_addr();

    // Flood: 40 pipelined dots on a raw socket (responses unread until
    // the end, so the queue really fills).
    let mut flood = std::net::TcpStream::connect(addr).expect("connect flood");
    for i in 0..40u64 {
        let line = format!("{{\"id\":{i},\"op\":\"dot\",\"precision\":8,\"x\":[1],\"w\":[{i}]}}\n");
        flood.write_all(line.as_bytes()).expect("write");
    }

    // While the backlog is over the watermark, a fresh client's compute
    // request is shed with a structured `overloaded` error…
    std::thread::sleep(Duration::from_millis(50));
    let mut probe = Client::connect(addr).expect("connect probe");
    let mut saw_shed = false;
    for _ in 0..20 {
        match probe.dot(Precision::P8, &[1], &[1]) {
            Err(e) if e.is_overloaded() => {
                assert!(
                    e.retry_after().is_some(),
                    "overloaded errors carry a retry-after hint"
                );
                saw_shed = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(other) => panic!("unexpected error during overload: {other}"),
        }
    }
    assert!(saw_shed, "the probe never saw an `overloaded` shed");
    // …but control ops are always admitted: health checks survive.
    probe.ping().expect("ping during overload");

    // Drain the flood's responses; the backlog empties past shed_low.
    use std::io::{BufRead, BufReader};
    let mut reader = BufReader::new(flood.try_clone().expect("clone"));
    let mut reply = String::new();
    for _ in 0..40 {
        reply.clear();
        reader.read_line(&mut reply).expect("flood response");
    }

    // Recovered: compute requests are admitted again.
    let mut ok = false;
    for _ in 0..50 {
        match probe.dot(Precision::P8, &[2], &[21]) {
            Ok(v) => {
                assert_eq!(v, 42);
                ok = true;
                break;
            }
            Err(e) if e.is_overloaded() => std::thread::sleep(Duration::from_millis(10)),
            Err(other) => panic!("unexpected error during recovery: {other}"),
        }
    }
    assert!(ok, "the server never recovered from shedding");
    drop(flood);
    handle.shutdown();
}

#[test]
fn client_retry_policy_rides_out_overload() {
    use std::io::Write;

    let mut config = ServerConfig {
        macros: 1,
        batch_max: 1,
        faults: FaultPlan {
            seed: 5,
            delay_per_mille: 1000,
            delay_ms: 20,
            ..FaultPlan::default()
        },
        ..ServerConfig::default().with_queue_capacity(64)
    };
    config.shed_high = 6;
    config.shed_low = 2;
    let handle = start(config);
    let addr = handle.local_addr();

    let mut flood = std::net::TcpStream::connect(addr).expect("connect flood");
    for i in 0..30u64 {
        let line = format!("{{\"id\":{i},\"op\":\"dot\",\"precision\":8,\"x\":[1],\"w\":[1]}}\n");
        flood.write_all(line.as_bytes()).expect("write");
    }
    std::thread::sleep(Duration::from_millis(30));

    // With a retry policy the client absorbs `overloaded` sheds itself:
    // by the time the attempts are spent the flood has drained.
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(Some(RetryPolicy {
        max_attempts: 40,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
    }));
    assert_eq!(
        client.dot(Precision::P8, &[6], &[7]).expect("retried dot"),
        42
    );
    drop(flood);
    handle.shutdown();
}

#[test]
fn client_reconnects_and_retries_idempotent_ops_after_a_drop() {
    // A plan that drops the very first response on every connection
    // (drop_per_mille=1000 fires on every request; the client's retry
    // policy reconnects and tries again on the NEXT connection, which is
    // also dropped… so cap the chaos to conn ids the plan misses).
    // Simpler and fully deterministic: drop every response, and assert
    // the client survives to report a transport error on a non-idempotent
    // op but transparently retries an idempotent one against a second
    // server with no faults after a manual reconnect.
    //
    // Here we exercise the documented behaviour end to end with a
    // seed/schedule where only SOME requests drop: find a seed whose
    // conn 1 drops the first request but not the next few.
    let mut seed = 0u64;
    let plan = loop {
        let plan = FaultPlan {
            seed,
            drop_per_mille: 500,
            ..FaultPlan::default()
        };
        let drops_first = plan.response_fault(1, 0).is_some();
        let spares_soon = (1..6u64).any(|s| plan.response_fault(1, s).is_none());
        // Later connections (the reconnects) must eventually answer too.
        let conn2_clear = (0..4u64).any(|s| plan.response_fault(2, s).is_none());
        if drops_first && spares_soon && conn2_clear {
            break plan;
        }
        seed += 1;
        assert!(seed < 10_000, "no suitable chaos seed found");
    };

    let handle = start(ServerConfig {
        faults: plan,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.set_retry_policy(Some(RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
    }));
    // The first response is dropped (connection severed); the client
    // reconnects and replays — `dot` is idempotent, so this is safe and
    // must eventually succeed.
    assert_eq!(
        client
            .dot(Precision::P8, &[3, 3], &[4, 4])
            .expect("dot survives drops"),
        24
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Chaos: the full fault plan under concurrent sessions
// ---------------------------------------------------------------------

/// Finds a seed whose plan leaves connections `clean` untouched for
/// `requests` requests while touching at least one of the others.
fn find_chaos_seed(base: FaultPlan, clean: &[u64], dirty: &[u64], requests: u64) -> FaultPlan {
    for seed in 0..50_000u64 {
        let plan = FaultPlan { seed, ..base };
        if clean.iter().all(|&c| !plan.touches_conn(c, requests))
            && dirty.iter().any(|&c| plan.touches_conn(c, requests))
        {
            return plan;
        }
    }
    panic!("no chaos seed separates clean from dirty connections");
}

#[test]
fn chaos_spares_unaffected_sessions_and_drains_cleanly() {
    // Six sessions: conns 1-4 must be untouched by the plan (clean
    // tenants), conns 5-6 take the fire. Connection ids are assigned in
    // accept order, so the clients connect sequentially.
    const REQUESTS: u64 = 30;
    // Rates low enough that a seed with four clean 32-request sessions
    // exists (~4% touch probability per request → each connection stays
    // clean with p≈0.24, all four with p≈3e-3 → a 50k-seed search finds
    // one), yet high enough that the dirty pair is reliably touched.
    let base = FaultPlan {
        seed: 0,
        panic_per_mille: 15,
        delay_per_mille: 10,
        delay_ms: 3,
        stall_per_mille: 10,
        stall_ms: 3,
        drop_per_mille: 8,
        ..FaultPlan::default()
    };
    // Clean sessions send REQUESTS dots + 1 stats; pad the horizon so
    // the stats request is covered too.
    let plan = find_chaos_seed(base, &[1, 2, 3, 4], &[5, 6], REQUESTS + 2);

    let handle = start(ServerConfig {
        macros: 2,
        faults: plan,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // Sequential connects pin the conn ids: accept order is arrival
    // order because each `Client::connect` completes the TCP handshake
    // before the next begins.
    let mut clean: Vec<Client> = (0..4)
        .map(|_| Client::connect(addr).expect("connect clean"))
        .collect();
    let mut dirty: Vec<Client> = (0..2)
        .map(|_| Client::connect(addr).expect("connect dirty"))
        .collect();

    // Fire: all six sessions work concurrently.
    let workers: Vec<_> = clean
        .drain(..)
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                let mut expected = SessionActivity::new();
                let mut mac = ImcMacro::new(MacroConfig::paper_macro());
                let params = paper_calibrated_params();
                for r in 0..REQUESTS {
                    let x = [i as u64 + r, 7, r % 11];
                    let w = [3, r % 5, 9];
                    let got = client.dot(Precision::P8, &x, &w).expect("clean dot");
                    mac.clear_activity();
                    let want = imc_dot(&mut mac, Precision::P8, &x, &w);
                    expected.record_ok(
                        mac.activity().total_cycles(),
                        params.log_energy_fj(mac.activity()),
                    );
                    assert_eq!(got, want, "clean session {i} round {r}");
                }
                // Zero errors, and the account matches the direct
                // `ImcMacro` replay exactly — chaos elsewhere never
                // leaked into this tenant's results or billing.
                let stats = client.stats().expect("clean stats");
                assert_eq!(stats.errors, 0, "clean session {i}");
                assert_eq!(stats.requests, REQUESTS);
                assert_eq!(stats.cycles, expected.cycles, "clean session {i} cycles");
                assert!(
                    (stats.energy_fj - expected.energy_fj).abs()
                        < 1e-9 * expected.energy_fj.max(1.0),
                    "clean session {i} energy"
                );
            })
        })
        .collect();

    let chaos_workers: Vec<_> = dirty
        .drain(..)
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                // Dirty sessions ride the fire: panics answer as errors,
                // delays slow things down, stalls defer the write, drops
                // sever the connection (a transport error ends the run).
                for r in 0..REQUESTS {
                    match client.dot(Precision::P8, &[r, 1], &[2, 3]) {
                        Ok(v) => assert_eq!(v, r * 2 + 3, "dirty session {i} round {r}"),
                        Err(ClientError::Server(body)) => {
                            assert!(body.message.contains("panicked"), "{body}")
                        }
                        Err(ClientError::Io(_)) => return, // dropped: session over
                        Err(other) => panic!("dirty session {i}: {other}"),
                    }
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("clean session thread");
    }
    for w in chaos_workers {
        w.join().expect("dirty session thread");
    }
    // Clean drain: shutdown joins every thread (a wedged writer or
    // reader would hang here and fail the test by timeout).
    handle.shutdown();
}

#[test]
fn writer_stalls_delay_but_never_corrupt_responses() {
    // Stall every response 25 ms: all writes divert through the writer
    // thread with an injected sleep, yet every response arrives, in
    // order, with correct values.
    let handle = start(ServerConfig {
        faults: FaultPlan {
            seed: 9,
            stall_per_mille: 1000,
            stall_ms: 25,
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for i in 0..8u64 {
        assert_eq!(
            client.dot(Precision::P8, &[i], &[3]).expect("stalled dot"),
            i * 3
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.errors, 0);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Write-timeout configuration (satellite: the old hardcoded 5 s)
// ---------------------------------------------------------------------

#[test]
fn write_timeout_is_configurable_and_evicts_stuck_peers_fast() {
    use bpimc_core::RequestBody;
    use std::io::Write;

    // A short write timeout: a peer that stops reading while the server
    // fans out a large backlog is evicted in ~timeout, not the old
    // hardcoded 5 s.
    let handle = start(ServerConfig {
        write_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // The stuck peer pipelines big requests and never reads a byte.
    let mut stuck = std::net::TcpStream::connect(addr).expect("connect stuck");
    let big: Vec<u64> = (0..2000).map(|i| i % 256).collect();
    let body = serde_free_lanes_line(&big);
    let t0 = Instant::now();
    let mut write_failed = false;
    for _ in 0..3000 {
        if stuck.write_all(body.as_bytes()).is_err() {
            write_failed = true;
            break;
        }
        if t0.elapsed() > Duration::from_secs(10) {
            break;
        }
    }
    // Whether or not the OS buffered everything, a healthy client on the
    // same server is still served promptly the whole time.
    let mut healthy = Client::connect(addr).expect("connect healthy");
    let t1 = Instant::now();
    assert_eq!(healthy.dot(Precision::P8, &[2], &[3]).expect("dot"), 6);
    assert!(
        t1.elapsed() < Duration::from_secs(5),
        "healthy client waited {:?} behind a stuck peer",
        t1.elapsed()
    );
    let _ = write_failed; // informational: the kernel may absorb it all
    let _ = RequestBody::Ping; // keep the import used on all paths
    drop(stuck);
    handle.shutdown();
}

/// Builds one raw `add` request line with `n` lanes, no serde needed.
fn serde_free_lanes_line(values: &[u64]) -> String {
    let list = values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"id\":1,\"op\":\"add\",\"precision\":8,\"a\":[{list}],\"b\":[{list}]}}\n")
}

// ---------------------------------------------------------------------
// Durable-state robustness: foreign files and corrupt snapshots
// ---------------------------------------------------------------------

/// A state directory is shared infrastructure: recovery must ignore
/// files it does not own, and a corrupt newest snapshot must fall back
/// to the previous valid generation plus journal replay — never to an
/// empty registry, and never to trusting the clean marker (which names
/// the now-unreadable snapshot).
#[test]
fn corrupt_newest_snapshot_falls_back_to_prior_generation() {
    use bpimc_server::StateConfig;

    let dir = std::env::temp_dir().join(format!("bpimc-robust-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");

    let config = ServerConfig {
        state: Some(StateConfig::new(dir.clone())),
        ..ServerConfig::default()
    };
    let handle = start(config.clone());
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let token = client.open_session().expect("open_session").token;
    let dot = client
        .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
        .expect("dot");
    assert_eq!(dot, 32);
    drop(client);
    // Graceful shutdown: final snapshot (gen 1) + clean marker, with the
    // boot-time snapshot (gen 0) and its event-bearing journal retained.
    handle.shutdown();

    // Operator droppings must be ignored, and the marker's snapshot is
    // unreadable — recovery has to walk back to gen 0 and replay.
    std::fs::write(dir.join("NOTES.txt"), b"not a state file").expect("drop foreign file");
    let snap = dir.join("snap-1.bpimc");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("corrupt snapshot");

    let report = bpimc_server::inspect(&dir).expect("inspect");
    assert!(report.corrupt(), "the corrupt snapshot is reported");
    assert!(
        report.corruptions.iter().any(|(f, _)| f == "snap-1.bpimc"),
        "the report names the bad file: {:?}",
        report.corruptions
    );
    assert_eq!(
        report.chosen_snapshot,
        Some(0),
        "recovery walks back a generation"
    );
    assert!(
        !report.warm,
        "the marker names an unreadable snapshot; no warm path"
    );

    let handle = start(config);
    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    let info = client.resume_session(token).expect("resume after fallback");
    assert_eq!(
        info.stats.requests, 1,
        "the journaled dot survived the fallback"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
