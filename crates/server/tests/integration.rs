//! End-to-end tests: real TCP on an ephemeral port, concurrent clients,
//! results checked against direct `ImcMacro` execution, per-session
//! accounting, contained faults, backpressure and graceful shutdown.

use bpimc_core::{ImcMacro, LaneOp, LogicOp, MacroConfig, Precision, SessionActivity};
use bpimc_metrics::paper_calibrated_params;
use bpimc_nn::{classify_quantized, imc_dot, prototype_norms};
use bpimc_server::{Client, ClientError, Server, ServerConfig};

/// Runs the same op a server job runs, on a private macro, with the same
/// per-request accounting (clear, run, measure) — the ground truth every
/// response is checked against.
struct Direct {
    mac: ImcMacro,
    expected: SessionActivity,
}

impl Direct {
    fn new() -> Self {
        Self {
            mac: ImcMacro::new(MacroConfig::paper_macro()),
            expected: SessionActivity::new(),
        }
    }

    fn bill(&mut self) {
        let params = paper_calibrated_params();
        self.expected.record_ok(
            self.mac.activity().total_cycles(),
            params.log_energy_fj(self.mac.activity()),
        );
        self.mac.clear_activity();
    }

    fn dot(&mut self, p: Precision, x: &[u64], w: &[u64]) -> u64 {
        self.mac.clear_activity();
        let out = imc_dot(&mut self.mac, p, x, w);
        self.bill();
        out
    }

    fn lanes(&mut self, op: LaneOp, p: Precision, a: &[u64], b: &[u64]) -> Vec<u64> {
        self.mac.clear_activity();
        let lanes = match op {
            LaneOp::Mult => p.product_lanes(self.mac.cols()),
            _ => p.lanes(self.mac.cols()),
        };
        let mut out = Vec::new();
        for (ac, bc) in a.chunks(lanes).zip(b.chunks(lanes)) {
            match op {
                LaneOp::Mult => {
                    self.mac.write_mult_operands(0, p, ac).unwrap();
                    self.mac.write_mult_operands(1, p, bc).unwrap();
                    self.mac.mult(0, 1, 2, p).unwrap();
                    out.extend(self.mac.read_products(2, p, ac.len()).unwrap());
                }
                LaneOp::Add | LaneOp::Sub | LaneOp::Logic(_) => {
                    self.mac.write_words(0, p, ac).unwrap();
                    self.mac.write_words(1, p, bc).unwrap();
                    match op {
                        LaneOp::Add => self.mac.add(0, 1, 2, p).unwrap(),
                        LaneOp::Sub => self.mac.sub(0, 1, 2, p).unwrap(),
                        LaneOp::Logic(l) => self.mac.logic(l, 0, 1, 2).unwrap(),
                        LaneOp::Mult => unreachable!(),
                    };
                    out.extend(self.mac.read_words(2, p, ac.len()).unwrap());
                }
            }
        }
        self.bill();
        out
    }

    fn load_model(&mut self, p: Precision, prototypes: &[Vec<u64>]) -> Vec<u64> {
        self.mac.clear_activity();
        let norms = prototype_norms(&mut self.mac, p, prototypes);
        self.bill();
        norms
    }

    fn classify(
        &mut self,
        p: Precision,
        prototypes: &[Vec<u64>],
        norms: &[u64],
        x: &[u64],
    ) -> usize {
        self.mac.clear_activity();
        let out = classify_quantized(&mut self.mac, p, prototypes, norms, x);
        self.bill();
        out
    }
}

fn start(config: ServerConfig) -> bpimc_server::ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

#[test]
fn concurrent_clients_get_correct_results_and_accounting() {
    let handle = start(ServerConfig {
        macros: 4,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..8u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut direct = Direct::new();
                // A per-client deterministic mixed request stream.
                for round in 0..6u64 {
                    let k = c * 131 + round * 17;
                    let x: Vec<u64> = (0..10).map(|i| (k + i * 3) % 256).collect();
                    let w: Vec<u64> = (0..10).map(|i| (k + i * 7 + 1) % 256).collect();
                    assert_eq!(
                        client.dot(Precision::P8, &x, &w).expect("dot"),
                        direct.dot(Precision::P8, &x, &w)
                    );

                    let a: Vec<u64> = (0..20).map(|i| (k + i) % 16).collect();
                    let b: Vec<u64> = (0..20).map(|i| (k * 3 + i) % 16).collect();
                    for op in [
                        LaneOp::Add,
                        LaneOp::Sub,
                        LaneOp::Mult,
                        LaneOp::Logic(LogicOp::Xor),
                    ] {
                        assert_eq!(
                            client.lanes(op, Precision::P4, &a, &b).expect("lanes"),
                            direct.lanes(op, Precision::P4, &a, &b),
                            "client {c} round {round} {op:?}"
                        );
                    }

                    // Wider precisions exercise the reconfigurable datapath.
                    let a16: Vec<u64> = (0..4).map(|i| (k * 251 + i * 1000) % 65536).collect();
                    let b16: Vec<u64> = (0..4).map(|i| (k * 509 + i * 999) % 65536).collect();
                    assert_eq!(
                        client
                            .lanes(LaneOp::Mult, Precision::P16, &a16, &b16)
                            .expect("p16 mult"),
                        direct.lanes(LaneOp::Mult, Precision::P16, &a16, &b16)
                    );
                }

                // Per-session model: each client trains on its own data.
                let protos: Vec<Vec<u64>> = (0..3)
                    .map(|p| (0..8).map(|i| (c + p * 50 + i * 11) % 256).collect())
                    .collect();
                client.load_model(Precision::P8, &protos).expect("load");
                let norms = direct.load_model(Precision::P8, &protos);
                for s in 0..4u64 {
                    let x: Vec<u64> = (0..8).map(|i| (c * 31 + s * 13 + i * 5) % 256).collect();
                    assert_eq!(
                        client.classify(&x).expect("classify"),
                        direct.classify(Precision::P8, &protos, &norms, &x),
                        "client {c} sample {s}"
                    );
                }

                // The session account matches the direct per-request replay
                // exactly: same requests, same cycles, same energy.
                let stats = client.stats().expect("stats");
                assert_eq!(stats.requests, direct.expected.requests);
                assert_eq!(stats.errors, 0);
                assert_eq!(
                    stats.cycles, direct.expected.cycles,
                    "client {c} billed cycles"
                );
                assert!(
                    (stats.energy_fj - direct.expected.energy_fj).abs()
                        < 1e-9 * direct.expected.energy_fj.max(1.0),
                    "client {c} billed energy {} vs {}",
                    stats.energy_fj,
                    direct.expected.energy_fj
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    handle.shutdown();
}

#[test]
fn injected_panic_fails_only_its_own_request() {
    let handle = start(ServerConfig {
        macros: 2,
        faults: bpimc_server::FaultPlan::inject_panic_only(),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // Sibling clients hammer the bank while one client injects panics.
    let victims: Vec<_> = (0..3u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..40u64 {
                    let x = [c + round, 2, 3];
                    let w = [5, 6, 7];
                    let expect: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                    assert_eq!(client.dot(Precision::P8, &x, &w).expect("dot"), expect);
                }
            })
        })
        .collect();

    let mut chaos = Client::connect(addr).expect("connect");
    for _ in 0..10 {
        match chaos.inject_panic() {
            Err(ClientError::Server(msg)) => {
                assert!(msg.message.contains("panicked"), "{msg}");
                assert!(msg.message.contains("injected fault"), "{msg}");
            }
            other => panic!("expected a contained server error, got {other:?}"),
        }
        // The same connection keeps working right after each fault.
        assert_eq!(chaos.dot(Precision::P8, &[9], &[9]).expect("dot"), 81);
    }
    let stats = chaos.stats().expect("stats");
    assert_eq!(stats.errors, 10);
    assert_eq!(stats.requests, 20);

    for v in victims {
        v.join().expect("sibling clients unaffected");
    }
    handle.shutdown();
}

#[test]
fn tiny_queue_applies_backpressure_without_dropping() {
    // Capacity 2 with a single-request batch cap: the readers must block
    // and every pipelined request must still be answered, in order.
    let handle = start(ServerConfig {
        macros: 1,
        batch_max: 1,
        ..ServerConfig::default().with_queue_capacity(2)
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for i in 0..200u64 {
        let got = client
            .lanes(LaneOp::Add, Precision::P8, &[i % 200, 7], &[1, i % 100])
            .expect("add");
        assert_eq!(got, vec![(i % 200) + 1, 7 + (i % 100)]);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 200);
    assert_eq!(stats.errors, 0);
    handle.shutdown();
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    for (line, expect_in_error) in [
        ("this is not json\n", "malformed"),
        ("{\"id\":77,\"op\":\"frobnicate\"}\n", "unknown op"),
        (
            "{\"id\":78,\"op\":\"add\",\"precision\":9,\"a\":[1],\"b\":[2]}\n",
            "precision",
        ),
    ] {
        stream.write_all(line.as_bytes()).expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let resp = bpimc_core::Response::parse(&reply).expect("parseable response");
        match resp.body {
            bpimc_core::ResponseBody::Error(msg) => {
                assert!(msg.message.contains(expect_in_error), "{line:?} -> {msg}")
            }
            other => panic!("expected an error for {line:?}, got {other:?}"),
        }
    }

    // A valid request on the same connection still succeeds.
    stream
        .write_all(b"{\"id\":99,\"op\":\"ping\"}\n")
        .expect("write");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let resp = bpimc_core::Response::parse(&reply).expect("parseable");
    assert_eq!(resp.id, 99);
    assert_eq!(resp.body, bpimc_core::ResponseBody::Pong);
    drop(stream);
    handle.shutdown();
}

#[test]
fn oversized_lines_are_discarded_not_buffered() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Stream well past the 4 MiB line cap without a newline, then finish
    // the line: the server must answer with an error (not OOM) and keep
    // the connection usable.
    let chunk = vec![b'1'; 1 << 20];
    for _ in 0..5 {
        stream.write_all(&chunk).expect("write");
    }
    stream.write_all(b"\n").expect("write");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    match bpimc_core::Response::parse(&reply).expect("parseable").body {
        bpimc_core::ResponseBody::Error(msg) => assert!(msg.message.contains("exceeds"), "{msg}"),
        other => panic!("expected an error, got {other:?}"),
    }

    stream
        .write_all(b"{\"id\":5,\"op\":\"ping\"}\n")
        .expect("write");
    reply.clear();
    reader.read_line(&mut reply).expect("read");
    let resp = bpimc_core::Response::parse(&reply).expect("parseable");
    assert_eq!(resp.id, 5);
    assert_eq!(resp.body, bpimc_core::ResponseBody::Pong);
    drop(stream);
    handle.shutdown();
}

#[test]
fn exec_program_round_trips_with_per_instruction_accounting() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // A 9-instruction pipeline exercising fusion (add+shl), two-cycle sub
    // and the multi-cycle mult path in one round trip.
    let p = Precision::P8;
    let mut b = ProgramBuilder::new();
    let x = b.write(p, vec![17, 80, 255]);
    let y = b.write(p, vec![5, 40, 1]);
    let s = b.add(x, y, p);
    let d = b.shl(s, p); // fuses into add_shift
    b.read(d, p, 3);
    let e = b.sub(x, y, p);
    b.read(e, p, 3);
    let mx = b.write_mult(p, vec![12, 34]);
    let my = b.write_mult(p, vec![56, 78]);
    let prod = b.mult(mx, my, p);
    b.read_products(prod, p, 2);
    let prog = b.finish();
    assert!(prog.instrs().len() >= 4);

    let report = client.exec_program(&prog).expect("exec_program");

    // Ground truth: replay the same program directly on a private macro
    // with the same per-request accounting the server applies.
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    let run = prog.run(&mut mac).expect("direct replay");
    let params = paper_calibrated_params();

    assert_eq!(report.outputs, run.outputs);
    assert_eq!(report.outputs[0], vec![44, 240, 0]); // (x+y)<<1 wrapping
    assert_eq!(report.outputs[1], vec![12, 40, 254]);
    assert_eq!(report.outputs[2], vec![12 * 56, 34 * 78]);
    assert_eq!(report.cycles, run.instr_cycles);
    // The fused shl bills 0; the whole pipeline costs what the direct
    // replay logged.
    assert_eq!(report.cycles[3], 0);
    assert_eq!(report.total_cycles(), mac.activity().total_cycles());
    // Per-instruction energy matches the direct replay's log spans
    // exactly (floats round-trip the wire bit for bit).
    let direct_energy: Vec<f64> = run
        .instr_spans
        .iter()
        .map(|span| params.cycles_energy_fj(&mac.activity().cycles()[span.clone()]))
        .collect();
    assert_eq!(report.energy_fj, direct_energy);

    // The session is billed exactly the program's hardware work.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.cycles, report.total_cycles());
    assert!((stats.energy_fj - report.total_energy_fj()).abs() < 1e-9);

    // An invalid program (use-before-def) is a clean server error that
    // does not poison the session.
    let bad = bpimc_core::Program::new(vec![bpimc_core::Instr::Read {
        src: bpimc_core::Reg(3),
        precision: p,
        n: 1,
    }]);
    match client.exec_program(&bad) {
        Err(ClientError::Server(msg)) => assert!(msg.message.contains("before any write"), "{msg}"),
        other => panic!("expected a validation error, got {other:?}"),
    }
    client.ping().expect("session still alive");
    handle.shutdown();
}

#[test]
fn lines_without_a_readable_id_are_answered_with_id_zero() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // No id at all, and an id of the wrong type: both get a parse-error
    // response carrying the documented sentinel id 0.
    for line in [
        "{\"op\":\"ping\"}\n",
        "{\"id\":\"seven\",\"op\":\"ping\"}\n",
    ] {
        stream.write_all(line.as_bytes()).expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let resp = bpimc_core::Response::parse(&reply).expect("parseable");
        assert_eq!(resp.id, 0, "{line:?} -> {reply}");
        assert!(
            matches!(resp.body, bpimc_core::ResponseBody::Error(_)),
            "{reply}"
        );
    }
    drop(stream);
    handle.shutdown();
}

#[test]
fn stored_programs_run_many_with_rebound_inputs() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Store once: a dot-style pipeline with two bindable writes.
    let p = Precision::P8;
    let mut b = ProgramBuilder::new();
    let x = b.write_mult(p, vec![0, 0, 0]);
    let w = b.write_mult(p, vec![0, 0, 0]);
    let prod = b.mult(x, w, p);
    b.read_products(prod, p, 3);
    let prog = b.finish();
    let meta = client.store_program(&prog).expect("store");
    assert_eq!(meta.writes, 2);
    assert_eq!(meta.cycles, prog.cycles());

    // Run many: fresh inputs each time, host-verified, each run billed the
    // same static cycle cost.
    let mut direct = Direct::new();
    for k in 0..6u64 {
        let xs = vec![k + 1, 2 * k, (k * k) % 256];
        let ws = vec![9, k + 3, 250 - k];
        let report = client
            .run_stored(meta.pid, &[Some(xs.clone()), Some(ws.clone())])
            .expect("run_stored");
        let want: Vec<u64> = xs.iter().zip(&ws).map(|(a, b)| a * b).collect();
        assert_eq!(report.outputs, vec![want]);
        assert_eq!(report.total_cycles(), meta.cycles);
        // Ground truth energy/cycles: replay directly.
        direct.mac.clear_activity();
        direct.mac.write_mult_operands(0, p, &xs).unwrap();
        direct.mac.write_mult_operands(1, p, &ws).unwrap();
        direct.mac.mult(0, 1, 2, p).unwrap();
        direct.mac.read_products(2, p, 3).unwrap();
        assert_eq!(
            report.total_cycles(),
            direct.mac.activity().total_cycles(),
            "rebound run costs exactly the direct replay"
        );
    }
    // Partial binding: None keeps the stored values (zeros here).
    let report = client
        .run_stored(meta.pid, &[Some(vec![5, 5, 5]), None])
        .expect("run_stored partial");
    assert_eq!(report.outputs, vec![vec![0, 0, 0]]);
    // No binding at all: runs exactly as stored.
    let report = client.run_stored(meta.pid, &[]).expect("run_stored stored");
    assert_eq!(report.outputs, vec![vec![0, 0, 0]]);

    // The session account billed: store (0 cycles) + 8 runs.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 9);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.cycles, 8 * meta.cycles);
    handle.shutdown();
}

#[test]
fn stored_program_misuse_gets_structured_errors() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Cache miss: an id never stored.
    match client.run_stored(42, &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.message.contains("no stored program 42"), "{msg}")
        }
        other => panic!("expected a miss error, got {other:?}"),
    }

    // A program that does not validate is rejected at store time.
    let bad = bpimc_core::Program::new(vec![bpimc_core::Instr::Read {
        src: bpimc_core::Reg(2),
        precision: Precision::P8,
        n: 1,
    }]);
    match client.store_program(&bad) {
        Err(ClientError::Server(msg)) => assert!(msg.message.contains("before any write"), "{msg}"),
        other => panic!("expected a validation error, got {other:?}"),
    }

    // Bad bindings: wrong count, wrong length, value too wide.
    let mut b = ProgramBuilder::new();
    let x = b.write(Precision::P8, vec![1, 2]);
    b.read(x, Precision::P8, 2);
    let meta = client.store_program(&b.finish()).expect("store");
    for (inputs, needle) in [
        (
            vec![Some(vec![1u64]), Some(vec![2u64])],
            "1 write instruction(s) but 2",
        ),
        (vec![Some(vec![1u64, 2, 3])], "has 3 values"),
        (vec![Some(vec![999u64, 0])], "does not fit 8 bits"),
    ] {
        match client.run_stored(meta.pid, &inputs) {
            Err(ClientError::Server(msg)) => assert!(msg.message.contains(needle), "{msg}"),
            other => panic!("expected a binding error, got {other:?}"),
        }
    }
    // The session (and the stored program) survive every rejection.
    let report = client.run_stored(meta.pid, &[]).expect("still stored");
    assert_eq!(report.outputs, vec![vec![1, 2]]);
    handle.shutdown();
}

#[test]
fn lint_and_diagnostics_flow_over_the_wire() {
    use bpimc_core::prog::ProgramBuilder;
    use bpimc_core::{ErrorKind, Instr, Program, Reg, Severity};

    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let p = Precision::P8;

    // A dead store: row 0 is overwritten before it is ever read.
    let dead = Program::new(vec![
        Instr::Write {
            dst: Reg(0),
            precision: p,
            values: vec![7],
        },
        Instr::Write {
            dst: Reg(0),
            precision: p,
            values: vec![9],
        },
        Instr::Read {
            src: Reg(0),
            precision: p,
            n: 1,
        },
    ]);
    let diags = client.lint_program(&dead).expect("lint");
    assert!(
        diags
            .iter()
            .any(|d| d.code == "L001" && d.severity == Severity::Warn && d.span == (0..1)),
        "expected a dead-store warning, got {diags:?}"
    );

    // The same diagnostics ride along on the store_program response.
    let meta = client.store_program(&dead).expect("store");
    assert_eq!(meta.diagnostics, diags);

    // A clean program lints empty, on both paths. (255 saturates the
    // P8 lane so the over-wide-precision perf note stays quiet.)
    let mut b = ProgramBuilder::new();
    let x = b.write(p, vec![1, 255]);
    b.read(x, p, 2);
    let clean = b.finish();
    assert!(client.lint_program(&clean).expect("lint clean").is_empty());
    let meta = client.store_program(&clean).expect("store clean");
    assert!(meta.diagnostics.is_empty());

    // Invalid programs get a structured error: the invalid_program kind
    // plus the stable code and offending instruction index.
    let bad = Program::new(vec![Instr::Read {
        src: Reg(2),
        precision: p,
        n: 1,
    }]);
    match client.store_program(&bad) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ErrorKind::InvalidProgram);
            assert_eq!(e.code.as_deref(), Some("E002"));
            assert_eq!(e.index, Some(0));
            assert!(e.message.contains("before any write"), "{e}");
        }
        other => panic!("expected an invalid_program error, got {other:?}"),
    }
    // lint_program reports the same failure as a diagnostic, not an error:
    // linting never rejects the request.
    let diags = client.lint_program(&bad).expect("lint invalid");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "E002");
    assert_eq!(diags[0].severity, Severity::Error);
    handle.shutdown();
}

#[test]
fn optimizing_server_preserves_program_semantics() {
    use bpimc_core::prog::ProgramBuilder;

    let plain = start(ServerConfig::default());
    let opt = start(ServerConfig {
        optimize_programs: true,
        ..ServerConfig::default()
    });
    let mut on_plain = Client::connect(plain.local_addr()).expect("connect plain");
    let mut on_opt = Client::connect(opt.local_addr()).expect("connect opt");

    // A pipeline with a dead store and a recomputed product: the
    // optimizing server strips the waste but must return the exact same
    // output bits.
    let p = Precision::P8;
    let mut b = ProgramBuilder::new();
    let _dead = b.write(p, vec![1, 1]);
    let x = b.write_mult(p, vec![3, 5]);
    let w = b.write_mult(p, vec![7, 9]);
    let m1 = b.mult(x, w, p);
    b.read_products(m1, p, 2);
    let m2 = b.mult(x, w, p);
    b.read_products(m2, p, 2);
    let prog = b.finish();

    let r_plain = on_plain.exec_program(&prog).expect("plain exec");
    let r_opt = on_opt.exec_program(&prog).expect("opt exec");
    assert_eq!(r_plain.outputs, r_opt.outputs);
    assert_eq!(r_opt.outputs, vec![vec![21, 45], vec![21, 45]]);
    assert!(
        r_opt.total_cycles() < r_plain.total_cycles(),
        "optimizer should drop the dead store and the duplicate mult: {} vs {}",
        r_opt.total_cycles(),
        r_plain.total_cycles()
    );

    // Stored programs take the same path: cheaper cycles, same bits.
    let meta = on_opt.store_program(&prog).expect("store on opt");
    assert!(meta.cycles < prog.cycles());
    let report = on_opt.run_stored(meta.pid, &[]).expect("run stored");
    assert_eq!(report.outputs, r_plain.outputs);
    assert_eq!(report.total_cycles(), meta.cycles);

    plain.shutdown();
    opt.shutdown();
}

#[test]
fn stored_programs_are_isolated_and_die_with_their_session() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let mut a = Client::connect(addr).expect("connect a");
    let mut b_client = Client::connect(addr).expect("connect b");

    let mut b = ProgramBuilder::new();
    let x = b.write(Precision::P8, vec![7]);
    b.read(x, Precision::P8, 1);
    let prog = b.finish();
    let meta = a.store_program(&prog).expect("store in A");

    // Session B cannot run (or see) A's stored id.
    match b_client.run_stored(meta.pid, &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.message.contains("no stored program"), "{msg}")
        }
        other => panic!("expected isolation, got {other:?}"),
    }
    // A still can.
    assert_eq!(
        a.run_stored(meta.pid, &[]).expect("run").outputs[0],
        vec![7]
    );

    // Eviction on session drop: reconnecting is a fresh session; the old
    // id is gone even though pids restart from the same counter.
    drop(a);
    let mut a2 = Client::connect(addr).expect("reconnect");
    match a2.run_stored(meta.pid, &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.message.contains("no stored program"), "{msg}")
        }
        other => panic!("expected eviction, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn stored_program_cache_is_bounded_per_session() {
    use bpimc_core::prog::ProgramBuilder;

    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let make = |v: u64| {
        let mut b = ProgramBuilder::new();
        let x = b.write(Precision::P8, vec![v % 256]);
        b.read(x, Precision::P8, 1);
        b.finish()
    };
    let mut last = 0;
    for v in 0..64u64 {
        last = client.store_program(&make(v)).expect("store").pid;
    }
    match client.store_program(&make(64)) {
        Err(ClientError::Server(msg)) => assert!(msg.message.contains("limit"), "{msg}"),
        other => panic!("expected the cache bound, got {other:?}"),
    }
    // Everything stored before the bound still runs.
    assert_eq!(
        client.run_stored(last, &[]).expect("run").outputs[0],
        vec![63]
    );
    handle.shutdown();
}

#[test]
fn compiled_programs_reject_config_mismatch_at_run_time() {
    // The session-cache guarantee the server relies on: a stored
    // (compiled) program refuses to run against a macro whose
    // configuration differs from the one it was validated for, instead of
    // silently skipping the checks that made the compilation sound.
    use bpimc_core::prog::ProgramBuilder;
    use bpimc_core::MacroConfig;

    let mut b = ProgramBuilder::new();
    let x = b.write(Precision::P8, vec![1]);
    b.read(x, Precision::P8, 1);
    let prog = b.finish();
    let compiled = prog.compile(&MacroConfig::paper_macro()).expect("compile");
    let mut other = ImcMacro::new(MacroConfig::paper_macro().with_separator(false));
    assert!(matches!(
        compiled.run_with_inputs(&mut other, &[None]),
        Err(bpimc_core::ProgError::ConfigMismatch)
    ));
}

#[test]
fn flooding_client_cannot_starve_a_latency_sensitive_one() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // One macro, small batches: the dispatcher is the contended resource.
    let handle = start(ServerConfig {
        macros: 1,
        batch_max: 8,
        ..ServerConfig::default().with_queue_capacity(512)
    });
    let addr = handle.local_addr();

    // The flooder pipelines a deep backlog without reading responses
    // (raw socket writes), then keeps flooding until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let flooder = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            use std::io::Write;
            let mut stream = std::net::TcpStream::connect(addr).expect("connect flooder");
            let mut sent = 0u64;
            while !stop.load(Ordering::Relaxed) && sent < 20_000 {
                let line = format!(
                    "{{\"id\":{sent},\"op\":\"add\",\"precision\":8,\"a\":[1,2,3,4],\"b\":[5,6,7,8]}}\n"
                );
                if stream.write_all(line.as_bytes()).is_err() {
                    break;
                }
                sent += 1;
            }
            drop(stream);
        })
    };

    // Give the flood a head start so a backlog definitely exists.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // The latency-sensitive client: every request must be answered without
    // waiting behind the flooder's whole backlog. The bound is generous —
    // the point is "seconds, not the full 20k-deep queue" — and leaves
    // room for one WRITE_TIMEOUT-bounded stall in case this host's socket
    // buffers are too small to absorb the flooder's unread responses
    // (after which the flooder is marked slow/wedged and dropped).
    let mut client = Client::connect(addr).expect("connect");
    let t0 = std::time::Instant::now();
    for i in 0..20u64 {
        let got = client
            .dot(Precision::P8, &[i, 2], &[3, 4])
            .expect("interactive dot");
        assert_eq!(got, i * 3 + 8);
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    flooder.join().expect("flooder");
    assert!(
        elapsed < std::time::Duration::from_secs(15),
        "20 interactive requests took {elapsed:?} behind a flooding session"
    );
    handle.shutdown();
}

#[test]
fn client_initiated_shutdown_drains_and_joins() {
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    client.shutdown_server().expect("shutdown acknowledged");
    // join() returns only once every server thread has exited.
    handle.join();
    // New connections are refused (or reset immediately) afterwards.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server must be gone"),
    }
}

#[test]
fn sessions_are_isolated() {
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");

    // Model in session A only; B must be told it has none.
    a.load_model(Precision::P4, &[vec![0, 0], vec![15, 15]])
        .expect("load");
    assert_eq!(a.classify(&[14, 15]).expect("classify"), 1);
    match b.classify(&[14, 15]) {
        Err(ClientError::Server(msg)) => assert!(msg.message.contains("no model"), "{msg}"),
        other => panic!("expected a missing-model error, got {other:?}"),
    }

    // Accounts are per-session: B's error does not appear in A's account.
    let sa = a.stats().expect("stats a");
    let sb = b.stats().expect("stats b");
    assert_eq!(sa.requests, 2);
    assert_eq!(sa.errors, 0);
    assert_eq!(sb.requests, 1);
    assert_eq!(sb.errors, 1);
    handle.shutdown();
}
