//! Durable-session lifecycle over real TCP: token resumption restoring
//! the whole tenant state, TTL expiry and garbage collection, token
//! error kinds, single-active-connection enforcement, registry caps, the
//! named stored-program registry with run history, and the seq replay
//! guard's exactly-once billing.

use bpimc_core::prog::ProgramBuilder;
use bpimc_core::{
    ErrorKind, LimitKind, Precision, Program, Request, RequestBody, Response, ResponseBody,
    StoredTarget,
};
use bpimc_server::{Client, ClientError, Server, ServerConfig, ServerHandle};
use std::time::Duration;

fn start(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A dot-style pipeline with two bindable writes (the canonical stored
/// shape from the integration suite).
fn dot_shape() -> Program {
    let p = Precision::P8;
    let mut b = ProgramBuilder::new();
    let x = b.write_mult(p, vec![0, 0, 0]);
    let w = b.write_mult(p, vec![0, 0, 0]);
    let prod = b.mult(x, w, p);
    b.read_products(prod, p, 3);
    b.finish()
}

fn server_err(result: Result<impl std::fmt::Debug, ClientError>) -> bpimc_core::ErrorBody {
    match result {
        Err(ClientError::Server(err)) => err,
        other => panic!("expected a server error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Resumption restores the whole tenant state
// ---------------------------------------------------------------------

#[test]
fn resume_restores_model_programs_account_and_seq() {
    let handle = start(ServerConfig::default());

    // Build up state on connection A: a durable session holding a loaded
    // model, a named stored program with run history, and an account.
    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    let info = a.open_session().expect("open_session");
    assert_eq!(info.token.len(), 32, "tokens are 128-bit hex");
    let token = info.token.clone();

    let protos: Vec<Vec<u64>> = (0..3)
        .map(|p| (0..8).map(|i| (p * 50 + i * 11) % 256).collect())
        .collect();
    a.load_model(Precision::P8, &protos).expect("load_model");
    let sample: Vec<u64> = (0..8).map(|i| (i * 7 + 3) % 256).collect();
    let class_a = a.classify(&sample).expect("classify on A");

    let meta = a
        .store_program_named(&dot_shape(), "dots")
        .expect("store_program_named");
    let report_a = a
        .run_stored_named("dots", &[Some(vec![1, 2, 3]), Some(vec![4, 5, 6])])
        .expect("run_stored_named on A");
    assert_eq!(report_a.outputs, vec![vec![4, 10, 18]]);

    let before = a.stats().expect("stats before drop");
    assert!(before.cycles > 0 && before.requests > 0);

    // Sever the connection. The session detaches but survives.
    drop(a);

    // Connection B resumes by token and finds everything intact.
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    let resumed = b.resume_session(token.clone()).expect("resume_session");
    assert_eq!(resumed.token, token);
    // The account carried over byte-exact (+1 request: the `stats` call
    // itself was billed after its snapshot was taken).
    assert_eq!(resumed.stats.requests, before.requests + 1);
    assert_eq!(resumed.stats.errors, before.errors);
    assert_eq!(resumed.stats.cycles, before.cycles);
    assert_eq!(resumed.stats.energy_fj, before.energy_fj);
    // The idempotency sequence continues where A left off.
    assert!(resumed.last_seq.is_some(), "executed seqs are reported");

    // The model still classifies, identically.
    assert_eq!(b.classify(&sample).expect("classify on B"), class_a);

    // The named program still runs, and its history spans both
    // connections.
    let report_b = b
        .run_stored_named("dots", &[Some(vec![2, 2, 2]), Some(vec![3, 4, 5])])
        .expect("run_stored_named on B");
    assert_eq!(report_b.outputs, vec![vec![6, 8, 10]]);
    let entries = b.list_programs().expect("list_programs");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].pid, meta.pid);
    assert_eq!(entries[0].name.as_deref(), Some("dots"));
    assert_eq!(
        entries[0].runs, 2,
        "history counts runs from both connections"
    );
    assert_eq!(entries[0].total_cycles, 2 * meta.cycles);

    handle.shutdown();
}

// ---------------------------------------------------------------------
// Expiry, GC, and token error kinds
// ---------------------------------------------------------------------

#[test]
fn detached_session_expires_and_late_resume_answers_session_expired() {
    let handle = start(ServerConfig {
        session_ttl: Duration::from_millis(40),
        ..ServerConfig::default()
    });
    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    let token = a.open_session().expect("open_session").token;
    drop(a);

    // Past the TTL the sweeper (waking every quarter-TTL, min 10ms)
    // collects the orphan; the late resume gets the structured answer.
    std::thread::sleep(Duration::from_millis(200));
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    let err = server_err(b.resume_session(token));
    assert_eq!(err.kind, ErrorKind::SessionExpired, "{err}");
    assert!(err.message.contains("TTL"), "{err}");
    assert!(
        b.session_token().is_none(),
        "a failed resume holds no token"
    );

    handle.shutdown();
}

#[test]
fn forged_token_answers_bad_token() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let err = server_err(client.resume_session("f".repeat(32)));
    assert_eq!(err.kind, ErrorKind::BadToken, "{err}");
    // The refused client still works as an ephemeral session.
    assert_eq!(
        client.dot(Precision::P8, &[1, 2], &[3, 4]).expect("dot"),
        11
    );
    handle.shutdown();
}

#[test]
fn second_concurrent_resume_of_a_live_token_is_refused() {
    let handle = start(ServerConfig::default());
    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    let token = a.open_session().expect("open_session").token;

    // While A holds the session, B's resume is refused with a back-off
    // hint (generic, not a token error: the token is valid, just busy).
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    let resp = b
        .call(RequestBody::ResumeSession {
            token: token.clone(),
        })
        .expect("call");
    match resp.body {
        ResponseBody::Error(err) => {
            assert_eq!(err.kind, ErrorKind::Generic, "{err}");
            assert!(err.retry_after_ms.is_some(), "busy refusal hints a retry");
            assert!(err.message.contains("attached"), "{err}");
        }
        other => panic!("expected a busy refusal, got {other:?}"),
    }

    // A keeps working throughout; once A drops, B's retry attaches.
    assert_eq!(a.dot(Precision::P8, &[2], &[3]).expect("dot on A"), 6);
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        match b.resume_session(token.clone()) {
            Ok(info) => {
                assert_eq!(info.stats.requests, 1, "A's dot rode along");
                break;
            }
            Err(ClientError::Server(err)) if err.retry_after_ms.is_some() => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "A's detach must land: {err}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("unexpected resume failure: {e}"),
        }
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Registry caps
// ---------------------------------------------------------------------

#[test]
fn orphaned_sessions_hold_registry_slots_until_swept() {
    let handle = start(ServerConfig {
        session_ttl: Duration::from_millis(40),
        max_sessions: 1,
        ..ServerConfig::default()
    });

    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    a.open_session().expect("first open fills the registry");

    // A second open is refused while the slot is held...
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    let err = server_err(b.open_session());
    assert_eq!(err.kind, ErrorKind::LimitExceeded, "{err}");
    assert_eq!(err.limit, Some(LimitKind::Sessions), "{err}");
    assert!(err.retry_after_ms.is_some(), "the TTL hints when to retry");

    // ...and still refused right after A drops: the orphan keeps its slot
    // under the TTL (that is the point of durability).
    drop(a);
    let err = server_err(b.open_session());
    assert_eq!(err.limit, Some(LimitKind::Sessions), "{err}");

    // Once the sweeper collects the orphan, the slot frees.
    std::thread::sleep(Duration::from_millis(200));
    b.open_session().expect("swept orphan freed its slot");
    handle.shutdown();
}

#[test]
fn registry_wide_program_cap_spans_sessions_and_frees_on_delete() {
    let handle = start(ServerConfig {
        max_registry_programs: 2,
        ..ServerConfig::default()
    });

    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    a.open_session().expect("open A");
    a.store_program(&dot_shape()).expect("A stores #1");
    let kept = a.store_program(&dot_shape()).expect("A stores #2");

    // B's own session is empty, but the *global* cap counts A's programs.
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    b.open_session().expect("open B");
    let err = server_err(b.store_program(&dot_shape()));
    assert_eq!(err.kind, ErrorKind::LimitExceeded, "{err}");
    assert_eq!(err.limit, Some(LimitKind::RegistryPrograms), "{err}");

    // Deleting one of A's frees a registry-wide slot for B.
    a.delete_program(StoredTarget::Pid(kept.pid))
        .expect("delete frees the slot");
    b.store_program(&dot_shape())
        .expect("B stores after the delete");
    handle.shutdown();
}

// ---------------------------------------------------------------------
// The named program registry and its run history
// ---------------------------------------------------------------------

#[test]
fn named_programs_list_delete_and_run_history() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let named = client
        .store_program_named(&dot_shape(), "dots")
        .expect("store named");
    let anon = client.store_program(&dot_shape()).expect("store anonymous");
    assert_ne!(named.pid, anon.pid);

    // A name collision is refused outright.
    let err = server_err(client.store_program_named(&dot_shape(), "dots"));
    assert!(err.message.contains("already exists"), "{err}");

    // Two clean runs, then a failing one (bad binding width).
    for k in 1..=2u64 {
        client
            .run_stored_named("dots", &[Some(vec![k, k, k]), Some(vec![1, 2, 3])])
            .expect("clean run");
    }
    let run_err = server_err(client.run_stored_named("dots", &[Some(vec![1]), None]));
    assert!(!run_err.message.is_empty());

    // The listing carries the full history, ordered by pid.
    let entries = client.list_programs().expect("list_programs");
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].pid, named.pid);
    assert_eq!(entries[0].name.as_deref(), Some("dots"));
    assert_eq!(entries[0].runs, 2);
    assert_eq!(entries[0].errors, 1);
    assert_eq!(entries[0].total_cycles, 2 * named.cycles);
    assert!(entries[0].total_energy_fj > 0.0);
    match &entries[0].last_status {
        Some(bpimc_core::RunStatus::Error { message }) => {
            assert_eq!(message, &run_err.message, "history records the error")
        }
        other => panic!("expected the failing run as last status, got {other:?}"),
    }
    assert_eq!(entries[1].pid, anon.pid);
    assert_eq!(entries[1].name, None);
    assert_eq!(entries[1].runs, 0);
    assert_eq!(entries[1].last_status, None);

    // Delete by name; the pid and name both stop resolving.
    client
        .delete_program(StoredTarget::Name("dots".into()))
        .expect("delete by name");
    let entries = client.list_programs().expect("list after delete");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].pid, anon.pid);
    let err = server_err(client.run_stored_named("dots", &[]));
    assert!(err.message.contains("no stored program"), "{err}");
    let err = server_err(client.delete_program(StoredTarget::Name("dots".into())));
    assert!(err.message.contains("no stored program"), "{err}");

    // The freed name is reusable.
    client
        .store_program_named(&dot_shape(), "dots")
        .expect("name freed by delete");
    handle.shutdown();
}

// ---------------------------------------------------------------------
// The seq replay guard: exactly-once over the wire
// ---------------------------------------------------------------------

/// Drives the wire protocol directly (the [`Client`] never reuses a seq,
/// which is exactly what this test must do).
struct RawConn {
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> RawConn {
        let stream = std::net::TcpStream::connect(addr).expect("raw connect");
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        RawConn {
            writer: stream,
            reader,
        }
    }

    fn call(&mut self, id: u64, seq: Option<u64>, body: RequestBody) -> Response {
        use std::io::{BufRead, Write};
        let mut line = Request {
            id,
            seq,
            timeout_ms: None,
            body,
        }
        .to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        let resp = Response::parse(&reply).expect("parse");
        assert_eq!(resp.id, id, "responses answer in order");
        resp
    }
}

#[test]
fn duplicate_seq_replays_the_recorded_response_and_bills_once() {
    let handle = start(ServerConfig::default());
    let mut conn = RawConn::connect(handle.local_addr());

    let resp = conn.call(1, None, RequestBody::OpenSession);
    let ResponseBody::Session(_) = resp.body else {
        panic!("expected session info, got {:?}", resp.body);
    };

    // Execute seq 0 once.
    let dot = RequestBody::Dot {
        precision: Precision::P8,
        x: vec![1, 2, 3],
        w: vec![4, 5, 6],
    };
    let first = conn.call(2, Some(0), dot);
    assert_eq!(first.body, ResponseBody::Scalar(32));

    // A resend of seq 0 — even with a *different* body, as a torn retry
    // might produce — answers the recorded response without executing.
    let other = RequestBody::Dot {
        precision: Precision::P8,
        x: vec![9, 9, 9],
        w: vec![9, 9, 9],
    };
    let replayed = conn.call(3, Some(0), other);
    assert_eq!(
        replayed.body,
        ResponseBody::Scalar(32),
        "the replay answers the recorded response, not a re-execution"
    );

    // The account billed the dot exactly once; the replay was free.
    let stats = conn.call(4, Some(1), RequestBody::Stats);
    match stats.body {
        ResponseBody::Stats(s) => {
            assert_eq!(s.requests, 1, "one dot executed, once");
            assert_eq!(s.errors, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.shutdown();
}

/// Durability is opt-in per session, not per server: with a state dir
/// configured, connections that never call `open_session` leave no
/// trace on disk — no journal events, no snapshot entries — so an
/// all-ephemeral workload costs the persistence layer nothing and a
/// restart recovers an empty registry.
#[test]
fn ephemeral_sessions_leave_no_durable_trace() {
    use bpimc_server::StateConfig;

    let dir = std::env::temp_dir().join(format!("bpimc-ephemeral-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");

    let handle = start(ServerConfig {
        state: Some(StateConfig::new(dir.clone())),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for _ in 0..4 {
        let dot = client
            .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
            .expect("dot");
        assert_eq!(dot, 32);
    }
    let prog = dot_shape();
    client.store_program(&prog).expect("store on ephemeral");
    drop(client);
    handle.shutdown();

    let report = bpimc_server::inspect(&dir).expect("inspect");
    assert!(!report.corrupt());
    assert!(report.warm, "clean shutdown with nothing to replay");
    assert!(
        report.sessions.is_empty(),
        "ephemeral work must not be persisted: {:?}",
        report.sessions
    );
    assert!(
        report.journals.iter().all(|j| j.records == 0),
        "no journal events for ephemeral traffic: {:?}",
        report.journals
    );
    let _ = std::fs::remove_dir_all(&dir);
}
