//! Crash-safe durable state, end to end over real TCP: journal-tail
//! replay after a simulated crash, warm restarts off a clean-shutdown
//! marker, a crash-point matrix (one crash image per mutating op, each
//! recovered and audited), torn-write and bit-flip corruption handling,
//! seq-retry replay across a restart, and TTL carry for sessions that
//! were already detached when the crash hit.
//!
//! Crashes are simulated by **copying the state directory mid-run**: with
//! `fsync always` every journaled byte is on disk the moment the client
//! holds the response, so a file-level copy of the directory is exactly
//! the state a `kill -9` at that instant would leave behind (the
//! subprocess variant of the same assertion lives in
//! `load_gen --chaos --restart`).

use bpimc_core::prog::ProgramBuilder;
use bpimc_core::{
    ErrorKind, Precision, Program, Request, RequestBody, Response, ResponseBody, SessionActivity,
    StoredTarget,
};
use bpimc_server::{inspect, Client, ClientError, Server, ServerConfig, ServerHandle, StateConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh, unique state directory under the system temp dir.
fn temp_state_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bpimc-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");
    dir
}

/// The crash image: a byte-level copy of the live state directory, i.e.
/// what a `kill -9` at this instant would leave on disk under
/// `fsync always`.
fn crash_image(live: &Path, tag: &str) -> PathBuf {
    let dest = temp_state_dir(tag);
    for entry in std::fs::read_dir(live).expect("read state dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dest.join(entry.file_name())).expect("copy state file");
    }
    dest
}

fn persistent_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        state: Some(StateConfig::new(dir.to_path_buf())),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A dot-style pipeline with two bindable writes (the canonical stored
/// shape from the session suite).
fn dot_shape() -> Program {
    let p = Precision::P8;
    let mut b = ProgramBuilder::new();
    let x = b.write_mult(p, vec![0, 0, 0]);
    let w = b.write_mult(p, vec![0, 0, 0]);
    let prod = b.mult(x, w, p);
    b.read_products(prod, p, 3);
    b.finish()
}

/// The single journal file of the newest generation in a state dir.
fn newest_journal(dir: &Path) -> PathBuf {
    let mut journals: Vec<_> = std::fs::read_dir(dir)
        .expect("read state dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            let name = p.file_name()?.to_str()?.to_string();
            let gen: u64 = name
                .strip_prefix("journal-")?
                .strip_suffix(".log")?
                .parse()
                .ok()?;
            Some((gen, p))
        })
        .collect();
    journals.sort();
    journals.pop().expect("a journal exists").1
}

// ---------------------------------------------------------------------
// Journal replay restores the whole tenant across a crash
// ---------------------------------------------------------------------

#[test]
fn crash_point_matrix_recovers_each_prefix_exactly() {
    let dir = temp_state_dir("matrix");
    let handle = start(persistent_config(&dir));

    let protos: Vec<Vec<u64>> = (0..3)
        .map(|p| (0..8).map(|i| (p * 50 + i * 11) % 256).collect())
        .collect();
    let sample: Vec<u64> = (0..8).map(|i| (i * 7 + 3) % 256).collect();

    // One crash image per state-mutating op: image[i] is the disk state
    // a kill -9 immediately after op i would leave behind.
    let mut a = Client::connect(handle.local_addr()).expect("connect A");
    let token = a.open_session().expect("open_session").token;
    let mut images = vec![crash_image(&dir, "matrix-img")]; // after open
    a.load_model(Precision::P8, &protos).expect("load_model");
    images.push(crash_image(&dir, "matrix-img")); // after load_model
    let class = a.classify(&sample).expect("classify");
    images.push(crash_image(&dir, "matrix-img")); // after classify
    let meta = a
        .store_program_named(&dot_shape(), "dots")
        .expect("store_program_named");
    images.push(crash_image(&dir, "matrix-img")); // after store
    let report = a
        .run_stored_named("dots", &[Some(vec![1, 2, 3]), Some(vec![4, 5, 6])])
        .expect("run_stored_named");
    assert_eq!(report.outputs, vec![vec![4, 10, 18]]);
    images.push(crash_image(&dir, "matrix-img")); // after run_stored
    let dot = a
        .dot(Precision::P8, &[1, 2, 3, 4], &[4, 3, 2, 1])
        .expect("dot");
    assert_eq!(dot, 20);
    images.push(crash_image(&dir, "matrix-img")); // after dot
    a.delete_program(StoredTarget::Name("dots".into()))
        .expect("delete_program");
    images.push(crash_image(&dir, "matrix-img")); // after delete

    // Accounting ground truth without extra billing: drop the connection
    // and read the account off a resume (session ops bill nothing).
    drop(a);
    let mut b = Client::connect(handle.local_addr()).expect("connect B");
    let truth = b.resume_session(token.clone()).expect("resume on A");
    drop(b);
    handle.shutdown();

    let mut prev = SessionActivity::new();
    for (i, image) in images.iter().enumerate() {
        // Every image must audit clean, with the cold recovery path.
        let audit = inspect(image).expect("inspect crash image");
        assert!(!audit.corrupt(), "image {i} is uncorrupted");
        assert!(!audit.warm, "a crash image has no clean-shutdown marker");
        assert_eq!(audit.sessions.len(), 1, "image {i} holds the session");

        let handle = start(persistent_config(image));
        let mut c = Client::connect(handle.local_addr()).expect("connect recovered");
        let info = c.resume_session(token.clone()).expect("resume recovered");
        let stats = info.stats;
        // Exactly the executed prefix is billed: one request per op
        // after the open, never fewer (lost updates) and never more
        // (double billing), and totals only grow along the prefix.
        assert_eq!(stats.requests, i as u64, "image {i} bills i executed ops");
        assert_eq!(stats.errors, 0);
        assert!(stats.cycles >= prev.cycles && stats.energy_fj >= prev.energy_fj);
        let programs = c.list_programs().expect("list_programs");
        if (3..=5).contains(&i) {
            assert_eq!(programs.len(), 1, "image {i} holds the stored program");
            assert_eq!(programs[0].pid, meta.pid);
            assert_eq!(programs[0].name.as_deref(), Some("dots"));
            // The recompiled cache replays the program identically.
            let rerun = c
                .run_stored_named("dots", &[Some(vec![1, 2, 3]), Some(vec![4, 5, 6])])
                .expect("run_stored on recovered");
            assert_eq!(rerun.outputs, vec![vec![4, 10, 18]]);
            assert_eq!(rerun.cycles, report.cycles);
        } else {
            assert!(programs.is_empty(), "image {i} has no stored program");
        }
        if i >= 2 {
            // The model was rebuilt from its persisted prototypes.
            assert_eq!(c.classify(&sample).expect("classify recovered"), class);
        }
        drop(c);
        handle.shutdown();
        prev = stats;
    }
    // The final image recovers the account byte-identically: same
    // request/error counts, same cycles, bit-exact energy.
    assert_eq!(prev, truth.stats, "final image == live account, byte-exact");
    assert_eq!(truth.stats.requests, 6);
}

// ---------------------------------------------------------------------
// Warm restart: clean shutdown marker skips journal replay
// ---------------------------------------------------------------------

#[test]
fn graceful_shutdown_enables_a_warm_restart() {
    let dir = temp_state_dir("warm");
    let handle = start(persistent_config(&dir));
    let mut a = Client::connect(handle.local_addr()).expect("connect");
    let token = a.open_session().expect("open_session").token;
    let dot = a.dot(Precision::P8, &[2, 2, 2], &[3, 3, 3]).expect("dot");
    assert_eq!(dot, 18);
    drop(a);
    // Graceful shutdown writes the final snapshot and the clean marker.
    handle.shutdown();

    let audit = inspect(&dir).expect("inspect after shutdown");
    assert!(!audit.corrupt());
    assert!(audit.warm, "a clean shutdown leaves the warm path");
    assert_eq!(
        audit.replayed_events, 0,
        "a warm restart replays no journal events"
    );
    assert_eq!(audit.clean_marker, audit.chosen_snapshot);
    assert_eq!(audit.sessions.len(), 1);
    assert_eq!(audit.sessions[0].stats.requests, 1);

    // And the restarted server serves the same session.
    let handle = start(persistent_config(&dir));
    let mut b = Client::connect(handle.local_addr()).expect("connect restarted");
    let info = b.resume_session(token).expect("resume after warm restart");
    assert_eq!(info.stats.requests, 1);
    assert!(info.stats.cycles > 0);
    drop(b);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Torn writes and bit flips: stop cleanly at the first bad record
// ---------------------------------------------------------------------

#[test]
fn torn_journal_tail_is_truncated_and_the_prefix_recovers() {
    let dir = temp_state_dir("torn");
    let handle = start(persistent_config(&dir));
    let mut a = Client::connect(handle.local_addr()).expect("connect");
    let token = a.open_session().expect("open_session").token;
    for k in 1..=3u64 {
        a.dot(Precision::P8, &[k, k, k], &[1, 2, 3]).expect("dot");
    }
    let image = crash_image(&dir, "torn-img");
    drop(a);
    handle.shutdown();

    // Tear the last journal record mid-frame, as a crash mid-write would.
    let journal = newest_journal(&image);
    let bytes = std::fs::read(&journal).expect("read journal");
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).expect("tear journal");

    let audit = inspect(&image).expect("inspect torn image");
    assert!(audit.corrupt(), "the torn tail is reported");
    let (file, c) = &audit.corruptions[0];
    assert!(
        file.starts_with("journal-"),
        "corruption names the file: {file}"
    );
    assert!(c.dropped_bytes > 0 && c.offset > 0);

    // Recovery keeps the three intact events (open + two dots), truncates
    // the torn tail, and the server comes up serving the prefix.
    let handle = start(persistent_config(&image));
    let mut b = Client::connect(handle.local_addr()).expect("connect recovered");
    let info = b.resume_session(token).expect("resume recovered");
    assert_eq!(info.stats.requests, 2, "the torn third dot was dropped");
    drop(b);
    handle.shutdown();

    // The bad tail is gone from disk: a second audit is clean.
    let audit = inspect(&image).expect("re-inspect");
    assert!(!audit.corrupt(), "recovery truncated the torn tail");
}

#[test]
fn bit_flip_fails_the_crc_and_recovery_stops_there() {
    let dir = temp_state_dir("flip");
    let handle = start(persistent_config(&dir));
    let mut a = Client::connect(handle.local_addr()).expect("connect");
    let token = a.open_session().expect("open_session").token;
    for k in 1..=3u64 {
        a.dot(Precision::P8, &[k, k, k], &[1, 2, 3]).expect("dot");
    }
    let image = crash_image(&dir, "flip-img");
    drop(a);
    handle.shutdown();

    // Flip one bit inside the last record's payload: the length prefix
    // still reads, the CRC must catch it.
    let journal = newest_journal(&image);
    let mut bytes = std::fs::read(&journal).expect("read journal");
    let n = bytes.len();
    bytes[n - 3] ^= 0x10;
    std::fs::write(&journal, &bytes).expect("flip journal");

    let audit = inspect(&image).expect("inspect flipped image");
    assert!(audit.corrupt(), "the flipped record is reported");
    assert!(
        audit.corruptions[0]
            .1
            .reason
            .to_ascii_lowercase()
            .contains("crc"),
        "the reason names the CRC: {}",
        audit.corruptions[0].1.reason
    );

    let handle = start(persistent_config(&image));
    let mut b = Client::connect(handle.local_addr()).expect("connect recovered");
    let info = b.resume_session(token).expect("resume recovered");
    assert_eq!(
        info.stats.requests, 2,
        "replay stopped before the bad record"
    );
    drop(b);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Seq-retry replay survives the restart
// ---------------------------------------------------------------------

/// Drives the wire protocol directly so the test controls `seq` numbers:
/// a pre-crash seq resent after the restart must be *replayed* from the
/// recovered window — same response, no re-execution, no double billing —
/// even when the resend carries different (wrong) operands.
#[test]
fn pre_crash_seq_retries_replay_instead_of_re_executing() {
    let send = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &Request| {
        let mut line = req.to_json_line();
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("write request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        Response::parse(&line).expect("parse response").body
    };
    let dot = |id: u64, seq: u64, x: Vec<u64>, w: Vec<u64>| Request {
        id,
        timeout_ms: None,
        seq: Some(seq),
        body: RequestBody::Dot {
            precision: Precision::P8,
            x,
            w,
        },
    };
    let connect = |addr| {
        let stream = TcpStream::connect(addr).expect("connect raw");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (stream, reader)
    };

    let dir = temp_state_dir("seqretry");
    let handle = start(persistent_config(&dir));
    let (mut s, mut r) = connect(handle.local_addr());
    let open = Request {
        id: 1,
        timeout_ms: None,
        seq: None,
        body: RequestBody::OpenSession,
    };
    let token = match send(&mut s, &mut r, &open) {
        ResponseBody::Session(info) => info.token,
        other => panic!("open_session answered {other:?}"),
    };
    let v0 = match send(&mut s, &mut r, &dot(2, 0, vec![1, 2, 3], vec![4, 5, 6])) {
        ResponseBody::Scalar(v) => v,
        other => panic!("dot answered {other:?}"),
    };
    assert_eq!(v0, 32);
    let v1 = match send(&mut s, &mut r, &dot(3, 1, vec![7, 7, 7], vec![1, 1, 1])) {
        ResponseBody::Scalar(v) => v,
        other => panic!("dot answered {other:?}"),
    };
    assert_eq!(v1, 21);
    let image = crash_image(&dir, "seqretry-img");
    drop((s, r));
    handle.shutdown();

    // Restart from the crash image; the replay window came back with it.
    let handle = start(persistent_config(&image));
    let (mut s, mut r) = connect(handle.local_addr());
    let resume = Request {
        id: 10,
        timeout_ms: None,
        seq: None,
        body: RequestBody::ResumeSession {
            token: token.clone(),
        },
    };
    match send(&mut s, &mut r, &resume) {
        ResponseBody::Session(info) => {
            assert_eq!(info.last_seq, Some(1), "the seq watermark survived");
            assert_eq!(info.stats.requests, 2);
        }
        other => panic!("resume answered {other:?}"),
    }
    // An honest retry of seq 1 replays the recorded response.
    match send(&mut s, &mut r, &dot(11, 1, vec![7, 7, 7], vec![1, 1, 1])) {
        ResponseBody::Scalar(v) => assert_eq!(v, v1, "the retry replays the recorded value"),
        other => panic!("retry answered {other:?}"),
    }
    // Even a retry with *different operands* replays — proof the server
    // answered from the recovered window instead of executing anything.
    match send(
        &mut s,
        &mut r,
        &dot(12, 1, vec![100, 100, 100], vec![2, 2, 2]),
    ) {
        ResponseBody::Scalar(v) => assert_eq!(v, v1, "replay ignores the resent operands"),
        other => panic!("mismatched retry answered {other:?}"),
    }
    // A fresh seq executes normally.
    match send(&mut s, &mut r, &dot(13, 2, vec![2, 2], vec![5, 5])) {
        ResponseBody::Scalar(v) => assert_eq!(v, 20),
        other => panic!("fresh seq answered {other:?}"),
    }
    drop((s, r));

    // No double billing: the account saw exactly three executions.
    let mut c = Client::connect(handle.local_addr()).expect("connect for audit");
    let info = c.resume_session(token).expect("resume for audit");
    assert_eq!(info.stats.requests, 3, "replayed retries are never billed");
    assert_eq!(info.last_seq, Some(2));
    drop(c);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// TTL carry: a restart never grants a detached session a fresh clock
// ---------------------------------------------------------------------

#[test]
fn detached_time_before_the_crash_counts_against_the_ttl_after_it() {
    let dir = temp_state_dir("ttl");
    let handle = start(persistent_config(&dir));
    let mut a = Client::connect(handle.local_addr()).expect("connect");
    let token = a.open_session().expect("open_session").token;
    a.dot(Precision::P8, &[1, 1], &[1, 1]).expect("dot");
    // Detach (the journal records the wall clock), then let detached time
    // accrue before the "crash".
    drop(a);
    std::thread::sleep(Duration::from_millis(150));
    let image = crash_image(&dir, "ttl-img");
    let image2 = crash_image(&dir, "ttl-img2");
    handle.shutdown();

    // Recovered under a 120ms TTL: the ~150ms already served before the
    // crash exhausts the clock, so the sweeper collects the session even
    // though the *restarted server* is younger than the TTL. A fresh
    // clock would keep it alive here — that is the bug this guards.
    let handle = start(ServerConfig {
        session_ttl: Duration::from_millis(120),
        ..persistent_config(&image)
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut b = Client::connect(handle.local_addr()).expect("connect recovered");
    match b.resume_session(token.clone()) {
        Err(ClientError::Server(err)) => assert_eq!(
            err.kind,
            ErrorKind::SessionExpired,
            "pre-crash detached time counts: {err:?}"
        ),
        other => panic!("a carried-over TTL must already be exhausted, got {other:?}"),
    }
    drop(b);
    handle.shutdown();

    // The same image under a generous TTL resumes fine — expiry above
    // came from the carried clock, not from recovery dropping state.
    let handle = start(ServerConfig {
        session_ttl: Duration::from_secs(30),
        ..persistent_config(&image2)
    });
    let mut c = Client::connect(handle.local_addr()).expect("connect recovered 2");
    let info = c.resume_session(token).expect("resume under a long TTL");
    assert_eq!(info.stats.requests, 1);
    drop(c);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Fsync policies: interval mode still converges to a durable snapshot
// ---------------------------------------------------------------------

#[test]
fn interval_fsync_with_graceful_shutdown_loses_nothing() {
    let dir = temp_state_dir("interval");
    let mut state = StateConfig::new(dir.clone());
    state.fsync = bpimc_server::FsyncPolicy::parse("interval:25").expect("parse policy");
    let handle = start(ServerConfig {
        state: Some(state),
        ..ServerConfig::default()
    });
    let mut a = Client::connect(handle.local_addr()).expect("connect");
    let token = a.open_session().expect("open_session").token;
    for _ in 0..5 {
        a.dot(Precision::P8, &[3, 3], &[2, 2]).expect("dot");
    }
    drop(a);
    handle.shutdown();

    let handle = start(persistent_config(&dir));
    let mut b = Client::connect(handle.local_addr()).expect("connect restarted");
    let info = b.resume_session(token).expect("resume");
    assert_eq!(info.stats.requests, 5);
    drop(b);
    handle.shutdown();
}
