//! Lock-order hygiene: one real served workload acquires every long-lived
//! server lock (queue state, per-connection outboxes and sessions, the
//! connection/reader/writer registries), and the runtime lock-order
//! analyzer — active in debug builds — must observe an **acyclic**
//! acquisition-order graph. A cycle here is a potential deadlock reported
//! from a single benign run, without needing the bad interleaving.

use bpimc_core::{Precision, Program, StoredTarget};
use bpimc_server::{Client, Server, ServerConfig, SessionLimits, StateConfig};

#[test]
fn served_workload_has_acyclic_lock_order() {
    // Metered limits so the admission path (session lock inside the
    // dispatch path) runs too.
    let config = ServerConfig {
        limits: SessionLimits {
            max_cycles_per_sec: Some(u64::MAX),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for _ in 0..4 {
        let dot = client
            .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
            .expect("dot");
        assert_eq!(dot, 32);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 4);
    drop(client);
    handle.shutdown();
    bpimc_stats::sync::lockorder::assert_acyclic("server.");
}

/// The durable variant: with `--state-dir` on, every journaled mutation
/// holds `server.persist.journal` outermost, so this workload walks the
/// journal → registry → session chain (open/store/run/delete, a
/// detach/resume cycle, graceful shutdown, and a recovery boot) and the
/// observed acquisition graph must still be acyclic.
#[test]
fn persisted_workload_has_acyclic_lock_order() {
    let dir = std::env::temp_dir().join(format!("bpimc-lockorder-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");

    let config = ServerConfig {
        state: Some(StateConfig::new(dir.clone())),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let token = client.open_session().expect("open_session").token;
    let prog = {
        let p = Precision::P8;
        let mut b = bpimc_core::prog::ProgramBuilder::new();
        let x = b.write_mult(p, vec![0, 0, 0]);
        let w = b.write_mult(p, vec![0, 0, 0]);
        let prod = b.mult(x, w, p);
        b.read_products(prod, p, 3);
        b.finish()
    };
    store_run_delete(&mut client, &prog);
    drop(client); // journaled detach

    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    client.resume_session(token).expect("resume"); // journaled attach
    drop(client);
    handle.shutdown(); // final snapshot + clean marker

    // The recovery path (snapshot load + journal replay + materialize)
    // takes the same locks at boot; it must fit the same order.
    let handle = Server::bind("127.0.0.1:0", config).expect("rebind");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    bpimc_stats::sync::lockorder::assert_acyclic("server.");
}

fn store_run_delete(client: &mut Client, prog: &Program) {
    let meta = client
        .store_program_named(prog, "lockorder")
        .expect("store_program_named");
    let report = client
        .run_stored_named("lockorder", &[Some(vec![1, 2, 3]), Some(vec![4, 5, 6])])
        .expect("run_stored_named");
    assert_eq!(report.outputs, vec![vec![4, 10, 18]]);
    client
        .delete_program(StoredTarget::Pid(meta.pid))
        .expect("delete_program");
}
