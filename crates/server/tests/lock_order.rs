//! Lock-order hygiene: one real served workload acquires every long-lived
//! server lock (queue state, per-connection outboxes and sessions, the
//! connection/reader/writer registries), and the runtime lock-order
//! analyzer — active in debug builds — must observe an **acyclic**
//! acquisition-order graph. A cycle here is a potential deadlock reported
//! from a single benign run, without needing the bad interleaving.

use bpimc_core::Precision;
use bpimc_server::{Client, Server, ServerConfig, SessionLimits};

#[test]
fn served_workload_has_acyclic_lock_order() {
    // Metered limits so the admission path (session lock inside the
    // dispatch path) runs too.
    let config = ServerConfig {
        limits: SessionLimits {
            max_cycles_per_sec: Some(u64::MAX),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for _ in 0..4 {
        let dot = client
            .dot(Precision::P8, &[1, 2, 3], &[4, 5, 6])
            .expect("dot");
        assert_eq!(dot, 32);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 4);
    drop(client);
    handle.shutdown();
    bpimc_stats::sync::lockorder::assert_acyclic("server.");
}
