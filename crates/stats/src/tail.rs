//! Gaussian-tail extrapolation of rare-event probabilities.
//!
//! The paper calibrates its two bit-line computing schemes at an *iso*
//! read-disturb failure rate of 2.5e-5 (Fig. 2). Estimating such rates by
//! direct Monte-Carlo requires millions of transient simulations; the
//! standard practice in SRAM margin analysis (and what we implement here) is
//! to simulate a few thousand samples of the continuous *margin* variable,
//! fit a normal distribution, and extrapolate the tail probability
//! `P(margin < 0)` from the fitted z-score.

use crate::gauss::{inv_norm_cdf, norm_sf};
use crate::summary::Summary;

/// A normal fit to a margin sample, with tail-probability queries.
///
/// # Examples
///
/// ```
/// use bpimc_stats::{seeded_rng, Normal, TailFit};
/// let mut rng = bpimc_stats::seeded_rng(5);
/// let n = Normal::new(4.0, 1.0);
/// let margins = n.sample_n(&mut rng, 4000);
/// let fit = TailFit::from_margins(&margins);
/// // True P(margin < 0) = P(Z < -4) ~ 3.2e-5.
/// let p = fit.failure_probability();
/// assert!(p > 3.0e-6 && p < 3.0e-4, "p = {p}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailFit {
    mean: f64,
    sigma: f64,
    n: usize,
}

impl TailFit {
    /// Fits a normal to `margins` (the distance-to-failure samples).
    ///
    /// # Panics
    ///
    /// Panics if `margins` is empty, contains non-finite values, or has zero
    /// spread (a degenerate fit cannot extrapolate).
    pub fn from_margins(margins: &[f64]) -> Self {
        let s = Summary::from_slice(margins);
        assert!(
            s.std > 0.0,
            "margin sample has zero spread; cannot fit tail"
        );
        Self {
            mean: s.mean,
            sigma: s.std,
            n: s.n,
        }
    }

    /// Creates a fit directly from known mean/sigma (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn from_moments(mean: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { mean, sigma, n: 0 }
    }

    /// Fitted mean of the margin.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation of the margin.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The z-score of the failure boundary (margin = 0): `mean / sigma`.
    pub fn z_margin(&self) -> f64 {
        self.mean / self.sigma
    }

    /// Extrapolated failure probability `P(margin < 0)`.
    pub fn failure_probability(&self) -> f64 {
        norm_sf(self.z_margin())
    }

    /// The margin mean that would be required (at this sigma) to achieve a
    /// target failure probability. Used for iso-failure-rate calibration.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 0.5)`.
    pub fn mean_for_failure(&self, target: f64) -> f64 {
        assert!(
            target > 0.0 && target < 0.5,
            "target failure probability must be in (0, 0.5), got {target}"
        );
        // P(margin < 0) = target  =>  mean = -sigma * Phi^-1(target).
        -self.sigma * inv_norm_cdf(target)
    }

    /// Number of samples behind the fit (0 when built from moments).
    pub fn sample_count(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_and_probability() {
        let fit = TailFit::from_moments(4.0556, 1.0);
        let p = fit.failure_probability();
        // Phi(-4.0556) ~ 2.5e-5, the paper's iso-failure point.
        assert!((p - 2.5e-5).abs() < 2.5e-6, "p={p}");
    }

    #[test]
    fn mean_for_failure_round_trip() {
        let fit = TailFit::from_moments(3.0, 0.7);
        let need = fit.mean_for_failure(2.5e-5);
        let fit2 = TailFit::from_moments(need, 0.7);
        let p = fit2.failure_probability();
        assert!((p - 2.5e-5).abs() / 2.5e-5 < 0.02, "p={p}");
    }

    #[test]
    fn fit_from_samples() {
        use crate::{seeded_rng, Normal};
        let mut rng = seeded_rng(11);
        let xs = Normal::new(5.0, 1.25).sample_n(&mut rng, 10_000);
        let fit = TailFit::from_margins(&xs);
        assert!((fit.mean() - 5.0).abs() < 0.05);
        assert!((fit.sigma() - 1.25).abs() < 0.05);
        assert_eq!(fit.sample_count(), 10_000);
    }

    #[test]
    #[should_panic(expected = "zero spread")]
    fn degenerate_sample_panics() {
        let _ = TailFit::from_margins(&[1.0, 1.0, 1.0]);
    }
}
