//! Standard normal CDF and quantile function.
//!
//! Implemented from standard published rational approximations so the
//! workspace carries no special-function dependency:
//!
//! * `norm_cdf` uses the complementary error function of W. J. Cody's
//!   rational-approximation family (abs. error < 1.2e-7, ample for
//!   failure-rate work at the 1e-7 level),
//! * `inv_norm_cdf` uses Acklam's algorithm with one Halley refinement step,
//!   giving ~1e-9 relative accuracy over (0, 1).

/// The error function `erf(x)`, Abramowitz & Stegun 7.1.26 style rational
/// approximation with |error| < 1.5e-7.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `P(Z <= z)`.
///
/// # Examples
///
/// ```
/// let p = bpimc_stats::norm_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-7);
/// ```
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Upper-tail probability `P(Z > z)` computed stably for large `z`.
///
/// For `z > 6` the rational `erf` approximation underflows its useful range,
/// so the asymptotic expansion `phi(z)/z * (1 - 1/z^2 + 3/z^4)` is used
/// instead; this keeps iso-failure-rate calibration accurate down to ~1e-12.
pub fn norm_sf(z: f64) -> f64 {
    if z > 6.0 {
        let phi = (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt();
        phi / z * (1.0 - 1.0 / (z * z) + 3.0 / (z * z * z * z))
    } else if z < -6.0 {
        1.0 - norm_sf(-z)
    } else {
        1.0 - norm_cdf(z)
    }
}

/// Standard normal quantile function (inverse CDF), Acklam's algorithm with a
/// single Halley refinement step.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Examples
///
/// ```
/// let z = bpimc_stats::inv_norm_cdf(0.975);
/// assert!((z - 1.959964).abs() < 1e-4);
/// ```
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the CDF residual. Only worthwhile in the
    // central region: in the tails the rational-erf CDF error (~1.5e-7) is
    // amplified by exp(x^2/2) and would *degrade* Acklam's ~1e-9 raw result.
    if (0.01..=0.99).contains(&p) {
        let e = norm_cdf(x) - p;
        let u = e * (std::f64::consts::TAU).sqrt() * (0.5 * x * x).exp();
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.0) - 0.841345).abs() < 1e-4);
        assert!((norm_cdf(-1.0) - 0.158655).abs() < 1e-4);
        assert!((norm_cdf(2.0) - 0.977250).abs() < 1e-4);
    }

    #[test]
    fn sf_matches_cdf_in_core_range() {
        for z in [-3.0, -1.0, 0.0, 0.5, 2.0, 5.0] {
            assert!((norm_sf(z) - (1.0 - norm_cdf(z))).abs() < 1e-7, "z={z}");
        }
    }

    #[test]
    fn sf_deep_tail_is_sane() {
        // P(Z > 7) ~ 1.28e-12; the asymptotic branch should be within 10%.
        let p = norm_sf(7.0);
        assert!(p > 1.0e-12 && p < 1.5e-12, "p {p}");
        // Monotone decreasing in the tail.
        assert!(norm_sf(6.5) > norm_sf(7.0));
    }

    #[test]
    fn quantile_round_trips() {
        for p in [1e-6, 1e-4, 0.01, 0.3, 0.5, 0.9, 0.999, 1.0 - 1e-6] {
            let z = inv_norm_cdf(p);
            let back = norm_cdf(z);
            assert!((back - p).abs() < 2e-7, "p={p} z={z} back={back}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-8);
        assert!((inv_norm_cdf(2.5e-5) + 4.0556).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = inv_norm_cdf(0.0);
    }
}
