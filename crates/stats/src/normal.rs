//! Normal (Gaussian) sampling via the Box-Muller transform.
//!
//! Implemented in-repo so the workspace only depends on `rand` itself (the
//! `rand_distr` companion crate is not part of the approved dependency set).

use rand::Rng;

/// A normal distribution parameterised by mean and standard deviation.
///
/// # Examples
///
/// ```
/// use bpimc_stats::{seeded_rng, Normal};
/// let mut rng = seeded_rng(1);
/// let n = Normal::new(0.0, 1.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative, got {sigma}"
        );
        assert!(mean.is_finite(), "mean must be finite, got {mean}");
        Self { mean, sigma }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample using the Box-Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sigma * standard_normal(rng)
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws a single standard-normal (mean 0, sigma 1) sample.
///
/// Uses the polar-free Box-Muller form; one of the two generated variates is
/// discarded which keeps the call stateless (no cached spare), a deliberate
/// trade of a little speed for reproducibility under interleaved sampling.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::Summary;

    #[test]
    fn moments_are_close() {
        let mut rng = seeded_rng(99);
        let n = Normal::new(2.0, 0.5);
        let xs = n.sample_n(&mut rng, 20_000);
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 2.0).abs() < 0.02, "mean {}", s.mean);
        assert!((s.std - 0.5).abs() < 0.02, "std {}", s.std);
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = seeded_rng(3);
        let n = Normal::new(1.25, 0.0);
        for _ in 0..8 {
            assert_eq!(n.sample(&mut rng), 1.25);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn negative_sigma_panics() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn standard_normal_symmetric() {
        let mut rng = seeded_rng(7);
        let n = 50_000;
        let pos = (0..n).filter(|_| standard_normal(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac {frac}");
    }
}
