//! Fixed-bin histograms, used to regenerate distribution figures.

use std::fmt;

/// A histogram with uniform bins over `[lo, hi)`.
///
/// Out-of-range samples are counted in saturating under/overflow bins so no
/// data is silently dropped — important when comparing a short-tailed and a
/// long-tailed delay distribution on a common axis as in the paper's Fig. 2.
///
/// # Examples
///
/// ```
/// use bpimc_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.add(0.5);
/// h.add(9.5);
/// h.add(11.0); // overflow bin
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo {lo}, hi {hi})"
        );
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width() * self.bins.len() as f64) as usize;
            // Guard against the extremely rare case of floating rounding up.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = self.width() / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of samples (of total) in bin `i`.
    pub fn frac(&self, i: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(i) as f64 / self.total() as f64
        }
    }

    /// All `(bin_center, fraction)` points, the series a plot would use.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (0..self.nbins())
            .map(|i| (self.bin_center(i), self.frac(i)))
            .collect()
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for Histogram {
    /// Renders an ASCII bar chart, one row per bin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.bins.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * 50.0).round() as usize;
            writeln!(
                f,
                "{:>10.4} | {:<50} {}",
                self.bin_center(i),
                "#".repeat(bar_len),
                c
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.24, 0.25, 0.5, 0.75, 0.99] {
            h.add(x);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.0);
        h.add(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn centers_and_series() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(1), 1.5);
        let s = h.series();
        assert_eq!(s.len(), 2);
        assert!((s[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.add(0.1);
        assert!(!format!("{h}").is_empty());
    }
}
