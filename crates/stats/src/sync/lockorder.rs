//! Runtime lock-order (acquisition-order) analysis for named shim locks.
//!
//! Every *named* [`crate::sync::Mutex`]/[`crate::sync::RwLock`] acquisition
//! in a debug or `model` build pushes onto a per-thread held-lock stack; a
//! nested acquisition records a `held → acquired` edge in one global
//! acquisition-order graph. A cycle in that graph means two code paths
//! take the same pair of locks in opposite orders — a potential deadlock —
//! and is reported from a **single benign run**, no unlucky interleaving
//! required.
//!
//! Edges are keyed by the *static lock name*, not the instance: two
//! instances sharing a name (every `Conn`'s session lock, say) are one
//! node, so holding two of them at once shows up as a self-cycle — exactly
//! the instance-order hazard that pattern carries.
//!
//! Release builds without the `model` feature compile the recording hooks
//! to nothing; the inspection API below still exists (and reports an empty
//! graph) so callers need no `cfg` of their own.
//!
//! # Examples
//!
//! ```
//! use bpimc_stats::sync::{lockorder, Mutex};
//!
//! let a = Mutex::named("doc.a", 1);
//! let b = Mutex::named("doc.b", 2);
//! let ga = a.lock();
//! let gb = b.lock(); // records doc.a → doc.b
//! drop(gb);
//! drop(ga);
//! // Consistent ordering: no cycle among these two locks.
//! assert!(lockorder::cycles_among(&["doc.a", "doc.b"]).is_empty());
//! ```

use std::collections::BTreeMap;

#[cfg(any(debug_assertions, feature = "model"))]
mod active {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex as StdMutex, OnceLock};

    thread_local! {
        /// Names of the locks this thread currently holds, oldest first.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// `from → {to}`: `to` was acquired while `from` was held.
    static GRAPH: OnceLock<StdMutex<BTreeMap<&'static str, BTreeSet<&'static str>>>> =
        OnceLock::new();

    fn graph() -> &'static StdMutex<BTreeMap<&'static str, BTreeSet<&'static str>>> {
        GRAPH.get_or_init(|| StdMutex::new(BTreeMap::new()))
    }

    pub(super) fn on_acquire(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                // Only nested acquisitions create ordering constraints; the
                // common un-nested case never touches the global graph.
                let mut g = graph()
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for &from in held.iter() {
                    g.entry(from).or_default().insert(name);
                }
            }
            held.push(name);
        });
    }

    pub(super) fn on_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&n| n == name) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn edges() -> Vec<(&'static str, &'static str)> {
        let g = graph()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
            .collect()
    }
}

/// Recording hook: a named lock was acquired on this thread.
#[inline]
pub(crate) fn on_acquire(name: Option<&'static str>) {
    #[cfg(any(debug_assertions, feature = "model"))]
    if let Some(name) = name {
        active::on_acquire(name);
    }
    #[cfg(not(any(debug_assertions, feature = "model")))]
    let _ = name;
}

/// Recording hook: a named lock was released on this thread.
#[inline]
pub(crate) fn on_release(name: Option<&'static str>) {
    #[cfg(any(debug_assertions, feature = "model"))]
    if let Some(name) = name {
        active::on_release(name);
    }
    #[cfg(not(any(debug_assertions, feature = "model")))]
    let _ = name;
}

/// All acquisition-order edges recorded so far in this process, sorted.
/// Empty in release builds without the `model` feature.
pub fn edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(any(debug_assertions, feature = "model"))]
    {
        active::edges()
    }
    #[cfg(not(any(debug_assertions, feature = "model")))]
    {
        Vec::new()
    }
}

/// Every cycle in the recorded acquisition-order graph, as sorted node
/// lists (one per strongly connected component with a cycle). Empty means
/// every observed pair of locks was always taken in one consistent order.
pub fn cycles() -> Vec<Vec<&'static str>> {
    cycles_in(&edges())
}

/// [`cycles`] restricted to cycles touching any of `names` — lets suites
/// with intentionally-cyclic self-test locks coexist in one test process
/// with suites asserting their subsystem is clean.
pub fn cycles_among(names: &[&str]) -> Vec<Vec<&'static str>> {
    cycles()
        .into_iter()
        .filter(|cycle| cycle.iter().any(|n| names.contains(n)))
        .collect()
}

/// Panics with the offending cycle(s) if any recorded lock order involving
/// `prefix`-named locks is cyclic. Call at the end of an integration test
/// that exercised the subsystem (`assert_acyclic("server.")`).
pub fn assert_acyclic(prefix: &str) {
    let offending: Vec<Vec<&'static str>> = cycles()
        .into_iter()
        .filter(|cycle| cycle.iter().any(|n| n.starts_with(prefix)))
        .collect();
    assert!(
        offending.is_empty(),
        "lock-order cycle(s) among '{prefix}*' locks: {offending:?}\nedges: {:?}",
        edges()
    );
}

/// Finds cyclic strongly connected components in an edge list (Tarjan).
/// A single node counts only with a self-edge.
fn cycles_in(edges: &[(&'static str, &'static str)]) -> Vec<Vec<&'static str>> {
    let mut adj: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
    for &(from, to) in edges {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let nodes: Vec<&'static str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&'static str, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    struct Tarjan<'a> {
        adj: &'a BTreeMap<&'static str, Vec<&'static str>>,
        index_of: &'a BTreeMap<&'static str, usize>,
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        sccs: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn strongconnect(&mut self, v: usize, nodes: &[&'static str]) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for to in &self.adj[nodes[v]] {
                let w = self.index_of[to];
                match self.index[w] {
                    None => {
                        self.strongconnect(w, nodes);
                        self.low[v] = self.low[v].min(self.low[w]);
                    }
                    Some(wi) if self.on_stack[w] => {
                        self.low[v] = self.low[v].min(wi);
                    }
                    Some(_) => {}
                }
            }
            if self.low[v] == self.index[v].expect("set above") {
                let mut scc = Vec::new();
                loop {
                    let w = self.stack.pop().expect("stack non-empty");
                    self.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(scc);
            }
        }
    }

    let n = nodes.len();
    let mut t = Tarjan {
        adj: &adj,
        index_of: &index_of,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.strongconnect(v, &nodes);
        }
    }
    let mut out = Vec::new();
    for scc in t.sccs {
        let cyclic = scc.len() > 1 || adj[nodes[scc[0]]].iter().any(|&to| to == nodes[scc[0]]);
        if cyclic {
            let mut names: Vec<&'static str> = scc.iter().map(|&i| nodes[i]).collect();
            names.sort_unstable();
            out.push(names);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_on_edge_lists() {
        assert!(cycles_in(&[("a", "b"), ("b", "c"), ("a", "c")]).is_empty());
        assert_eq!(
            cycles_in(&[("a", "b"), ("b", "a"), ("b", "c")]),
            vec![vec!["a", "b"]]
        );
        // Self-edge: same-name locks nested.
        assert_eq!(cycles_in(&[("x", "x")]), vec![vec!["x"]]);
        // Two disjoint cycles both reported.
        let got = cycles_in(&[("a", "b"), ("b", "a"), ("p", "q"), ("q", "p")]);
        assert_eq!(got, vec![vec!["a", "b"], vec!["p", "q"]]);
    }

    #[test]
    fn known_lock_order_cycle_is_reported_from_one_benign_run() {
        // The satellite self-test: take two named locks in both orders —
        // no deadlock occurs (the orders are sequential), yet the analyzer
        // reports the hazard from this single run.
        let a = crate::sync::Mutex::named("lockorder.selftest.a", ());
        let b = crate::sync::Mutex::named("lockorder.selftest.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let cycles = cycles_among(&["lockorder.selftest.a", "lockorder.selftest.b"]);
        assert_eq!(
            cycles,
            vec![vec!["lockorder.selftest.a", "lockorder.selftest.b"]],
            "the a→b→a order inversion must be reported"
        );
    }

    #[test]
    fn consistent_order_stays_acyclic() {
        let outer = crate::sync::Mutex::named("lockorder.clean.outer", ());
        let inner = crate::sync::Mutex::named("lockorder.clean.inner", ());
        for _ in 0..3 {
            let _go = outer.lock();
            let _gi = inner.lock();
        }
        assert!(cycles_among(&["lockorder.clean.outer", "lockorder.clean.inner"]).is_empty());
        assert_acyclic("lockorder.clean.");
    }

    #[test]
    fn condvar_wait_releases_the_held_name() {
        // A waiter must not appear to hold the mutex while parked in
        // `Condvar::wait`: the guard handoff pops and re-pushes the name.
        let m = std::sync::Arc::new(crate::sync::Mutex::named("lockorder.cvwait.m", false));
        let cv = std::sync::Arc::new(crate::sync::Condvar::new());
        let other = crate::sync::Mutex::named("lockorder.cvwait.other", ());
        let (m2, cv2) = (m.clone(), cv.clone());
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().expect("waiter exits");
        let _g = other.lock();
        // If the waiter's held-stack leaked `cvwait.m`, edges from it would
        // accumulate under its thread; the direct check: this thread holds
        // only `other`, and no cycle exists among the two names.
        assert!(cycles_among(&["lockorder.cvwait.m", "lockorder.cvwait.other"]).is_empty());
    }
}
