//! The deterministic virtual scheduler behind the `model` cargo feature.
//!
//! A **model execution** runs a closure (the *model body*) plus every task
//! it spawns through [`crate::sync::thread::spawn`] on real OS threads, but
//! with exactly **one task runnable at a time**: every visible operation on
//! a shim primitive (`lock`, `wait`, `notify`, atomic RMW, `send`/`recv`,
//! `spawn`/`join`) is a *schedule point* where the scheduler picks which
//! task runs next. The pick sequence is a pure function of the seed and the
//! policy, so any explored schedule — including a failing one — replays
//! byte-identically from its seed.
//!
//! Three exploration strategies are provided (see [`ExploreConfig`]):
//!
//! * **random** — uniformly random runnable task at every schedule point;
//! * **PCT-style priorities** ([`Policy::Pct`]) — each task gets a random
//!   priority, the highest-priority runnable task runs, and `depth − 1`
//!   random *change points* demote the running task mid-execution. Finds
//!   bugs that need few ordering constraints with high probability;
//! * **bounded exhaustive** — depth-first enumeration of every schedule (up
//!   to an execution budget) by replaying recorded decision vectors. For
//!   small models this is a proof, not a sample.
//!
//! Failure modes turned into [`ModelFailure`] reports (with the full
//! schedule trace and a replay seed): a task panic (assertion in the model
//! body), whole-program **deadlock** (every live task blocked), and a blown
//! step budget (livelock guard).
//!
//! Scheduling is cooperative: a blocked task parks on one condvar shared
//! with the scheduler, and the handoff spins briefly before parking because
//! this host's sandboxed kernel delivers futex wakes slowly (see
//! `parallel`'s module docs). Model executions must not call into the
//! process-wide worker pool (`parallel::par_*`): pool threads are not model
//! tasks. Models drive the claim-queue protocol directly instead.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, Once};
use std::time::Duration;

/// Identifies one task inside one model execution (`t0` is the model body).
pub type TaskId = usize;

/// Panic payload used to unwind model tasks once an execution has failed;
/// never observed by user code (the task wrapper swallows it).
struct ModelAbort;

thread_local! {
    static CURRENT: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
    /// Suppresses the default panic-hook backtrace for intentional model
    /// failures (the payload is captured and re-reported with the trace).
    static IN_MODEL_TASK: Cell<bool> = const { Cell::new(false) };
}

#[derive(Clone)]
struct TaskCtx {
    exec: Arc<Execution>,
    task: TaskId,
}

/// The execution the current thread is a task of, if any. Shim primitives
/// call this at construction to decide between `std` and model backing.
pub(crate) fn current() -> Option<Arc<Execution>> {
    CURRENT.with(|c| c.borrow().as_ref().map(|t| t.exec.clone()))
}

fn ctx() -> TaskCtx {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "model primitive used outside a model task; create shim primitives \
         inside the model body so they bind to the execution",
    )
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the scheduler picks the next runnable task at each schedule point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Uniformly random among the runnable tasks.
    Random,
    /// PCT-style priority scheduling: random per-task priorities, highest
    /// runnable wins, with `depth − 1` random change points that demote the
    /// running task below everyone else.
    Pct {
        /// The PCT depth parameter `d`; `d − 1` priority change points.
        depth: u32,
    },
    /// Replays an explicit decision vector (indices into the sorted
    /// runnable set); past its end the first runnable task is chosen.
    /// The exhaustive explorer drives this; also usable to hand-replay a
    /// decision string from a failure report.
    Replay(Vec<usize>),
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Random => write!(f, "random"),
            Policy::Pct { depth } => write!(f, "pct(depth={depth})"),
            Policy::Replay(v) => write!(f, "replay{v:?}"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    /// Blocked on a resource (mutex, rwlock, condvar or channel).
    Resource(usize),
    /// Blocked joining another task.
    Task(TaskId),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(Wait),
    Finished,
}

struct TaskState {
    run: Run,
    /// PCT priority (higher runs first); unused by other policies.
    priority: u64,
}

pub(crate) enum Resource {
    Mutex {
        owner: Option<TaskId>,
    },
    RwLock {
        writer: Option<TaskId>,
        readers: usize,
    },
    Condvar {
        waiters: Vec<TaskId>,
    },
    Channel {
        senders: usize,
        receiver_alive: bool,
    },
}

struct ResourceSlot {
    kind: Resource,
    label: String,
}

pub(crate) struct ExecState {
    tasks: Vec<TaskState>,
    resources: Vec<ResourceSlot>,
    /// The one task allowed to run (authoritative copy; the atomic mirror
    /// exists only for the spin fast path).
    active: TaskId,
    /// Tasks not yet `Finished`.
    live: usize,
    steps: u64,
    max_steps: u64,
    rng: u64,
    policy: Policy,
    /// PCT change points (step numbers) and the next demotion priority
    /// (counts down so each demotion lands below all previous ones).
    pct_change_points: Vec<u64>,
    pct_next_low: u64,
    /// `(chosen index, options)` at every schedule point with > 1 runnable
    /// task; the exhaustive explorer's DFS frontier.
    decisions: Vec<(usize, usize)>,
    trace: String,
    failure: Option<String>,
}

impl ExecState {
    fn runnable(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&t| self.tasks[t].run == Run::Runnable)
            .collect()
    }

    /// Picks the next task among `options` (sorted, non-empty) per policy.
    fn choose(&mut self, options: &[TaskId]) -> TaskId {
        if options.len() == 1 {
            return options[0];
        }
        let idx = match &self.policy {
            Policy::Random => (splitmix(&mut self.rng) % options.len() as u64) as usize,
            Policy::Pct { .. } => {
                let best = options
                    .iter()
                    .max_by_key(|&&t| self.tasks[t].priority)
                    .expect("non-empty options");
                options.iter().position(|t| t == best).expect("found above")
            }
            Policy::Replay(prefix) => prefix
                .get(self.decisions.len())
                .copied()
                .unwrap_or(0)
                .min(options.len() - 1),
        };
        self.decisions.push((idx, options.len()));
        options[idx]
    }

    /// PCT change point: demote the currently running task below every
    /// other priority so someone else wins the next pick.
    fn pct_maybe_demote(&mut self, me: TaskId) {
        if let Policy::Pct { .. } = self.policy {
            if self.pct_change_points.contains(&self.steps) {
                self.pct_next_low = self.pct_next_low.saturating_sub(1);
                self.tasks[me].priority = self.pct_next_low;
            }
        }
    }

    fn describe_blocked(&self) -> String {
        let mut s = String::new();
        for (t, task) in self.tasks.iter().enumerate() {
            if let Run::Blocked(w) = task.run {
                let what = match w {
                    Wait::Resource(rid) => self.resources[rid].label.clone(),
                    Wait::Task(j) => format!("join t{j}"),
                };
                let _ = writeln!(s, "  t{t} blocked on {what}");
            }
        }
        s
    }
}

/// One model execution: the scheduler state plus the condvar every task
/// parks on between its turns.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    /// Mirror of `ExecState::active` for the lock-free spin fast path.
    active: AtomicUsize,
    /// Set on the first failure; tasks unwind with `ModelAbort` when they
    /// observe it.
    aborted: AtomicBool,
    threads: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    fn new(policy: Policy, seed: u64, max_steps: u64) -> Self {
        let mut rng = seed;
        // Warm the stream so near-by seeds diverge immediately.
        let _ = splitmix(&mut rng);
        let mut pct_change_points = Vec::new();
        if let Policy::Pct { depth } = policy {
            // Change points land in the first `max_steps` window; cheap
            // approximation of PCT's length estimate that keeps the pick
            // sequence a pure function of (seed, depth).
            let horizon = max_steps.clamp(1, 512);
            for _ in 1..depth {
                pct_change_points.push(splitmix(&mut rng) % horizon);
            }
        }
        Self {
            state: StdMutex::new(ExecState {
                tasks: Vec::new(),
                resources: Vec::new(),
                active: 0,
                live: 0,
                steps: 0,
                max_steps,
                rng,
                policy,
                pct_change_points,
                pct_next_low: u64::MAX / 2,
                decisions: Vec::new(),
                trace: String::new(),
                failure: None,
            }),
            cv: StdCondvar::new(),
            active: AtomicUsize::new(usize::MAX),
            aborted: AtomicBool::new(false),
            threads: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> StdGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn abort_panic(&self) -> ! {
        std::panic::panic_any(ModelAbort);
    }

    /// Registers a resource; not a schedule point (primitive construction
    /// has no visible concurrency).
    pub(crate) fn register(&self, kind: Resource, name: Option<&'static str>) -> usize {
        let mut st = self.lock();
        let id = st.resources.len();
        let tag = match kind {
            Resource::Mutex { .. } => "mutex",
            Resource::RwLock { .. } => "rwlock",
            Resource::Condvar { .. } => "condvar",
            Resource::Channel { .. } => "channel",
        };
        let label = match name {
            Some(n) => format!("{tag}:{n}"),
            None => format!("{tag}:r{id}"),
        };
        st.resources.push(ResourceSlot { kind, label });
        id
    }

    pub(crate) fn resource_label(&self, rid: usize) -> String {
        self.lock().resources[rid].label.clone()
    }

    /// The scheduling preamble of every visible op: bump the step counter,
    /// append the trace line, and maybe hand the turn to another runnable
    /// task (returning once this task is scheduled again).
    fn preempt<'a>(
        &'a self,
        mut st: StdGuard<'a, ExecState>,
        me: TaskId,
        label: &str,
    ) -> StdGuard<'a, ExecState> {
        if self.aborted.load(Ordering::Acquire) {
            drop(st);
            self.abort_panic();
        }
        st.steps += 1;
        let step = st.steps;
        let _ = writeln!(st.trace, "s{step:05} t{me} {label}");
        if step > st.max_steps {
            let max = st.max_steps;
            return self.fail(
                st,
                format!(
                    "step budget exceeded ({max} schedule points): livelock, or raise max_steps"
                ),
            );
        }
        st.pct_maybe_demote(me);
        let options = st.runnable();
        debug_assert!(options.contains(&me), "the active task is runnable");
        let next = st.choose(&options);
        if next != me {
            st.active = next;
            self.active.store(next, Ordering::Release);
            self.cv.notify_all();
            st = self.wait_active(st, me);
        }
        st
    }

    /// Parks until this task is the active one again. Spins briefly first:
    /// the handing-off task sets `active` within microseconds, while a
    /// futex wake on this host costs ~0.5 ms.
    fn wait_active<'a>(
        &'a self,
        st: StdGuard<'a, ExecState>,
        me: TaskId,
    ) -> StdGuard<'a, ExecState> {
        drop(st);
        for _ in 0..4_096 {
            if self.aborted.load(Ordering::Acquire) {
                self.abort_panic();
            }
            if self.active.load(Ordering::Acquire) == me {
                break;
            }
            std::hint::spin_loop();
        }
        let mut st = self.lock();
        while st.active != me {
            if self.aborted.load(Ordering::Acquire) {
                drop(st);
                self.abort_panic();
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
        }
        st
    }

    /// Records the first failure, wakes everyone, and unwinds the caller.
    fn fail<'a>(&'a self, mut st: StdGuard<'a, ExecState>, msg: String) -> StdGuard<'a, ExecState> {
        self.fail_locked(&mut st, msg);
        drop(st);
        self.abort_panic();
    }

    fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.aborted.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// One non-blocking visible op: schedule point, then `effect` runs
    /// atomically under the scheduler lock.
    pub(crate) fn op<R>(&self, label: &str, effect: impl FnOnce(&mut ExecState) -> R) -> R {
        let me = ctx().task;
        let mut st = self.lock();
        st = self.preempt(st, me, label);
        effect(&mut st)
    }

    /// One possibly-blocking visible op: after the schedule point,
    /// `attempt` either completes or names the wait; blocked tasks hand the
    /// turn over and re-attempt when rescheduled. Detects whole-program
    /// deadlock (no runnable task left).
    fn blocking_op<R>(
        &self,
        label: &str,
        mut attempt: impl FnMut(&mut ExecState, TaskId) -> Result<R, Wait>,
    ) -> R {
        let me = ctx().task;
        let mut st = self.lock();
        st = self.preempt(st, me, label);
        loop {
            match attempt(&mut st, me) {
                Ok(r) => return r,
                Err(wait) => {
                    st.tasks[me].run = Run::Blocked(wait);
                    let options = st.runnable();
                    if options.is_empty() {
                        let blocked = st.describe_blocked();
                        st = self.fail(
                            st,
                            format!("deadlock: every live task is blocked\n{blocked}"),
                        );
                        drop(st);
                        unreachable!("fail unwinds");
                    }
                    let next = st.choose(&options);
                    st.active = next;
                    self.active.store(next, Ordering::Release);
                    self.cv.notify_all();
                    st = self.wait_active(st, me);
                }
            }
        }
    }

    /// A release-side op. A schedule point in normal execution; during an
    /// unwind (panic cleanup, or the execution already aborted) it applies
    /// the effect silently and never panics, so guard drops stay safe.
    pub(crate) fn release_op(&self, label: &str, effect: impl FnOnce(&mut ExecState)) {
        if std::thread::panicking() || self.aborted.load(Ordering::Acquire) {
            effect(&mut self.lock());
            return;
        }
        self.op(label, effect);
    }

    // ---- primitive protocols -------------------------------------------

    pub(crate) fn acquire_mutex(&self, rid: usize, label: &str) {
        self.blocking_op(label, |st, me| match &mut st.resources[rid].kind {
            Resource::Mutex {
                owner: owner @ None,
            } => {
                *owner = Some(me);
                Ok(())
            }
            Resource::Mutex { .. } => Err(Wait::Resource(rid)),
            _ => unreachable!("rid {rid} is a mutex"),
        });
    }

    pub(crate) fn release_mutex(&self, rid: usize, label: &str) {
        self.release_op(label, |st| {
            match &mut st.resources[rid].kind {
                Resource::Mutex { owner } => *owner = None,
                _ => unreachable!("rid {rid} is a mutex"),
            }
            wake_waiters(st, rid);
        });
    }

    pub(crate) fn acquire_read(&self, rid: usize, label: &str) {
        self.blocking_op(label, |st, _| match &mut st.resources[rid].kind {
            Resource::RwLock {
                writer: None,
                readers,
            } => {
                *readers += 1;
                Ok(())
            }
            Resource::RwLock { .. } => Err(Wait::Resource(rid)),
            _ => unreachable!("rid {rid} is a rwlock"),
        });
    }

    pub(crate) fn release_read(&self, rid: usize, label: &str) {
        self.release_op(label, |st| {
            match &mut st.resources[rid].kind {
                Resource::RwLock { readers, .. } => *readers -= 1,
                _ => unreachable!("rid {rid} is a rwlock"),
            }
            wake_waiters(st, rid);
        });
    }

    pub(crate) fn acquire_write(&self, rid: usize, label: &str) {
        self.blocking_op(label, |st, me| match &mut st.resources[rid].kind {
            Resource::RwLock {
                writer: writer @ None,
                readers: 0,
            } => {
                *writer = Some(me);
                Ok(())
            }
            Resource::RwLock { .. } => Err(Wait::Resource(rid)),
            _ => unreachable!("rid {rid} is a rwlock"),
        });
    }

    pub(crate) fn release_write(&self, rid: usize, label: &str) {
        self.release_op(label, |st| {
            match &mut st.resources[rid].kind {
                Resource::RwLock { writer, .. } => *writer = None,
                _ => unreachable!("rid {rid} is a rwlock"),
            }
            wake_waiters(st, rid);
        });
    }

    /// Condvar wait phase 1: atomically release the mutex and join the
    /// waiter list; returns once notified. The caller reacquires the mutex
    /// (phase 2) with [`Execution::acquire_mutex`].
    pub(crate) fn condvar_wait(&self, cv_rid: usize, mutex_rid: usize, label: &str) {
        let mut registered = false;
        self.blocking_op(label, |st, me| {
            if registered {
                // Only a notify makes a waiter runnable again, so being
                // rescheduled here means we were notified.
                return Ok(());
            }
            registered = true;
            match &mut st.resources[mutex_rid].kind {
                Resource::Mutex { owner } => *owner = None,
                _ => unreachable!("rid {mutex_rid} is a mutex"),
            }
            wake_waiters(st, mutex_rid);
            match &mut st.resources[cv_rid].kind {
                Resource::Condvar { waiters } => waiters.push(me),
                _ => unreachable!("rid {cv_rid} is a condvar"),
            }
            Err(Wait::Resource(cv_rid))
        });
    }

    pub(crate) fn condvar_notify(&self, cv_rid: usize, all: bool, label: &str) {
        self.op(label, |st| {
            let woken: Vec<TaskId> = match &mut st.resources[cv_rid].kind {
                Resource::Condvar { waiters } => {
                    if all {
                        std::mem::take(waiters)
                    } else if waiters.is_empty() {
                        // std semantics: a notify with no waiter is lost —
                        // exactly the behavior lost-wakeup bugs need.
                        Vec::new()
                    } else {
                        vec![waiters.remove(0)]
                    }
                }
                _ => unreachable!("rid {cv_rid} is a condvar"),
            };
            for t in woken {
                st.tasks[t].run = Run::Runnable;
            }
        });
    }

    /// Channel bookkeeping ops; the typed queue lives in the shim (only one
    /// task runs at a time, so the effect closure mutates it race-free).
    pub(crate) fn channel_op<R>(
        &self,
        label: &str,
        effect: impl FnOnce(&mut Resource) -> R,
        rid: usize,
    ) -> R {
        self.op(label, |st| {
            let r = effect(&mut st.resources[rid].kind);
            wake_waiters(st, rid);
            r
        })
    }

    /// Blocking channel receive; `attempt` inspects the resource and the
    /// typed queue.
    pub(crate) fn channel_recv<R>(
        &self,
        rid: usize,
        label: &str,
        mut attempt: impl FnMut(&mut Resource) -> Option<R>,
    ) -> R {
        self.blocking_op(label, |st, _| {
            attempt(&mut st.resources[rid].kind).ok_or(Wait::Resource(rid))
        })
    }

    /// Non-scheduling channel bookkeeping for `Drop` impls; never panics.
    pub(crate) fn channel_silent(&self, effect: impl FnOnce(&mut Resource), rid: usize) {
        let mut st = self.lock();
        effect(&mut st.resources[rid].kind);
        wake_waiters(&mut st, rid);
        self.cv.notify_all();
    }

    pub(crate) fn yield_now(&self) {
        self.op("yield", |_| {});
    }

    /// Registers and starts a new task running `f`; returns its id.
    pub(crate) fn spawn_task<T, F>(self: &Arc<Self>, f: F) -> (TaskId, Arc<StdMutex<Option<T>>>)
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let tid = self.op("spawn", |st| {
            let priority = splitmix(&mut st.rng);
            st.tasks.push(TaskState {
                run: Run::Runnable,
                priority,
            });
            st.live += 1;
            st.tasks.len() - 1
        });
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        let exec = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bpimc-model-t{tid}"))
            .spawn(move || {
                run_task(exec, tid, move || {
                    let v = f();
                    *slot2
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                });
            })
            .expect("spawning a model task thread");
        self.threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
        (tid, slot)
    }

    /// Blocks the caller until task `tid` finishes.
    pub(crate) fn join_task(&self, tid: TaskId) {
        self.blocking_op(&format!("join t{tid}"), |st, _| {
            if st.tasks[tid].run == Run::Finished {
                Ok(())
            } else {
                Err(Wait::Task(tid))
            }
        });
    }

    /// Task exit: wake joiners and hand the turn to someone else (or
    /// declare deadlock / completion).
    fn finish_task(&self, tid: TaskId, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.tasks[tid].run = Run::Finished;
        st.live -= 1;
        let _ = writeln!(st.trace, "...... t{tid} exit");
        for t in 0..st.tasks.len() {
            if st.tasks[t].run == Run::Blocked(Wait::Task(tid)) {
                st.tasks[t].run = Run::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            self.fail_locked(&mut st, format!("t{tid} panicked: {msg}"));
            return;
        }
        if st.live == 0 {
            self.cv.notify_all();
            return;
        }
        let options = st.runnable();
        if options.is_empty() {
            let blocked = st.describe_blocked();
            self.fail_locked(
                &mut st,
                format!("deadlock: every live task is blocked\n{blocked}"),
            );
            return;
        }
        let next = st.choose(&options);
        st.active = next;
        self.active.store(next, Ordering::Release);
        self.cv.notify_all();
    }

    /// Exit path for tasks unwound by an abort: no scheduling, no failure.
    fn finish_silent(&self, tid: TaskId) {
        let mut st = self.lock();
        st.tasks[tid].run = Run::Finished;
        st.live -= 1;
        self.cv.notify_all();
    }
}

/// Wakes every task blocked on `rid`; they re-attempt when scheduled.
fn wake_waiters(st: &mut ExecState, rid: usize) {
    for t in 0..st.tasks.len() {
        if st.tasks[t].run == Run::Blocked(Wait::Resource(rid)) {
            st.tasks[t].run = Run::Runnable;
        }
    }
}

fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL_TASK.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// The OS-thread body of one model task: bind the context, wait for the
/// first turn, run, and report the exit to the scheduler.
fn run_task(exec: Arc<Execution>, tid: TaskId, body: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(TaskCtx {
            exec: exec.clone(),
            task: tid,
        })
    });
    IN_MODEL_TASK.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let st = exec.wait_active(exec.lock(), tid);
        drop(st);
        body();
    }));
    match result {
        Ok(()) => exec.finish_task(tid, None),
        Err(p) if p.is::<ModelAbort>() => exec.finish_silent(tid),
        Err(p) => exec.finish_task(tid, Some(payload_to_string(&*p))),
    }
    IN_MODEL_TASK.with(|c| c.set(false));
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A schedule under which a model's invariant failed, with everything
/// needed to reproduce it: the model name, the exact schedule (seed +
/// policy or decision vector), the failure message and the full trace.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// The model's registered name.
    pub model: String,
    /// Human-readable schedule identity (`seed 7 via pct(depth=3)` …).
    pub schedule: String,
    /// The replay seed, when the failing schedule was seed-driven.
    pub seed: Option<u64>,
    /// What went wrong: the panic message, deadlock report, or step-budget
    /// overrun.
    pub message: String,
    /// The full schedule trace — one line per schedule point, byte-stable
    /// under replay.
    pub trace: String,
}

impl fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model '{}' failed under {}", self.model, self.schedule)?;
        writeln!(f, "{}", self.message.trim_end())?;
        if let Some(seed) = self.seed {
            writeln!(
                f,
                "replay: repro model-check --model {} --seed {seed}  (or BPIMC_MODEL_SEED={seed} cargo test --features model)",
                self.model
            )?;
        }
        write!(
            f,
            "trace ({} lines):\n{}",
            self.trace.lines().count(),
            self.trace
        )
    }
}

impl std::error::Error for ModelFailure {}

/// Aggregate statistics of one exploration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Executions performed.
    pub executions: u64,
    /// Schedule points across all executions.
    pub steps: u64,
    /// Longest single execution, in schedule points.
    pub max_steps_seen: u64,
}

/// Exploration parameters for [`explore`] / [`check`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seeded executions to run (seed `base_seed + k`; even seeds use the
    /// random policy, odd seeds PCT).
    pub seeds: u64,
    /// First seed of the matrix.
    pub base_seed: u64,
    /// PCT depth used by odd seeds.
    pub depth: u32,
    /// Per-execution schedule-point budget (livelock guard).
    pub max_steps: u64,
    /// `Some(budget)`: bounded exhaustive DFS over decision vectors
    /// (instead of the seed matrix), stopping after `budget` executions.
    pub exhaustive: Option<u64>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            seeds: 16,
            base_seed: 0,
            depth: 3,
            max_steps: 20_000,
            exhaustive: None,
        }
    }
}

impl ExploreConfig {
    /// A config honoring the `BPIMC_MODEL_SEEDS`, `BPIMC_MODEL_DEPTH` and
    /// `BPIMC_MODEL_SEED` environment overrides; `default_seeds` applies
    /// when `BPIMC_MODEL_SEEDS` is unset. `BPIMC_MODEL_SEED=s` pins the run
    /// to exactly seed `s` — the one-variable replay knob.
    pub fn from_env(default_seeds: u64) -> Self {
        let mut cfg = Self {
            seeds: default_seeds,
            ..Self::default()
        };
        if let Some(n) = env_u64("BPIMC_MODEL_SEEDS") {
            cfg.seeds = n;
        }
        if let Some(d) = env_u64("BPIMC_MODEL_DEPTH") {
            cfg.depth = d as u32;
        }
        if let Some(s) = env_u64("BPIMC_MODEL_SEED") {
            cfg.base_seed = s;
            cfg.seeds = 1;
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// The policy seed `s` maps to in a seed matrix: even seeds explore with
/// uniform randomness, odd seeds with PCT priorities, so one matrix covers
/// both strategies and the seed alone identifies the schedule.
pub fn policy_for_seed(seed: u64, depth: u32) -> Policy {
    if seed.is_multiple_of(2) {
        Policy::Random
    } else {
        Policy::Pct { depth }
    }
}

struct RunOutcome {
    failure: Option<String>,
    trace: String,
    steps: u64,
    decisions: Vec<(usize, usize)>,
}

/// Runs `body` once under `policy`/`seed` and collects the outcome.
fn run_once<F>(policy: Policy, seed: u64, max_steps: u64, body: &Arc<F>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_panic_hook();
    let exec = Arc::new(Execution::new(policy, seed, max_steps));
    {
        let mut st = exec.lock();
        let priority = splitmix(&mut st.rng);
        st.tasks.push(TaskState {
            run: Run::Runnable,
            priority,
        });
        st.live = 1;
        st.active = 0;
    }
    let body = body.clone();
    let exec2 = exec.clone();
    let root = std::thread::Builder::new()
        .name("bpimc-model-t0".into())
        .spawn(move || run_task(exec2, 0, move || body()))
        .expect("spawning the model root task");
    exec.threads
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(root);
    exec.active.store(0, Ordering::Release);
    exec.cv.notify_all();

    let mut st = exec.lock();
    while st.live > 0 {
        let (g, _) = exec
            .cv
            .wait_timeout(st, Duration::from_millis(2))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st = g;
    }
    let outcome = RunOutcome {
        failure: st.failure.take(),
        trace: std::mem::take(&mut st.trace),
        steps: st.steps,
        decisions: std::mem::take(&mut st.decisions),
    };
    drop(st);
    let threads = std::mem::take(
        &mut *exec
            .threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for h in threads {
        let _ = h.join();
    }
    outcome
}

/// Runs `body` under one explicit seed of the matrix (the replay entry
/// point: byte-identical trace for identical `(seed, depth, max_steps)`).
pub fn run_seed<F>(seed: u64, depth: u32, max_steps: u64, body: F) -> RunOutcomePublic
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let out = run_once(policy_for_seed(seed, depth), seed, max_steps, &body);
    RunOutcomePublic {
        failure: out.failure,
        trace: out.trace,
        steps: out.steps,
    }
}

/// Public slice of one execution's outcome (see [`run_seed`]).
#[derive(Debug, Clone)]
pub struct RunOutcomePublic {
    /// The failure message, if the execution failed.
    pub failure: Option<String>,
    /// The schedule trace.
    pub trace: String,
    /// Schedule points taken.
    pub steps: u64,
}

/// Explores `body` under `cfg`: the seed matrix (or bounded-exhaustive
/// DFS), stopping at the first failing schedule.
pub fn explore<F>(
    name: &str,
    cfg: &ExploreConfig,
    body: F,
) -> Result<ExploreStats, Box<ModelFailure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut stats = ExploreStats::default();
    if let Some(budget) = cfg.exhaustive {
        return explore_exhaustive(name, cfg, budget, &body);
    }
    for k in 0..cfg.seeds {
        let seed = cfg.base_seed.wrapping_add(k);
        let policy = policy_for_seed(seed, cfg.depth);
        let out = run_once(policy.clone(), seed, cfg.max_steps, &body);
        stats.executions += 1;
        stats.steps += out.steps;
        stats.max_steps_seen = stats.max_steps_seen.max(out.steps);
        if let Some(message) = out.failure {
            return Err(Box::new(ModelFailure {
                model: name.to_string(),
                schedule: format!("seed {seed} via {policy}"),
                seed: Some(seed),
                message,
                trace: out.trace,
            }));
        }
    }
    Ok(stats)
}

/// Depth-first enumeration of decision vectors: replay the current prefix,
/// then advance the deepest decision that still has unexplored options.
fn explore_exhaustive<F>(
    name: &str,
    cfg: &ExploreConfig,
    budget: u64,
    body: &Arc<F>,
) -> Result<ExploreStats, Box<ModelFailure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let mut stats = ExploreStats::default();
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        let out = run_once(Policy::Replay(prefix.clone()), 0, cfg.max_steps, body);
        stats.executions += 1;
        stats.steps += out.steps;
        stats.max_steps_seen = stats.max_steps_seen.max(out.steps);
        if let Some(message) = out.failure {
            let decisions: Vec<usize> = out.decisions.iter().map(|&(c, _)| c).collect();
            return Err(Box::new(ModelFailure {
                model: name.to_string(),
                schedule: format!("exhaustive #{} decisions {decisions:?}", stats.executions),
                seed: None,
                message,
                trace: out.trace,
            }));
        }
        if stats.executions >= budget {
            return Ok(stats);
        }
        // Advance: bump the deepest decision with remaining options.
        let mut taken = out.decisions;
        loop {
            match taken.last_mut() {
                None => return Ok(stats), // fully explored
                Some((chosen, options)) if *chosen + 1 < *options => {
                    *chosen += 1;
                    break;
                }
                Some(_) => {
                    taken.pop();
                }
            }
        }
        prefix = taken.iter().map(|&(c, _)| c).collect();
    }
}

/// [`explore`] for tests: panics with the full replayable report on the
/// first failing schedule, writing the trace to `$BPIMC_MODEL_TRACE_DIR`
/// (if set) on the way out.
pub fn check<F>(name: &str, cfg: &ExploreConfig, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = explore(name, cfg, body) {
        write_trace_artifact(&failure);
        panic!("{failure}");
    }
}

/// Writes a failing schedule's trace under `$BPIMC_MODEL_TRACE_DIR` so CI
/// can upload it as an artifact. Best-effort; replay needs only the seed.
pub fn write_trace_artifact(failure: &ModelFailure) {
    let Ok(dir) = std::env::var("BPIMC_MODEL_TRACE_DIR") else {
        return;
    };
    if dir.is_empty() || std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let seed = failure
        .seed
        .map_or_else(|| "exhaustive".to_string(), |s| format!("seed{s}"));
    let path = format!("{dir}/{}-{seed}.trace", failure.model);
    let _ = std::fs::write(&path, format!("{failure}\n"));
}

/// One named concurrency model: a body the explorer can run any number of
/// times. Suites (`sync::models`, the server's `models` module) expose
/// their invariants this way so the test runner and `repro model-check`
/// drive the same list.
#[derive(Clone, Copy)]
pub struct ModelSpec {
    /// Stable name, used in reports and `--model` filters.
    pub name: &'static str,
    /// One-line statement of the invariant the model asserts.
    pub invariant: &'static str,
    /// The model body; panics (assertion failures) are schedule failures.
    pub run: fn(),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{atomic, thread, Condvar, Mutex};
    use std::sync::atomic::Ordering as O;

    /// A classic lost-update race: two tasks each do a non-atomic
    /// read-modify-write through separate load/store schedule points.
    fn racy_counter_body() {
        let c = Arc::new(atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(O::SeqCst);
                    c.store(v + 1, O::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("task exits");
        }
        assert_eq!(c.load(O::SeqCst), 2, "lost update");
    }

    #[test]
    fn seeded_exploration_catches_the_racy_toy_counter() {
        let cfg = ExploreConfig {
            seeds: 64,
            ..ExploreConfig::default()
        };
        let failure = explore("selftest-racy-counter", &cfg, racy_counter_body)
            .expect_err("the lost-update schedule must be found within the seed matrix");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        let seed = failure.seed.expect("seed-driven schedule");
        assert!(seed < 64);
        assert!(!failure.trace.is_empty());
        // The printed report carries the replay instructions.
        let report = failure.to_string();
        assert!(report.contains("repro model-check"), "{report}");
        assert!(
            report.contains(&format!("BPIMC_MODEL_SEED={seed}")),
            "{report}"
        );
    }

    #[test]
    fn bounded_exhaustive_mode_catches_the_racy_toy_counter() {
        let cfg = ExploreConfig {
            exhaustive: Some(2_000),
            ..ExploreConfig::default()
        };
        let failure = explore("selftest-racy-counter-dfs", &cfg, racy_counter_body)
            .expect_err("DFS over decision vectors must reach the lost-update schedule");
        assert!(
            failure.seed.is_none(),
            "exhaustive schedules are not seed-driven"
        );
        assert!(
            failure.schedule.starts_with("exhaustive #"),
            "{}",
            failure.schedule
        );
    }

    #[test]
    fn lost_wakeup_deadlock_is_reported_with_trace_and_seed() {
        // Buggy check-then-wait: the predicate is read outside the critical
        // section that waits, so a notify landing in the window is lost and
        // the waiter parks forever — a whole-program deadlock the explorer
        // must find and report as one.
        let body = || {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let waiter = thread::spawn(move || {
                let ready = *m2.lock();
                if !ready {
                    let g = m2.lock();
                    let g = cv2.wait(g); // bug: no predicate re-check loop
                    assert!(*g);
                }
            });
            *m.lock() = true;
            cv.notify_one();
            waiter.join().expect("waiter exits");
        };
        let cfg = ExploreConfig {
            seeds: 64,
            ..ExploreConfig::default()
        };
        let failure = explore("selftest-lost-wakeup", &cfg, body)
            .expect_err("the lost-notify window must be explored");
        assert!(
            failure.message.contains("deadlock"),
            "expected a deadlock report, got: {}",
            failure.message
        );
        assert!(failure.seed.is_some());
        assert!(failure.trace.contains("wait"), "{}", failure.trace);
    }

    #[test]
    fn replaying_a_seed_gives_a_byte_identical_trace() {
        fn body() {
            let total = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let total = total.clone();
                    thread::spawn(move || {
                        *total.lock() += i;
                        thread::yield_now();
                        *total.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("task exits");
            }
            assert_eq!(*total.lock(), 1 + 2 + 3);
        }
        for seed in [0u64, 1, 7, 12] {
            let a = run_seed(seed, 3, 20_000, body);
            let b = run_seed(seed, 3, 20_000, body);
            assert!(a.failure.is_none(), "{:?}", a.failure);
            assert!(a.steps > 0);
            assert_eq!(a.trace, b.trace, "seed {seed} must replay byte-identically");
        }
    }

    #[test]
    fn passing_models_report_exploration_stats() {
        let cfg = ExploreConfig {
            seeds: 8,
            ..ExploreConfig::default()
        };
        let stats = explore("selftest-clean", &cfg, || {
            let c = Arc::new(atomic::AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        c.fetch_add(1, O::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("task exits");
            }
            assert_eq!(c.load(O::SeqCst), 2);
        })
        .expect("atomic RMW has no lost update");
        assert_eq!(stats.executions, 8);
        assert!(stats.steps > 0);
    }

    #[test]
    fn step_budget_catches_livelocks() {
        let cfg = ExploreConfig {
            seeds: 1,
            max_steps: 200,
            ..ExploreConfig::default()
        };
        let failure = explore("selftest-livelock", &cfg, || loop {
            thread::yield_now();
        })
        .expect_err("an infinite yield loop must exhaust the step budget");
        assert!(
            failure.message.contains("step budget"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn model_channels_deliver_in_order_and_disconnect() {
        let cfg = ExploreConfig {
            seeds: 8,
            ..ExploreConfig::default()
        };
        explore("selftest-channel", &cfg, || {
            let (tx, rx) = crate::sync::mpsc::channel::<u32>();
            let h = thread::spawn(move || {
                for i in 0..3 {
                    tx.send(i).expect("receiver alive");
                }
            });
            for want in 0..3 {
                assert_eq!(rx.recv(), Ok(want), "FIFO per sender");
            }
            h.join().expect("sender exits");
            assert_eq!(rx.recv(), Err(crate::sync::mpsc::RecvError));
        })
        .expect("in-order delivery and clean disconnect");
    }
}
