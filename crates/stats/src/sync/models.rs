//! Concurrency models for the stats crate's parallel machinery.
//!
//! Each [`ModelSpec`] body builds the **production** [`ClaimQueue`] /
//! [`CancelToken`](crate::parallel::CancelToken) protocol objects inside a
//! model execution (so every atomic op is a schedule point) and asserts
//! one load-bearing invariant. Harness bookkeeping (hit counters,
//! snapshots) deliberately uses `std` atomics: they must observe without
//! perturbing the schedule.
//!
//! Run via `cargo test --features model` (the root `concurrency_models`
//! test) or `repro model-check`; replay a failure with the printed seed.

use super::model::ModelSpec;
use crate::parallel::{CancelToken, ClaimQueue};
use crate::sync::{thread, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Workers participating in each model (kept small: schedule space grows
/// exponentially in task count).
const LANES: usize = 2;

/// No job is lost or duplicated through the claim queue: with workers and
/// the caller racing `worker_claim`/`caller_claim`, every index in
/// `0..len` is executed exactly once.
fn claim_queue_no_loss_no_dup() {
    const LEN: usize = 6;
    let queue = Arc::new(ClaimQueue::new(LEN, 2, None));
    let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..LEN).map(|_| AtomicUsize::new(0)).collect());
    let workers: Vec<_> = (0..LANES)
        .map(|_| {
            let queue = queue.clone();
            let hits = hits.clone();
            thread::spawn(move || {
                while let Some(claim) = queue.worker_claim() {
                    for i in claim {
                        hits[i].fetch_add(1, Ordering::SeqCst);
                    }
                    queue.worker_done();
                }
            })
        })
        .collect();
    while let Some(claim) = queue.caller_claim() {
        for i in claim {
            hits[i].fetch_add(1, Ordering::SeqCst);
        }
    }
    for w in workers {
        w.join().expect("worker exits");
    }
    assert_eq!(queue.active_claims(), 0, "all claims returned");
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "job {i} must run exactly once");
    }
}

/// Once the cancel token fires, each lane claims at most the one block it
/// was already taking: claims started after the fire point never exceed
/// one per lane, and no participant claims once it has observed the token.
fn claim_queue_cancel_stops_within_one_block() {
    const LEN: usize = 12;
    let token = CancelToken::new();
    let queue = Arc::new(ClaimQueue::new(LEN, 1, Some(token.clone())));
    let claims = Arc::new(AtomicUsize::new(0));
    let claims_at_cancel = Arc::new(AtomicUsize::new(usize::MAX));
    let workers: Vec<_> = (0..LANES)
        .map(|_| {
            let queue = queue.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                while let Some(_claim) = queue.worker_claim() {
                    claims.fetch_add(1, Ordering::SeqCst);
                    queue.worker_done();
                }
            })
        })
        .collect();
    // The caller claims twice, then cancels mid-batch.
    for _ in 0..2 {
        if queue.caller_claim().is_some() {
            claims.fetch_add(1, Ordering::SeqCst);
        }
    }
    token.cancel();
    claims_at_cancel.store(claims.load(Ordering::SeqCst), Ordering::SeqCst);
    for w in workers {
        w.join().expect("worker exits");
    }
    let total = claims.load(Ordering::SeqCst);
    let at_cancel = claims_at_cancel.load(Ordering::SeqCst);
    // Each worker may have passed its token check just before the fire and
    // completed that one claim; nothing beyond that.
    assert!(
        total <= at_cancel + LANES,
        "cancellation leaked: {total} claims total, {at_cancel} at fire, {LANES} lanes"
    );
    assert!(queue.cancelled(), "fired token stays visible");
}

/// A token that fires only while the FINAL block is executing must still
/// be reported by the end-of-batch check, even though every job ran — the
/// regression behind `CancellableBatch::cancelled`.
fn claim_queue_late_cancel_still_reported() {
    const LEN: usize = 4;
    let token = CancelToken::new();
    let queue = Arc::new(ClaimQueue::new(LEN, 1, Some(token.clone())));
    let executed = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..LANES)
        .map(|_| {
            let queue = queue.clone();
            let token = token.clone();
            let executed = executed.clone();
            thread::spawn(move || {
                while let Some(claim) = queue.worker_claim() {
                    for i in claim {
                        executed.fetch_add(1, Ordering::SeqCst);
                        if i == LEN - 1 {
                            token.cancel(); // fires during the last job
                        }
                    }
                    queue.worker_done();
                }
            })
        })
        .collect();
    while let Some(claim) = queue.caller_claim() {
        for i in claim {
            executed.fetch_add(1, Ordering::SeqCst);
            if i == LEN - 1 {
                token.cancel();
            }
        }
    }
    for w in workers {
        w.join().expect("worker exits");
    }
    // The end-of-batch check (what par_queue_run's `finish` performs) must
    // see the token in EVERY schedule where the last job ran — including
    // those where all LEN jobs completed.
    if executed.load(Ordering::SeqCst) == LEN {
        assert!(
            queue.cancelled(),
            "a full result set must still be reported cancelled"
        );
    }
}

/// Panic containment never wedges a later batch: a "fault" recorded by one
/// job (first-fault-wins through the shared panic slot, mirroring
/// `BatchState::record_panic`) leaves the other jobs and a whole second
/// batch unaffected.
fn claim_queue_panic_containment() {
    const LEN: usize = 4;
    let panic_slot = Arc::new(Mutex::new(None::<String>));
    for batch in 0..2 {
        let queue = Arc::new(ClaimQueue::new(LEN, 1, None));
        let executed = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..LANES)
            .map(|w| {
                let queue = queue.clone();
                let executed = executed.clone();
                let panic_slot = panic_slot.clone();
                thread::spawn(move || {
                    while let Some(claim) = queue.worker_claim() {
                        for i in claim {
                            // Batch 0: every worker-claimed job faults.
                            if batch == 0 {
                                let mut slot = panic_slot.lock();
                                if slot.is_none() {
                                    *slot = Some(format!("job {i} fault on lane {w}"));
                                }
                            }
                            executed.fetch_add(1, Ordering::SeqCst);
                        }
                        queue.worker_done();
                    }
                })
            })
            .collect();
        while let Some(claim) = queue.caller_claim() {
            for _ in claim {
                executed.fetch_add(1, Ordering::SeqCst);
            }
        }
        for w in workers {
            w.join().expect("worker exits");
        }
        assert_eq!(
            executed.load(Ordering::SeqCst),
            LEN,
            "faults must not lose sibling or follow-up jobs (batch {batch})"
        );
    }
    // First fault wins; at most one message was recorded despite racing
    // recorders.
    let slot = panic_slot.lock();
    if let Some(msg) = slot.as_ref() {
        assert!(msg.contains("fault"), "recorded message intact: {msg}");
    }
}

/// The stats crate's model suite, in the shape `repro model-check` and the
/// root `concurrency_models` test both consume.
pub const MODELS: &[ModelSpec] = &[
    ModelSpec {
        name: "claim-queue-no-loss-no-dup",
        invariant: "every job index is executed exactly once across racing claimants",
        run: claim_queue_no_loss_no_dup,
    },
    ModelSpec {
        name: "claim-queue-cancel-one-block",
        invariant: "after the token fires, each lane claims at most one in-flight block",
        run: claim_queue_cancel_stops_within_one_block,
    },
    ModelSpec {
        name: "claim-queue-late-cancel",
        invariant: "a token fired during the final block is still reported cancelled",
        run: claim_queue_late_cancel_still_reported,
    },
    ModelSpec {
        name: "claim-queue-panic-containment",
        invariant: "a faulting job never loses sibling jobs or wedges the next batch",
        run: claim_queue_panic_containment,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::model::{check, ExploreConfig};

    #[test]
    fn stats_models_hold_across_the_default_matrix() {
        let cfg = ExploreConfig::from_env(8);
        for spec in MODELS {
            check(spec.name, &cfg, spec.run);
        }
    }
}
