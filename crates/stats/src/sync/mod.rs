//! Sync-primitive shim: `std::sync` in normal builds, a deterministic
//! virtual scheduler under the `model` cargo feature.
//!
//! The workspace's concurrent code (the parallel claim queue, the server's
//! fair queue / outbox / session state) takes its primitives from this
//! module instead of `std::sync`. In a normal build every wrapper compiles
//! down to the `std` primitive with `#[inline]` delegation — zero wrapper
//! overhead on the hot path. With the `model` feature enabled, a primitive
//! **created inside a model execution** (see [`model::explore`]) instead
//! routes every acquire/wait/notify/park through the deterministic
//! scheduler, which explores thread interleavings seed-by-seed and turns
//! invariant violations, deadlocks and livelocks into replayable reports.
//!
//! Two deliberate policy choices, encoded once here instead of at every
//! call site:
//!
//! * **Poisoning**: [`Mutex::lock`] recovers from poisoning
//!   ([`crate::parallel::lock_unpoisoned`]'s policy — every critical
//!   section in the workspace leaves its data consistent, and one
//!   panicking batch must not wedge later batches behind a `PoisonError`).
//! * **Naming**: long-lived locks are constructed with
//!   [`Mutex::named`]/[`RwLock::named`]; named acquisitions feed the
//!   [`lockorder`] analyzer in debug/model builds, which reports
//!   inconsistent acquisition orders (potential deadlocks) from a single
//!   benign run.
//!
//! Model-backed primitives must be created *inside* the model body (they
//! bind to the execution at construction); `std`-backed primitives created
//! outside and merely used by model tasks still work but their operations
//! are invisible to the scheduler, so keep a model's shared state inside
//! the body.
//!
//! # Examples
//!
//! ```
//! use bpimc_stats::sync::{Mutex, Condvar};
//!
//! let m = Mutex::named("example.counter", 0u32);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! let cv = Condvar::new();
//! let guard = m.lock();
//! cv.notify_all(); // nothing waiting: a no-op, as with std
//! drop(guard);
//! ```

pub mod lockorder;
#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
pub mod models;

use std::fmt;

// ---------------------------------------------------------------------------
// Mutex

/// A mutual-exclusion lock: `std::sync::Mutex` in normal builds, a
/// scheduler-visible model mutex inside model executions.
///
/// Locking recovers from poisoning (see the module docs) and, when the
/// mutex is [named](Mutex::named), records the acquisition for the
/// [`lockorder`] analyzer in debug/model builds.
pub struct Mutex<T> {
    name: Option<&'static str>,
    imp: MutexImp<T>,
}

enum MutexImp<T> {
    Std(std::sync::Mutex<T>),
    #[cfg(feature = "model")]
    Model(model_prims::MMutex<T>),
}

impl<T> Mutex<T> {
    /// An anonymous mutex (not tracked by the lock-order analyzer).
    pub fn new(value: T) -> Self {
        Self::build(None, value)
    }

    /// A named mutex. Give every long-lived lock a static name: names are
    /// the nodes of the lock-order graph and the labels in model traces.
    pub fn named(name: &'static str, value: T) -> Self {
        Self::build(Some(name), value)
    }

    fn build(name: Option<&'static str>, value: T) -> Self {
        #[cfg(feature = "model")]
        if let Some(exec) = model::current() {
            return Self {
                name,
                imp: MutexImp::Model(model_prims::MMutex::new(exec, name, value)),
            };
        }
        Self {
            name,
            imp: MutexImp::Std(std::sync::Mutex::new(value)),
        }
    }

    /// Acquires the lock, blocking until available; recovers from
    /// poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let imp = match &self.imp {
            MutexImp::Std(m) => {
                GuardImp::Std(m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
            }
            #[cfg(feature = "model")]
            MutexImp::Model(m) => GuardImp::Model(m.lock()),
        };
        lockorder::on_acquire(self.name);
        MutexGuard {
            name: self.name,
            imp: Some(imp),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Mutex");
        if let Some(name) = self.name {
            d.field("name", &name);
        }
        match &self.imp {
            MutexImp::Std(m) => d.field("data", m),
            #[cfg(feature = "model")]
            MutexImp::Model(_) => d.field("data", &"<model>"),
        };
        d.finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`Mutex::lock`]. Releases on drop and pops the
/// lock-order stack entry for named mutexes.
pub struct MutexGuard<'a, T> {
    name: Option<&'static str>,
    /// `None` only transiently, while [`Condvar::wait`] hands the guard
    /// over to the scheduler.
    imp: Option<GuardImp<'a, T>>,
}

enum GuardImp<'a, T> {
    Std(std::sync::MutexGuard<'a, T>),
    #[cfg(feature = "model")]
    Model(model_prims::MMutexGuard<'a, T>),
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        match self.imp.as_ref().expect("guard live") {
            GuardImp::Std(g) => g,
            #[cfg(feature = "model")]
            GuardImp::Model(g) => g,
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        match self.imp.as_mut().expect("guard live") {
            GuardImp::Std(g) => g,
            #[cfg(feature = "model")]
            GuardImp::Model(g) => g,
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if self.imp.take().is_some() {
            lockorder::on_release(self.name);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar

/// A condition variable matching `std::sync::Condvar` semantics (including
/// lost notifies when nothing waits — the semantics lost-wakeup bugs
/// need). Must be used with guards from the matching backend: a model
/// condvar waits only on model mutexes.
pub struct Condvar {
    imp: CondImp,
}

enum CondImp {
    Std(std::sync::Condvar),
    #[cfg(feature = "model")]
    Model(model_prims::MCondvar),
}

impl Condvar {
    /// A new condition variable, bound to the current context's backend.
    pub fn new() -> Self {
        #[cfg(feature = "model")]
        if let Some(exec) = model::current() {
            return Self {
                imp: CondImp::Model(model_prims::MCondvar::new(exec)),
            };
        }
        Self {
            imp: CondImp::Std(std::sync::Condvar::new()),
        }
    }

    /// Releases the guard's mutex, waits for a notification, reacquires.
    /// Spurious wakeups are possible (as with std): always wait in a
    /// predicate loop.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let name = guard.name;
        lockorder::on_release(name);
        let imp = guard.imp.take().expect("guard live");
        drop(guard);
        let new_imp = match (&self.imp, imp) {
            (CondImp::Std(cv), GuardImp::Std(g)) => GuardImp::Std(
                cv.wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
            #[cfg(feature = "model")]
            (CondImp::Model(cv), GuardImp::Model(g)) => GuardImp::Model(cv.wait(g)),
            #[cfg(feature = "model")]
            _ => panic!("Condvar::wait used across std/model backends"),
        };
        lockorder::on_acquire(name);
        MutexGuard {
            name,
            imp: Some(new_imp),
        }
    }

    /// Releases the guard's mutex, waits for a notification or for `dur`
    /// to elapse, reacquires. Returns the guard plus whether the wait
    /// timed out. Spurious wakeups are possible (as with std): always
    /// wait in a predicate loop.
    ///
    /// Under the model backend there is no clock, so this behaves like a
    /// plain [`Condvar::wait`] and never reports a timeout — model code
    /// that needs the deadline path must drive it explicitly (e.g. by
    /// notifying the sweeper after mutating its predicate).
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let name = guard.name;
        lockorder::on_release(name);
        let imp = guard.imp.take().expect("guard live");
        drop(guard);
        let (new_imp, timed_out) = match (&self.imp, imp) {
            (CondImp::Std(cv), GuardImp::Std(g)) => {
                let (g, res) = cv
                    .wait_timeout(g, dur)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                (GuardImp::Std(g), res.timed_out())
            }
            #[cfg(feature = "model")]
            (CondImp::Model(cv), GuardImp::Model(g)) => (GuardImp::Model(cv.wait(g)), false),
            #[cfg(feature = "model")]
            _ => panic!("Condvar::wait_timeout used across std/model backends"),
        };
        lockorder::on_acquire(name);
        (
            MutexGuard {
                name,
                imp: Some(new_imp),
            },
            timed_out,
        )
    }

    /// Wakes one waiter (a no-op when nothing waits).
    pub fn notify_one(&self) {
        match &self.imp {
            CondImp::Std(cv) => cv.notify_one(),
            #[cfg(feature = "model")]
            CondImp::Model(cv) => cv.notify(false),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match &self.imp {
            CondImp::Std(cv) => cv.notify_all(),
            #[cfg(feature = "model")]
            CondImp::Model(cv) => cv.notify(true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock

/// A readers-writer lock with the same backend/poisoning/naming policy as
/// [`Mutex`].
pub struct RwLock<T> {
    name: Option<&'static str>,
    imp: RwImp<T>,
}

enum RwImp<T> {
    Std(std::sync::RwLock<T>),
    #[cfg(feature = "model")]
    Model(model_prims::MRwLock<T>),
}

impl<T> RwLock<T> {
    /// An anonymous rwlock.
    pub fn new(value: T) -> Self {
        Self::build(None, value)
    }

    /// A named rwlock (see [`Mutex::named`]).
    pub fn named(name: &'static str, value: T) -> Self {
        Self::build(Some(name), value)
    }

    fn build(name: Option<&'static str>, value: T) -> Self {
        #[cfg(feature = "model")]
        if let Some(exec) = model::current() {
            return Self {
                name,
                imp: RwImp::Model(model_prims::MRwLock::new(exec, name, value)),
            };
        }
        Self {
            name,
            imp: RwImp::Std(std::sync::RwLock::new(value)),
        }
    }

    /// Acquires a shared read guard; recovers from poisoning.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let imp = match &self.imp {
            RwImp::Std(l) => {
                ReadImp::Std(l.read().unwrap_or_else(std::sync::PoisonError::into_inner))
            }
            #[cfg(feature = "model")]
            RwImp::Model(l) => ReadImp::Model(l.read()),
        };
        lockorder::on_acquire(self.name);
        RwLockReadGuard {
            name: self.name,
            imp,
        }
    }

    /// Acquires the exclusive write guard; recovers from poisoning.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let imp = match &self.imp {
            RwImp::Std(l) => {
                WriteImp::Std(l.write().unwrap_or_else(std::sync::PoisonError::into_inner))
            }
            #[cfg(feature = "model")]
            RwImp::Model(l) => WriteImp::Model(l.write()),
        };
        lockorder::on_acquire(self.name);
        RwLockWriteGuard {
            name: self.name,
            imp,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("RwLock");
        if let Some(name) = self.name {
            d.field("name", &name);
        }
        d.finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shared guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    name: Option<&'static str>,
    imp: ReadImp<'a, T>,
}

enum ReadImp<'a, T> {
    Std(std::sync::RwLockReadGuard<'a, T>),
    #[cfg(feature = "model")]
    Model(model_prims::MReadGuard<'a, T>),
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        match &self.imp {
            ReadImp::Std(g) => g,
            #[cfg(feature = "model")]
            ReadImp::Model(g) => g,
        }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        lockorder::on_release(self.name);
    }
}

/// Exclusive guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    name: Option<&'static str>,
    imp: WriteImp<'a, T>,
}

enum WriteImp<'a, T> {
    Std(std::sync::RwLockWriteGuard<'a, T>),
    #[cfg(feature = "model")]
    Model(model_prims::MWriteGuard<'a, T>),
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        match &self.imp {
            WriteImp::Std(g) => g,
            #[cfg(feature = "model")]
            WriteImp::Model(g) => g,
        }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.imp {
            WriteImp::Std(g) => g,
            #[cfg(feature = "model")]
            WriteImp::Model(g) => g,
        }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        lockorder::on_release(self.name);
    }
}

// ---------------------------------------------------------------------------
// Atomics

/// Shim atomics: identical API subset of `std::sync::atomic`, visible to
/// the model scheduler when created inside a model execution. Model-backed
/// atomics are sequentially consistent regardless of the `Ordering`
/// argument (one task runs at a time), which over-approximates nothing the
/// workspace relies on — its atomics protocols are designed for SeqCst-or-
/// weaker reasoning.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $prim:ty, $imp:ident, [$($rmw:ident),*]) => {
            /// Shim atomic (see [the module docs](self)).
            pub struct $name {
                imp: $imp,
            }

            enum $imp {
                Std($std),
                #[cfg(feature = "model")]
                Model(super::model_prims::MAtomic<$std, $prim>),
            }

            impl $name {
                /// An anonymous atomic with the given initial value.
                pub fn new(value: $prim) -> Self {
                    Self::build(None, value)
                }

                /// A named atomic: the name labels its ops in model traces.
                pub fn named(name: &'static str, value: $prim) -> Self {
                    Self::build(Some(name), value)
                }

                fn build(name: Option<&'static str>, value: $prim) -> Self {
                    #[cfg(feature = "model")]
                    if let Some(exec) = super::model::current() {
                        return Self {
                            imp: $imp::Model(super::model_prims::MAtomic::new(
                                exec,
                                name,
                                <$std>::new(value),
                            )),
                        };
                    }
                    let _ = name;
                    Self {
                        imp: $imp::Std(<$std>::new(value)),
                    }
                }

                /// Loads the value.
                #[inline]
                pub fn load(&self, order: Ordering) -> $prim {
                    match &self.imp {
                        $imp::Std(a) => a.load(order),
                        #[cfg(feature = "model")]
                        $imp::Model(a) => a.op("load", |s| s.load(order)),
                    }
                }

                /// Stores a value.
                #[inline]
                pub fn store(&self, value: $prim, order: Ordering) {
                    match &self.imp {
                        $imp::Std(a) => a.store(value, order),
                        #[cfg(feature = "model")]
                        $imp::Model(a) => a.op("store", |s| s.store(value, order)),
                    }
                }

                /// Swaps in a value, returning the previous one.
                #[inline]
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    match &self.imp {
                        $imp::Std(a) => a.swap(value, order),
                        #[cfg(feature = "model")]
                        $imp::Model(a) => a.op("swap", |s| s.swap(value, order)),
                    }
                }

                $(
                    /// Atomic read-modify-write, returning the previous
                    /// value.
                    #[inline]
                    pub fn $rmw(&self, value: $prim, order: Ordering) -> $prim {
                        match &self.imp {
                            $imp::Std(a) => a.$rmw(value, order),
                            #[cfg(feature = "model")]
                            $imp::Model(a) => {
                                a.op(stringify!($rmw), |s| s.$rmw(value, order))
                            }
                        }
                    }
                )*
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    match &self.imp {
                        $imp::Std(a) => a.fmt(f),
                        #[cfg(feature = "model")]
                        $imp::Model(_) => f.write_str("<model atomic>"),
                    }
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool, BoolImp, []);
    shim_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        UsizeImp,
        [fetch_add, fetch_sub]
    );
    shim_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        U64Imp,
        [fetch_add, fetch_sub]
    );
}

// ---------------------------------------------------------------------------
// Threads

/// Shim thread spawning: `std::thread` outside models; inside a model
/// execution, spawned closures become scheduler tasks whose every sync op
/// is a schedule point.
pub mod thread {
    #[cfg(feature = "model")]
    use super::model;

    /// Spawns a thread (or model task) running `f`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "model")]
        if let Some(exec) = model::current() {
            let (task, slot) = exec.spawn_task(f);
            return JoinHandle {
                imp: JoinImp::Model { exec, task, slot },
            };
        }
        JoinHandle {
            imp: JoinImp::Std(std::thread::spawn(f)),
        }
    }

    /// Yields the processor (a schedule point inside models).
    pub fn yield_now() {
        #[cfg(feature = "model")]
        if let Some(exec) = model::current() {
            exec.yield_now();
            return;
        }
        std::thread::yield_now();
    }

    /// Handle to a spawned shim thread.
    pub struct JoinHandle<T> {
        imp: JoinImp<T>,
    }

    enum JoinImp<T> {
        Std(std::thread::JoinHandle<T>),
        #[cfg(feature = "model")]
        Model {
            exec: std::sync::Arc<model::Execution>,
            task: model::TaskId,
            slot: std::sync::Arc<std::sync::Mutex<Option<T>>>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread/task to finish and returns its value. A
        /// panicked model task aborts the whole execution (the panic is
        /// the model failure), so the model arm always returns `Ok`.
        pub fn join(self) -> std::thread::Result<T> {
            match self.imp {
                JoinImp::Std(h) => h.join(),
                #[cfg(feature = "model")]
                JoinImp::Model { exec, task, slot } => {
                    exec.join_task(task);
                    let v = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("model task result (a panicking task aborts the execution)");
                    Ok(v)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Channels

/// Shim mpsc channel: unbounded, `std::sync::mpsc` semantics (including
/// disconnect errors), scheduler-visible inside model executions.
pub mod mpsc {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    #[cfg(feature = "model")]
    use super::model_prims::MChan;
    #[cfg(feature = "model")]
    use std::sync::Arc;

    /// Creates an unbounded channel bound to the current context's
    /// backend.
    pub fn channel<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
        #[cfg(feature = "model")]
        if let Some(exec) = super::model::current() {
            let chan = Arc::new(MChan::new(exec));
            return (
                Sender {
                    imp: SendImp::Model(chan.clone()),
                },
                Receiver {
                    imp: RecvImp::Model(chan),
                },
            );
        }
        let (tx, rx) = std::sync::mpsc::channel();
        (
            Sender {
                imp: SendImp::Std(tx),
            },
            Receiver {
                imp: RecvImp::Std(rx),
            },
        )
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        imp: SendImp<T>,
    }

    enum SendImp<T> {
        Std(std::sync::mpsc::Sender<T>),
        #[cfg(feature = "model")]
        Model(Arc<MChan<T>>),
    }

    impl<T: Send + 'static> Sender<T> {
        /// Sends a value; errs if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.imp {
                SendImp::Std(tx) => tx.send(value),
                #[cfg(feature = "model")]
                SendImp::Model(chan) => chan.send(value),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.imp {
                SendImp::Std(tx) => Self {
                    imp: SendImp::Std(tx.clone()),
                },
                #[cfg(feature = "model")]
                SendImp::Model(chan) => {
                    chan.add_sender();
                    Self {
                        imp: SendImp::Model(chan.clone()),
                    }
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            #[cfg(feature = "model")]
            if let SendImp::Model(chan) = &self.imp {
                chan.drop_sender();
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        imp: RecvImp<T>,
    }

    enum RecvImp<T> {
        Std(std::sync::mpsc::Receiver<T>),
        #[cfg(feature = "model")]
        Model(Arc<MChan<T>>),
    }

    impl<T: Send + 'static> Receiver<T> {
        /// Blocks for the next value; errs once every sender is gone and
        /// the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.imp {
                RecvImp::Std(rx) => rx.recv(),
                #[cfg(feature = "model")]
                RecvImp::Model(chan) => chan.recv(),
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match &self.imp {
                RecvImp::Std(rx) => rx.try_recv(),
                #[cfg(feature = "model")]
                RecvImp::Model(chan) => chan.try_recv(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            #[cfg(feature = "model")]
            if let RecvImp::Model(chan) = &self.imp {
                chan.drop_receiver();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Model-backed primitive implementations

#[cfg(feature = "model")]
mod model_prims {
    use super::model::{Execution, Resource};
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::sync::mpsc::{RecvError, SendError, TryRecvError};
    use std::sync::{Arc, Mutex as StdMutex};

    pub(super) struct MMutex<T> {
        exec: Arc<Execution>,
        rid: usize,
        label: String,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler serializes all access (one runnable task), and
    // the lock protocol gives the owning task exclusive data access.
    unsafe impl<T: Send> Send for MMutex<T> {}
    unsafe impl<T: Send> Sync for MMutex<T> {}

    impl<T> MMutex<T> {
        pub(super) fn new(exec: Arc<Execution>, name: Option<&'static str>, value: T) -> Self {
            let rid = exec.register(Resource::Mutex { owner: None }, name);
            let label = exec.resource_label(rid);
            Self {
                exec,
                rid,
                label,
                data: UnsafeCell::new(value),
            }
        }

        pub(super) fn lock(&self) -> MMutexGuard<'_, T> {
            self.exec
                .acquire_mutex(self.rid, &format!("lock {}", self.label));
            MMutexGuard { m: self }
        }
    }

    pub(super) struct MMutexGuard<'a, T> {
        m: &'a MMutex<T>,
    }

    impl<T> std::ops::Deref for MMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: this task owns the model lock.
            unsafe { &*self.m.data.get() }
        }
    }

    impl<T> std::ops::DerefMut for MMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: this task owns the model lock exclusively.
            unsafe { &mut *self.m.data.get() }
        }
    }

    impl<T> Drop for MMutexGuard<'_, T> {
        fn drop(&mut self) {
            self.m
                .exec
                .release_mutex(self.m.rid, &format!("unlock {}", self.m.label));
        }
    }

    pub(super) struct MCondvar {
        exec: Arc<Execution>,
        rid: usize,
        label: String,
    }

    impl MCondvar {
        pub(super) fn new(exec: Arc<Execution>) -> Self {
            let rid = exec.register(
                Resource::Condvar {
                    waiters: Vec::new(),
                },
                None,
            );
            let label = exec.resource_label(rid);
            Self { exec, rid, label }
        }

        pub(super) fn wait<'a, T>(&self, guard: MMutexGuard<'a, T>) -> MMutexGuard<'a, T> {
            let m = guard.m;
            // The scheduler releases the mutex atomically with joining the
            // waiter list; the guard's Drop must not double-release.
            std::mem::forget(guard);
            self.exec.condvar_wait(
                self.rid,
                m.rid,
                &format!("wait {} ({})", self.label, m.label),
            );
            self.exec
                .acquire_mutex(m.rid, &format!("relock {} after {}", m.label, self.label));
            MMutexGuard { m }
        }

        pub(super) fn notify(&self, all: bool) {
            let verb = if all { "notify_all" } else { "notify_one" };
            self.exec
                .condvar_notify(self.rid, all, &format!("{verb} {}", self.label));
        }
    }

    pub(super) struct MRwLock<T> {
        exec: Arc<Execution>,
        rid: usize,
        label: String,
        data: UnsafeCell<T>,
    }

    // SAFETY: scheduler-serialized; readers share `&T`, the writer is
    // exclusive per the rwlock protocol.
    unsafe impl<T: Send> Send for MRwLock<T> {}
    unsafe impl<T: Send + Sync> Sync for MRwLock<T> {}

    impl<T> MRwLock<T> {
        pub(super) fn new(exec: Arc<Execution>, name: Option<&'static str>, value: T) -> Self {
            let rid = exec.register(
                Resource::RwLock {
                    writer: None,
                    readers: 0,
                },
                name,
            );
            let label = exec.resource_label(rid);
            Self {
                exec,
                rid,
                label,
                data: UnsafeCell::new(value),
            }
        }

        pub(super) fn read(&self) -> MReadGuard<'_, T> {
            self.exec
                .acquire_read(self.rid, &format!("read {}", self.label));
            MReadGuard { l: self }
        }

        pub(super) fn write(&self) -> MWriteGuard<'_, T> {
            self.exec
                .acquire_write(self.rid, &format!("write {}", self.label));
            MWriteGuard { l: self }
        }
    }

    pub(super) struct MReadGuard<'a, T> {
        l: &'a MRwLock<T>,
    }

    impl<T> std::ops::Deref for MReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: read-locked; writers are excluded.
            unsafe { &*self.l.data.get() }
        }
    }

    impl<T> Drop for MReadGuard<'_, T> {
        fn drop(&mut self) {
            self.l
                .exec
                .release_read(self.l.rid, &format!("unread {}", self.l.label));
        }
    }

    pub(super) struct MWriteGuard<'a, T> {
        l: &'a MRwLock<T>,
    }

    impl<T> std::ops::Deref for MWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: write-locked exclusively.
            unsafe { &*self.l.data.get() }
        }
    }

    impl<T> std::ops::DerefMut for MWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: write-locked exclusively.
            unsafe { &mut *self.l.data.get() }
        }
    }

    impl<T> Drop for MWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.l
                .exec
                .release_write(self.l.rid, &format!("unwrite {}", self.l.label));
        }
    }

    /// Model atomic: the real std atomic plus a schedule point per op.
    pub(super) struct MAtomic<A, P> {
        exec: Arc<Execution>,
        label: String,
        inner: A,
        _p: std::marker::PhantomData<P>,
    }

    impl<A, P> MAtomic<A, P> {
        pub(super) fn new(exec: Arc<Execution>, name: Option<&'static str>, inner: A) -> Self {
            let label = format!("atomic:{}", name.unwrap_or("anon"));
            Self {
                exec,
                label,
                inner,
                _p: std::marker::PhantomData,
            }
        }

        pub(super) fn op<R>(&self, verb: &str, f: impl FnOnce(&A) -> R) -> R {
            self.exec
                .op(&format!("{verb} {}", self.label), |_| f(&self.inner))
        }
    }

    /// Model channel: bookkeeping lives in the execution's resource table,
    /// the typed queue here (mutated only while this task holds the turn).
    pub(super) struct MChan<T> {
        exec: Arc<Execution>,
        rid: usize,
        label: String,
        q: StdMutex<VecDeque<T>>,
    }

    impl<T: Send + 'static> MChan<T> {
        pub(super) fn new(exec: Arc<Execution>) -> Self {
            let rid = exec.register(
                Resource::Channel {
                    senders: 1,
                    receiver_alive: true,
                },
                None,
            );
            let label = exec.resource_label(rid);
            Self {
                exec,
                rid,
                label,
                q: StdMutex::new(VecDeque::new()),
            }
        }

        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub(super) fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.exec.channel_op(
                &format!("send {}", self.label),
                |r| match r {
                    Resource::Channel {
                        receiver_alive: false,
                        ..
                    } => Err(SendError(value)),
                    Resource::Channel { .. } => {
                        self.queue().push_back(value);
                        Ok(())
                    }
                    _ => unreachable!("channel resource"),
                },
                self.rid,
            )
        }

        pub(super) fn recv(&self) -> Result<T, RecvError> {
            self.exec
                .channel_recv(self.rid, &format!("recv {}", self.label), |r| {
                    if let Some(v) = self.queue().pop_front() {
                        return Some(Ok(v));
                    }
                    match r {
                        Resource::Channel { senders: 0, .. } => Some(Err(RecvError)),
                        _ => None,
                    }
                })
        }

        pub(super) fn try_recv(&self) -> Result<T, TryRecvError> {
            self.exec.channel_op(
                &format!("try_recv {}", self.label),
                |r| {
                    if let Some(v) = self.queue().pop_front() {
                        return Ok(v);
                    }
                    match r {
                        Resource::Channel { senders: 0, .. } => Err(TryRecvError::Disconnected),
                        _ => Err(TryRecvError::Empty),
                    }
                },
                self.rid,
            )
        }
    }

    impl<T> MChan<T> {
        pub(super) fn add_sender(&self) {
            self.exec.channel_silent(
                |r| {
                    if let Resource::Channel { senders, .. } = r {
                        *senders += 1;
                    }
                },
                self.rid,
            );
        }

        pub(super) fn drop_sender(&self) {
            self.exec.channel_silent(
                |r| {
                    if let Resource::Channel { senders, .. } = r {
                        *senders = senders.saturating_sub(1);
                    }
                },
                self.rid,
            );
        }

        pub(super) fn drop_receiver(&self) {
            self.exec.channel_silent(
                |r| {
                    if let Resource::Channel { receiver_alive, .. } = r {
                        *receiver_alive = false;
                    }
                },
                self.rid,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn std_backed_mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn std_backed_mutex_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // The shim's lock policy recovers from poisoning.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn std_backed_condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(h.join().expect("waiter exits"));
    }

    #[test]
    fn std_backed_rwlock_read_write() {
        let l = RwLock::named("sync.test.rw", 7u64);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn std_backed_atomics_and_channel() {
        use atomic::{AtomicUsize, Ordering};
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 1);
        assert_eq!(a.load(Ordering::Acquire), 3);

        let (tx, rx) = mpsc::channel::<u32>();
        tx.send(11).expect("receiver alive");
        assert_eq!(rx.recv(), Ok(11));
        assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(mpsc::RecvError));
    }
}
