//! Statistics utilities for the bpimc Monte-Carlo and calibration flows.
//!
//! This crate is intentionally small and dependency-light: it provides the
//! pieces the circuit-level reproduction needs and nothing more:
//!
//! * seeded random number helpers ([`seeded_rng`]),
//! * standard-normal sampling via Box-Muller ([`Normal`]),
//! * summary statistics and percentiles ([`Summary`]),
//! * fixed-bin histograms ([`Histogram`]) used to regenerate the paper's
//!   delay-distribution figure,
//! * the standard normal CDF/quantile and Gaussian-tail extrapolation
//!   ([`gauss`], [`tail`]) used to estimate read-disturb failure rates of
//!   ~2.5e-5 without millions of transient simulations.
//!
//! # Examples
//!
//! ```
//! use bpimc_stats::{seeded_rng, Normal, Summary};
//!
//! let mut rng = seeded_rng(42);
//! let normal = Normal::new(1.0, 0.1);
//! let xs: Vec<f64> = (0..1000).map(|_| normal.sample(&mut rng)).collect();
//! let s = Summary::from_slice(&xs);
//! assert!((s.mean - 1.0).abs() < 0.02);
//! ```

pub mod gauss;
pub mod histogram;
pub mod normal;
pub mod parallel;
pub mod summary;
pub mod sync;
pub mod tail;

pub use gauss::{inv_norm_cdf, norm_cdf};
pub use histogram::Histogram;
pub use normal::Normal;
pub use summary::Summary;
pub use tail::TailFit;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic random number generator from a `u64` seed.
///
/// All Monte-Carlo entry points in the workspace take explicit seeds so that
/// experiments and tests are reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = bpimc_stats::seeded_rng(7);
/// let mut b = bpimc_stats::seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..16 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..8).all(|_| a.random::<u64>() == b.random::<u64>());
        assert!(!same);
    }
}
