//! Deterministic fork-join dispatch over indexed work.
//!
//! The workspace's batch executors (the `MacroBank` in `bpimc-core`, the
//! Monte-Carlo driver in `bpimc-circuit`) all share this primitive: split
//! `n` independent, index-addressed jobs into contiguous chunks, run the
//! chunks on a small pool of **persistent** worker threads, and return
//! results **in job order** regardless of scheduling. Persistent workers
//! matter: spawning OS threads per batch costs hundreds of microseconds,
//! which would swamp sub-millisecond batches; the pool is spawned once and
//! re-used for the life of the process.
//!
//! Determinism comes from the jobs themselves being index-seeded; this
//! module only guarantees order-stable collection.
//!
//! `rayon` would be the off-the-shelf answer, but the build environment is
//! offline, so this is a dependency-free implementation on `std::sync`
//! primitives.

use crate::sync::atomic::{AtomicBool, AtomicUsize};
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A job that panicked inside a parallel batch.
///
/// Carried per job by the `try_` variants so one faulty job fails alone:
/// sibling jobs in the same batch still complete, later batches still run,
/// and the worker pool stays healthy (workers catch every unwind and never
/// die). The panic payload is rendered to text — `&str` and `String`
/// payloads pass through verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload as text.
    pub message: String,
}

impl JobPanic {
    fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Self { message }
    }
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// A cooperative cancellation signal for claim-queue batches.
///
/// Cheap to clone (an `Arc` around one atomic) and checkable from any
/// thread. A token fires either explicitly ([`CancelToken::cancel`]) or by
/// passing its construction deadline ([`CancelToken::with_deadline`]) —
/// after which [`par_queue_try_map_cancellable`] participants stop
/// **claiming new blocks**; the block each lane is currently executing
/// still completes. Cancellation granularity is therefore one claim-queue
/// block per lane, with zero per-element overhead.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    fired: AtomicBool,
    deadline: Option<Instant>,
}

impl Default for CancelInner {
    fn default() -> Self {
        Self {
            fired: AtomicBool::named("claim.cancel", false),
            deadline: None,
        }
    }
}

impl CancelToken {
    /// A token that fires only on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires at `deadline` (or earlier, if cancelled).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                fired: AtomicBool::named("claim.cancel", false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Fires the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired (explicitly or by deadline). Once true,
    /// stays true. The deadline is latched into the flag on first expiry,
    /// so repeated checks after expiry cost one atomic load, not a clock
    /// read.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.fired.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.fired.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

/// Locks a mutex, recovering from poisoning.
///
/// Poisoning policy for this workspace's shared state (the pool's panic
/// bookkeeping, the server's session and writer locks): every critical
/// section is short and leaves the guarded data consistent at each await
/// point of the lock, so a panic while holding one of these locks cannot
/// leave half-updated state behind. Ignoring the poison flag is therefore
/// safe, and required: one panicking batch must not wedge every subsequent
/// batch behind a `PoisonError`.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The number of parallel lanes (pool workers + the calling thread) used
/// for `n` independent jobs.
pub fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    senders: Vec<mpsc::Sender<Task>>,
}

thread_local! {
    /// True on pool worker threads; nested parallel calls degrade to
    /// sequential instead of deadlocking the (small) pool.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide worker pool: one thread per core beyond the caller.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let helpers = worker_count(usize::MAX).saturating_sub(1).max(1);
        let senders = (0..helpers)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Task>();
                std::thread::Builder::new()
                    .name(format!("bpimc-worker-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        // Tasks arrive pre-wrapped in panic guards. Spin
                        // only briefly before blocking: this box's sandboxed
                        // kernel throttles busy-spinning threads for tens of
                        // milliseconds, so prompt blocking beats long spins.
                        'serve: loop {
                            for _ in 0..4_096 {
                                match rx.try_recv() {
                                    Ok(task) => {
                                        task();
                                        continue 'serve;
                                    }
                                    Err(mpsc::TryRecvError::Empty) => {}
                                    Err(mpsc::TryRecvError::Disconnected) => break 'serve,
                                }
                            }
                            match rx.recv() {
                                Ok(task) => task(),
                                Err(_) => break 'serve,
                            }
                        }
                    })
                    .expect("spawning a pool worker");
                tx
            })
            .collect();
        Pool { senders }
    })
}

/// Completion bookkeeping shared between a batch's tasks and its caller.
///
/// Lives on the caller's stack for the duration of one batch. The final
/// `remaining` decrement is the LAST access any worker makes to this state
/// (the wake-up handle is cloned out beforehand), so the caller may free it
/// the moment it observes zero.
struct BatchState {
    /// Tasks still running; checked lock-free by the caller.
    remaining: AtomicUsize,
    /// First panic observed in the batch, if any. A shim lock (named, and
    /// a schedule point under the model scheduler) because it is protocol
    /// state: first-fault-wins is one of the invariants the concurrency
    /// models assert.
    panic: crate::sync::Mutex<Option<JobPanic>>,
    /// The caller's thread, unparked by whichever task finishes last.
    caller: std::thread::Thread,
}

impl BatchState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(JobPanic::from_payload(&*payload));
        }
    }
}

/// Runs every closure in `tasks` to completion, using the worker pool plus
/// the calling thread. Blocks until all have finished.
///
/// # Panics
///
/// Panics (after all tasks have completed) if any task panicked.
fn run_tasks<'env>(mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    let nested = IS_WORKER.with(|w| w.get());
    if tasks.len() <= 1 || nested {
        for t in tasks {
            t();
        }
        return;
    }
    let inline = tasks.pop().expect("len checked above");
    let state = BatchState {
        remaining: AtomicUsize::new(tasks.len()),
        panic: crate::sync::Mutex::named("pool.batch.panic", None),
        caller: std::thread::current(),
    };
    let state_ref: &BatchState = &state;
    let senders = &pool().senders;
    for (i, t) in tasks.into_iter().enumerate() {
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                state_ref.record_panic(payload);
            }
            // Clone the wake-up handle BEFORE the decrement: the moment the
            // caller observes zero it may free `state`, so the decrement
            // must be this closure's final access to it.
            let caller = state_ref.caller.clone();
            if state_ref.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                caller.unpark();
            }
        });
        // SAFETY: the closure borrows only `state` and the caller's `'env`
        // data. This function does not return until `remaining` hits zero,
        // which (per the ordering above) is after every dispatched closure
        // has made its last access, so the borrows never outlive their
        // referents. Workers never unwind (the closure catches panics), so
        // a dispatched task always completes and decrements.
        let wrapped: Task = unsafe { std::mem::transmute(wrapped) };
        senders[i % senders.len()]
            .send(wrapped)
            .expect("pool worker alive");
    }
    if let Err(payload) = catch_unwind(AssertUnwindSafe(inline)) {
        state.record_panic(payload);
    }
    // Spin only briefly before parking (long spins get this thread
    // throttled by the sandboxed kernel, see the worker loop). A stray
    // unpark token from an earlier batch at worst makes one park return
    // early; the loop re-checks the count either way.
    let mut spins = 0u32;
    while state.remaining.load(Ordering::Acquire) > 0 {
        spins += 1;
        if spins > 4_096 {
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
    let first_panic = state.panic.lock().take();
    if let Some(p) = first_panic {
        panic!("a parallel task panicked: {}", p.message);
    }
}

/// Runs `f(i)` for every `i in 0..n` across the worker pool and returns the
/// results in index order.
///
/// `f` is called exactly once per index. With one job (or one core) the
/// work runs inline without dispatch.
///
/// # Examples
///
/// ```
/// let squares = bpimc_stats::parallel::par_indexed_map(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_indexed_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let lanes = worker_count(n);
    if lanes <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(lanes);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .chunks_mut(chunk)
        .enumerate()
        .map(|(c, slot)| {
            Box::new(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    *out = Some(f(c * chunk + j));
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
    results
        .into_iter()
        .map(|x| x.expect("all jobs filled"))
        .collect()
}

/// [`par_indexed_map`] with **claim-queue load balancing**: the caller and
/// the pool workers pull contiguous index blocks from a shared queue
/// instead of receiving one fixed chunk each.
///
/// Prefer this over [`par_indexed_map`] when per-index cost varies — a
/// Monte-Carlo sweep whose adaptive transient solves take different step
/// counts per sample, say. Static chunking makes the whole batch wait for
/// whichever lane drew the slow samples; claimed blocks keep every lane
/// busy to the end. Blocks are sized by [`par_queue_try_map`]'s heuristic
/// (`n / (lanes * 16)`, clamped to `[1, 256]`), which for the workspace's
/// millisecond-scale jobs keeps each claim well above the ~1 ms of work
/// that makes a pool hand-off worthwhile on this host (see the module
/// docs on futex latency).
///
/// # Examples
///
/// ```
/// let squares = bpimc_stats::parallel::par_claim_indexed_map(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_claim_indexed_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let mut states = vec![(); worker_count(n)];
    let jobs: Vec<usize> = (0..n).collect();
    par_queue_map(&mut states, &jobs, |_, &i| f(i))
}

/// The claim-queue protocol itself, factored out of [`par_queue_run`] so
/// the concurrency models (`sync::models`) can explore exactly the
/// production claim/cancel/drain logic under the deterministic scheduler.
///
/// Invariants the protocol maintains (and the models assert):
///
/// * every index in `0..len` is claimed by exactly one participant, or by
///   nobody once the cancel token fires;
/// * `active` is raised before a worker touches a claimed block and
///   lowered after, so `active == 0` with the queue exhausted means no
///   worker will ever touch batch memory again;
/// * after the token fires, each lane claims at most the one block it is
///   currently executing — cancellation granularity is one block per lane.
pub(crate) struct ClaimQueue {
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Claims currently being executed by pool workers.
    active: AtomicUsize,
    /// Total job count.
    len: usize,
    /// Contiguous indices handed out per claim.
    block: usize,
    /// Checked between block claims; when fired, no further blocks are
    /// claimed and unclaimed jobs stay unexecuted (`None` result slots).
    cancel: Option<CancelToken>,
}

impl ClaimQueue {
    pub(crate) fn new(len: usize, block: usize, cancel: Option<CancelToken>) -> Self {
        Self {
            next: AtomicUsize::named("claim.next", 0),
            active: AtomicUsize::named("claim.active", 0),
            len,
            block: block.max(1),
            cancel,
        }
    }

    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// A worker's claim: raises `active` *before* taking a block so an
    /// observer can never see "queue empty, nobody active" while jobs are
    /// still being executed; lowers it again (and returns `None`) when the
    /// queue is exhausted or the token has fired.
    pub(crate) fn worker_claim(&self) -> Option<Range<usize>> {
        if self.cancelled() {
            return None;
        }
        self.active.fetch_add(1, Ordering::AcqRel);
        let start = self.next.fetch_add(self.block, Ordering::AcqRel);
        if start >= self.len {
            self.active.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(start..(start + self.block).min(self.len))
    }

    /// Marks a worker's claimed block finished (pairs with a `Some` return
    /// from [`ClaimQueue::worker_claim`]).
    pub(crate) fn worker_done(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// The caller's claim: no `active` bookkeeping — the caller waits for
    /// the workers, never for itself.
    pub(crate) fn caller_claim(&self) -> Option<Range<usize>> {
        if self.cancelled() {
            return None;
        }
        let start = self.next.fetch_add(self.block, Ordering::AcqRel);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.block).min(self.len))
    }

    /// Worker claims currently in flight.
    pub(crate) fn active_claims(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }
}

/// Shared state of one claim-queue batch (see [`par_queue_map`]). Arc'd so
/// late-waking workers can inspect it safely after the caller has returned.
struct QueueShared {
    queue: ClaimQueue,
    caller: std::thread::Thread,
}

/// Runs `f(&mut state, &jobs[i])` for every job, with the **caller and the
/// pool workers pulling jobs from a shared claim queue**, and returns the
/// results in job order.
///
/// Each participating thread owns one `states` slot exclusively for the
/// whole batch. Unlike chunked dispatch, the caller never waits on a worker
/// *wake-up*: if the pool is slow to wake (sandboxed kernels can take ~1 ms
/// to deliver a futex), the caller simply drains the queue itself and waits
/// only for jobs a worker actually claimed. Small batches therefore cost at
/// worst sequential time; big batches parallelize.
///
/// Job-to-state assignment is scheduling-dependent: `f` must produce the
/// same result whichever state slot it runs on (true for self-contained
/// jobs that write their operands before use).
///
/// # Panics
///
/// Panics (after every job has completed) if any job panicked, re-raising
/// the first panic's message. Use [`par_queue_try_map`] to receive per-job
/// `Result`s instead — a server multiplexing independent requests must fail
/// only the offending request, not the whole batch.
pub fn par_queue_map<S, J, T, F>(states: &mut [S], jobs: &[J], f: F) -> Vec<T>
where
    S: Send,
    J: Sync,
    T: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    par_queue_try_map(states, jobs, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("a parallel job panicked: {}", p.message),
        })
        .collect()
}

/// [`par_queue_map`] with **per-job panic containment**: a job that panics
/// yields `Err(JobPanic)` in its own result slot while every sibling job —
/// including later jobs claimed by the same worker — still runs and returns
/// `Ok`. The worker pool stays healthy and subsequent batches are
/// unaffected.
///
/// A panicking job may leave its state slot (`&mut S`) partially updated;
/// `f` must therefore tolerate running on a state slot a previous job
/// abandoned mid-way (true for self-contained jobs that write their
/// operands before use — the same requirement `par_queue_map` already has).
///
/// # Examples
///
/// ```
/// use bpimc_stats::parallel::par_queue_try_map;
///
/// let mut states = vec![(); 4];
/// let jobs = [1u32, 2, 3];
/// let out = par_queue_try_map(&mut states, &jobs, |_, &j| {
///     if j == 2 {
///         panic!("bad job");
///     }
///     j * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert_eq!(out[1].as_ref().unwrap_err().message, "bad job");
/// assert_eq!(out[2].as_ref().unwrap(), &30);
/// ```
pub fn par_queue_try_map<S, J, T, F>(states: &mut [S], jobs: &[J], f: F) -> Vec<Result<T, JobPanic>>
where
    S: Send,
    J: Sync,
    T: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    par_queue_run(states, jobs, f, None)
        .results
        .into_iter()
        .map(|x| x.expect("uncancellable batches fill every slot"))
        .collect()
}

/// Outcome of a cancellable claim-queue batch.
///
/// `cancelled` reflects the token's state when the batch **finished**, not
/// when the last block was claimed: a token that fires after the final
/// block is already claimed (so every slot is `Some`) still yields
/// `cancelled == true`. Callers deciding "did this request complete or was
/// it cut short?" must consult the flag, never infer it from `None` slots.
#[derive(Debug, Clone)]
pub struct CancellableBatch<T> {
    /// Per-job outcomes in job order; `None` for jobs never claimed after
    /// the token fired.
    pub results: Vec<Option<Result<T, JobPanic>>>,
    /// Whether the cancel token had fired by the time the batch finished.
    pub cancelled: bool,
}

/// [`par_queue_try_map`] with **cooperative cancellation**: the token is
/// checked between claim-queue block claims (never per element), and once
/// it fires — explicitly or by deadline — no participant claims another
/// block. Jobs never claimed return `None`; each lane's in-flight block
/// still completes, so after cancellation at most one extra block per lane
/// executes.
///
/// # Examples
///
/// ```
/// use bpimc_stats::parallel::{par_queue_try_map_cancellable, CancelToken};
///
/// let token = CancelToken::new();
/// token.cancel(); // fired before the batch: nothing runs
/// let mut states = vec![(); 2];
/// let out = par_queue_try_map_cancellable(&mut states, &[1u32, 2, 3], |_, &j| j, &token);
/// assert!(out.cancelled);
/// assert!(out.results.iter().all(Option::is_none));
/// ```
pub fn par_queue_try_map_cancellable<S, J, T, F>(
    states: &mut [S],
    jobs: &[J],
    f: F,
    cancel: &CancelToken,
) -> CancellableBatch<T>
where
    S: Send,
    J: Sync,
    T: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    par_queue_run(states, jobs, f, Some(cancel))
}

fn par_queue_run<S, J, T, F>(
    states: &mut [S],
    jobs: &[J],
    f: F,
    cancel: Option<&CancelToken>,
) -> CancellableBatch<T>
where
    S: Send,
    J: Sync,
    T: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    // The cancelled flag is read when the batch FINISHES: a token raised
    // after the final block was claimed must still mark the batch
    // cancelled even though every slot carries a result.
    let finish = |results: Vec<Option<Result<T, JobPanic>>>| CancellableBatch {
        results,
        cancelled: cancel.is_some_and(CancelToken::is_cancelled),
    };
    let n = jobs.len();
    if n == 0 {
        return finish(Vec::new());
    }
    assert!(!states.is_empty(), "need at least one state slot");
    let lanes = worker_count(n).min(states.len());
    let nested = IS_WORKER.with(|w| w.get());
    if lanes <= 1 || nested {
        let s0 = &mut states[0];
        let results = jobs
            .iter()
            .map(|j| {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return None;
                }
                Some(
                    catch_unwind(AssertUnwindSafe(|| f(s0, j)))
                        .map_err(|p| JobPanic::from_payload(&*p)),
                )
            })
            .collect();
        return finish(results);
    }

    let mut results: Vec<Option<Result<T, JobPanic>>> = (0..n).map(|_| None).collect();
    // Claim in blocks: contended atomic RMWs cost ~0.5 us on virtualized
    // hosts, so per-job claiming would swamp fine-grained jobs. Blocks keep
    // the claim overhead at a fraction of a percent while still giving
    // lanes * 16 units of load-balancing granularity.
    let block = (n / (lanes * 16)).clamp(1, 256);
    let shared = Arc::new(QueueShared {
        queue: ClaimQueue::new(n, block, cancel.cloned()),
        caller: std::thread::current(),
    });

    // Raw-pointer captures: a worker that wakes only after this call has
    // returned must not hold live references into our stack. It re-creates
    // references ONLY after winning a claim, which the wait loop below
    // guarantees cannot happen once we have returned: the caller leaves
    // either with the queue exhausted (`next` past `len`) or with the
    // cancel token fired — and a fired token is sticky, so a late-waking
    // worker observes it before claiming and exits without touching the
    // pointers.
    let jobs_ptr = jobs.as_ptr() as usize;
    let f_ptr = &f as *const F as usize;
    let res_ptr = results.as_mut_ptr() as usize;

    let (first, rest) = states.split_first_mut().expect("non-empty states");
    let senders = &pool().senders;
    for (w, state) in rest.iter_mut().take(lanes - 1).enumerate() {
        let state_ptr = state as *mut S as usize;
        let sh = shared.clone();
        let task: Task = Box::new(move || loop {
            // The cancellation check inside `worker_claim` sits between
            // block claims: one atomic load per block, zero per-element
            // overhead.
            let Some(claim) = sh.queue.worker_claim() else {
                sh.caller.unpark();
                break;
            };
            // SAFETY: the claimed block is unique, so the job reads and the
            // result slot writes are unaliased; the caller cannot have
            // returned (it waits for `active` to drain and `next` to pass
            // `len`), so the pointers are live. Panics are caught PER JOB:
            // a faulty job records a `JobPanic` in its own slot and the
            // loop continues with the block's remaining jobs, so every slot
            // is always filled.
            unsafe {
                let f = &*(f_ptr as *const F);
                for i in claim {
                    let job = &*(jobs_ptr as *const J).add(i);
                    let state = &mut *(state_ptr as *mut S);
                    let out = catch_unwind(AssertUnwindSafe(|| f(state, job)))
                        .map_err(|p| JobPanic::from_payload(&*p));
                    *(res_ptr as *mut Option<Result<T, JobPanic>>).add(i) = Some(out);
                }
            }
            sh.queue.worker_done();
        });
        senders[w % senders.len()]
            .send(task)
            .expect("pool worker alive");
    }

    // The caller drains the queue with the first state slot. Results go
    // through the same raw pointer the workers use, so no `&mut` to the
    // vector is formed while they might also be writing disjoint slots.
    while let Some(claim) = shared.queue.caller_claim() {
        #[allow(clippy::needless_range_loop)] // `i` also addresses the raw result slot
        for i in claim {
            let out = catch_unwind(AssertUnwindSafe(|| f(first, &jobs[i])))
                .map_err(|p| JobPanic::from_payload(&*p));
            // SAFETY: the claimed block is unique across participants.
            unsafe {
                *(res_ptr as *mut Option<Result<T, JobPanic>>).add(i) = Some(out);
            }
        }
    }
    // Wait until no worker is executing a claim. Workers that never woke
    // see an exhausted queue later and exit without touching our stack.
    let mut spins = 0u32;
    while shared.queue.active_claims() > 0 {
        spins += 1;
        if spins > 4_096 {
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
    finish(results)
}

/// Runs `f(i, &mut state[i])` for every `i`, mutating each state slot on
/// its worker, and returns per-index results in order.
///
/// This is the executor shape a macro bank needs: each job owns one
/// stateful engine (`&mut S`) for its whole chunk, so engines never migrate
/// mid-job and no locking is involved.
pub fn par_state_map<S, T, F>(states: &mut [S], f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = states.len();
    if n == 0 {
        return Vec::new();
    }
    if worker_count(n) <= 1 {
        return states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .iter_mut()
        .zip(states.iter_mut())
        .enumerate()
        .map(|(i, (out, state))| {
            Box::new(move || {
                *out = Some(f(i, state));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
    results
        .into_iter()
        .map(|x| x.expect("all jobs filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        let out = par_indexed_map(257, |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_indexed_map(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = par_indexed_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn claim_indexed_map_is_order_stable_and_complete() {
        let calls = AtomicUsize::new(0);
        let out = par_claim_indexed_map(517, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 7
        });
        assert_eq!(out, (0..517).map(|i| i * 7).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 517);
        let empty: Vec<usize> = par_claim_indexed_map(0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn state_map_mutates_each_slot() {
        let mut states = vec![0u64; 5];
        let out = par_state_map(&mut states, |i, s| {
            *s = i as u64 + 10;
            *s * 2
        });
        assert_eq!(states, vec![10, 11, 12, 13, 14]);
        assert_eq!(out, vec![20, 22, 24, 26, 28]);
    }

    #[test]
    fn repeated_batches_reuse_the_pool() {
        // Thousands of small batches: would take seconds with per-batch
        // thread spawns, milliseconds with the persistent pool.
        let mut total = 0usize;
        for round in 0..2000 {
            let out = par_indexed_map(4, |i| i + round);
            total += out.iter().sum::<usize>();
        }
        assert!(total > 0);
    }

    #[test]
    fn nested_calls_degrade_to_sequential() {
        let out = par_indexed_map(4, |i| {
            let inner = par_indexed_map(3, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 4);
        assert_eq!(out[1], 10 + 11 + 12);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            par_indexed_map(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_map_fails_only_the_panicking_job() {
        let mut states = vec![0u8; 8];
        let jobs: Vec<usize> = (0..200).collect();
        let out = par_queue_try_map(&mut states, &jobs, |_, &j| {
            if j == 97 {
                panic!("job 97 exploded");
            }
            j * 2
        });
        assert_eq!(out.len(), 200);
        for (j, r) in out.iter().enumerate() {
            if j == 97 {
                let p = r.as_ref().expect_err("job 97 must fail");
                assert!(p.message.contains("exploded"), "{p}");
            } else {
                assert_eq!(*r.as_ref().expect("sibling jobs unaffected"), j * 2);
            }
        }
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        // A batch with panicking jobs must not abort sibling jobs or wedge
        // the pool for later, unrelated batches.
        let mut states = vec![(); 4];
        let jobs: Vec<usize> = (0..64).collect();
        let out = par_queue_try_map(&mut states, &jobs, |_, &j| {
            if j % 7 == 3 {
                panic!("periodic fault");
            }
            j
        });
        let failed = out.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, jobs.iter().filter(|j| *j % 7 == 3).count());
        // The pool keeps serving healthy batches afterwards.
        for round in 0..20 {
            let ok = par_queue_map(&mut states, &jobs, |_, &j| j + round);
            assert_eq!(ok[10], 10 + round);
            let chunked = par_indexed_map(32, |i| i * i);
            assert_eq!(chunked[5], 25);
        }
    }

    #[test]
    fn queue_map_panic_carries_the_message() {
        let result = std::panic::catch_unwind(|| {
            let mut states = vec![(); 2];
            par_queue_map(&mut states, &[1u32, 2, 3, 4], |_, &j| {
                if j == 3 {
                    panic!("specific failure detail");
                }
                j
            })
        });
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("message payload")
            .clone();
        assert!(msg.contains("specific failure detail"), "{msg}");
    }

    #[test]
    fn cancellable_map_without_firing_completes_everything() {
        let mut states = vec![(); 4];
        let jobs: Vec<usize> = (0..150).collect();
        let token = CancelToken::new();
        let out = par_queue_try_map_cancellable(&mut states, &jobs, |_, &j| j * 2, &token);
        assert!(!out.cancelled);
        assert_eq!(out.results.len(), 150);
        for (j, r) in out.results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("not cancelled").as_ref().unwrap(), j * 2);
        }
    }

    #[test]
    fn pre_fired_token_abandons_the_whole_batch() {
        let mut states = vec![(); 4];
        let jobs: Vec<usize> = (0..64).collect();
        let token = CancelToken::new();
        token.cancel();
        let calls = AtomicUsize::new(0);
        let out = par_queue_try_map_cancellable(
            &mut states,
            &jobs,
            |_, &j| {
                calls.fetch_add(1, Ordering::Relaxed);
                j
            },
            &token,
        );
        assert!(out.cancelled);
        assert_eq!(out.results.len(), 64);
        assert!(out.results.iter().all(Option::is_none));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mid_batch_cancellation_stops_within_one_block_per_lane() {
        // 64 jobs with <=64 states gives block size 1; job 10 fires the
        // token from inside the batch. Jobs run ~1 ms each, so the cancel
        // store is visible to every lane well before its next claim check:
        // once the token fires, each lane may finish only the one block it
        // already holds. Executed jobs are therefore bounded by the claims
        // issued up to job 10 plus one in-flight block per lane.
        let mut states = vec![(); 8];
        let jobs: Vec<usize> = (0..64).collect();
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let out = par_queue_try_map_cancellable(
            &mut states,
            &jobs,
            |_, &j| {
                calls.fetch_add(1, Ordering::Relaxed);
                if j == 10 {
                    token.cancel();
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                j
            },
            &token,
        );
        let lanes = worker_count(jobs.len()).min(8);
        let executed = out.results.iter().filter(|r| r.is_some()).count();
        assert!(out.cancelled);
        assert_eq!(executed, calls.load(Ordering::Relaxed));
        assert!(
            executed <= 11 + lanes,
            "cancellation leaked past one block per lane: {executed} of 64 ran ({lanes} lanes)"
        );
        // Claims are handed out in index order and a claimed block always
        // executes, so everything up to the cancelling job still ran.
        assert!(
            out.results[..11].iter().all(Option::is_some),
            "pre-cancel jobs ran"
        );
    }

    #[test]
    fn token_fired_by_the_final_job_still_marks_the_batch_cancelled() {
        // Regression: a token raised after the final claim-queue block is
        // claimed used to be invisible — every slot came back `Some`, so
        // the batch looked complete. The `cancelled` flag is read at batch
        // END precisely so this cannot happen. Single state slot forces the
        // sequential path, making the schedule deterministic.
        let mut states = vec![(); 1];
        let jobs: Vec<usize> = (0..8).collect();
        let token = CancelToken::new();
        let out = par_queue_try_map_cancellable(
            &mut states,
            &jobs,
            |_, &j| {
                if j == 7 {
                    token.cancel(); // fires while executing the LAST job
                }
                j
            },
            &token,
        );
        assert!(
            out.results.iter().all(Option::is_some),
            "every job ran: the token fired after the last claim"
        );
        assert!(
            out.cancelled,
            "a full result set must still be marked cancelled"
        );
    }

    #[test]
    fn token_fired_by_the_final_job_is_seen_by_the_parallel_path() {
        // Same regression through the multi-lane path: claims are handed
        // out in index order, so by the time the last job executes every
        // block is claimed and will complete — all slots `Some`, flag set.
        let mut states = vec![(); 4];
        let jobs: Vec<usize> = (0..64).collect();
        let token = CancelToken::new();
        let last = jobs.len() - 1;
        let out = par_queue_try_map_cancellable(
            &mut states,
            &jobs,
            |_, &j| {
                if j == last {
                    token.cancel();
                }
                j
            },
            &token,
        );
        assert!(out.cancelled, "late-firing token must be reported");
        assert!(
            out.results[last].is_some(),
            "the firing job itself completed"
        );
    }

    #[test]
    fn deadline_token_fires_by_itself() {
        let token = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_millis(20),
        );
        assert!(!token.is_cancelled());
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(token.is_cancelled());
        // Latched: stays fired.
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancelled_batches_keep_panic_containment() {
        let mut states = vec![(); 4];
        let jobs: Vec<usize> = (0..40).collect();
        let token = CancelToken::new();
        let out = par_queue_try_map_cancellable(
            &mut states,
            &jobs,
            |_, &j| {
                if j == 3 {
                    panic!("early fault");
                }
                if j == 20 {
                    token.cancel();
                }
                j
            },
            &token,
        );
        let fault = out.results[3]
            .as_ref()
            .expect("job 3 ran before the cancel");
        assert!(fault.as_ref().unwrap_err().message.contains("early fault"));
        assert!(out.cancelled);
        // The pool still serves later batches.
        let ok = par_queue_map(&mut states, &jobs, |_, &j| j + 1);
        assert_eq!(ok[5], 6);
    }

    #[test]
    fn lock_unpoisoned_recovers_from_a_poisoned_mutex() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("fresh lock");
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 9;
        assert_eq!(*lock_unpoisoned(&m), 9);
    }
}
