//! Deterministic fork-join dispatch over indexed work.
//!
//! The workspace's batch executors (the `MacroBank` in `bpimc-core`, the
//! Monte-Carlo driver in `bpimc-circuit`) all share this primitive: split
//! `n` independent, index-addressed jobs into contiguous chunks, run the
//! chunks on a small pool of **persistent** worker threads, and return
//! results **in job order** regardless of scheduling. Persistent workers
//! matter: spawning OS threads per batch costs hundreds of microseconds,
//! which would swamp sub-millisecond batches; the pool is spawned once and
//! re-used for the life of the process.
//!
//! Determinism comes from the jobs themselves being index-seeded; this
//! module only guarantees order-stable collection.
//!
//! `rayon` would be the off-the-shelf answer, but the build environment is
//! offline, so this is a dependency-free implementation on `std::sync`
//! primitives.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// The number of parallel lanes (pool workers + the calling thread) used
/// for `n` independent jobs.
pub fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    senders: Vec<mpsc::Sender<Task>>,
}

thread_local! {
    /// True on pool worker threads; nested parallel calls degrade to
    /// sequential instead of deadlocking the (small) pool.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide worker pool: one thread per core beyond the caller.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let helpers = worker_count(usize::MAX).saturating_sub(1).max(1);
        let senders = (0..helpers)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Task>();
                std::thread::Builder::new()
                    .name(format!("bpimc-worker-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        // Tasks arrive pre-wrapped in panic guards. Spin
                        // only briefly before blocking: this box's sandboxed
                        // kernel throttles busy-spinning threads for tens of
                        // milliseconds, so prompt blocking beats long spins.
                        'serve: loop {
                            for _ in 0..4_096 {
                                match rx.try_recv() {
                                    Ok(task) => {
                                        task();
                                        continue 'serve;
                                    }
                                    Err(mpsc::TryRecvError::Empty) => {}
                                    Err(mpsc::TryRecvError::Disconnected) => break 'serve,
                                }
                            }
                            match rx.recv() {
                                Ok(task) => task(),
                                Err(_) => break 'serve,
                            }
                        }
                    })
                    .expect("spawning a pool worker");
                tx
            })
            .collect();
        Pool { senders }
    })
}

/// Completion bookkeeping shared between a batch's tasks and its caller.
///
/// Lives on the caller's stack for the duration of one batch. The final
/// `remaining` decrement is the LAST access any worker makes to this state
/// (the wake-up handle is cloned out beforehand), so the caller may free it
/// the moment it observes zero.
struct BatchState {
    /// Tasks still running; checked lock-free by the caller.
    remaining: AtomicUsize,
    panicked: AtomicBool,
    /// The caller's thread, unparked by whichever task finishes last.
    caller: std::thread::Thread,
}

/// Runs every closure in `tasks` to completion, using the worker pool plus
/// the calling thread. Blocks until all have finished.
///
/// # Panics
///
/// Panics (after all tasks have completed) if any task panicked.
fn run_tasks<'env>(mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    let nested = IS_WORKER.with(|w| w.get());
    if tasks.len() <= 1 || nested {
        for t in tasks {
            t();
        }
        return;
    }
    let inline = tasks.pop().expect("len checked above");
    let state = BatchState {
        remaining: AtomicUsize::new(tasks.len()),
        panicked: AtomicBool::new(false),
        caller: std::thread::current(),
    };
    let state_ref: &BatchState = &state;
    let senders = &pool().senders;
    for (i, t) in tasks.into_iter().enumerate() {
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(t)).is_err() {
                state_ref.panicked.store(true, Ordering::Relaxed);
            }
            // Clone the wake-up handle BEFORE the decrement: the moment the
            // caller observes zero it may free `state`, so the decrement
            // must be this closure's final access to it.
            let caller = state_ref.caller.clone();
            if state_ref.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                caller.unpark();
            }
        });
        // SAFETY: the closure borrows only `state` and the caller's `'env`
        // data. This function does not return until `remaining` hits zero,
        // which (per the ordering above) is after every dispatched closure
        // has made its last access, so the borrows never outlive their
        // referents. Workers never unwind (the closure catches panics), so
        // a dispatched task always completes and decrements.
        let wrapped: Task = unsafe { std::mem::transmute(wrapped) };
        senders[i % senders.len()]
            .send(wrapped)
            .expect("pool worker alive");
    }
    if catch_unwind(AssertUnwindSafe(inline)).is_err() {
        state.panicked.store(true, Ordering::Relaxed);
    }
    // Spin only briefly before parking (long spins get this thread
    // throttled by the sandboxed kernel, see the worker loop). A stray
    // unpark token from an earlier batch at worst makes one park return
    // early; the loop re-checks the count either way.
    let mut spins = 0u32;
    while state.remaining.load(Ordering::Acquire) > 0 {
        spins += 1;
        if spins > 4_096 {
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
    if state.panicked.load(Ordering::Relaxed) {
        panic!("a parallel task panicked");
    }
}

/// Runs `f(i)` for every `i in 0..n` across the worker pool and returns the
/// results in index order.
///
/// `f` is called exactly once per index. With one job (or one core) the
/// work runs inline without dispatch.
///
/// # Examples
///
/// ```
/// let squares = bpimc_stats::parallel::par_indexed_map(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_indexed_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let lanes = worker_count(n);
    if lanes <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(lanes);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .chunks_mut(chunk)
        .enumerate()
        .map(|(c, slot)| {
            Box::new(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    *out = Some(f(c * chunk + j));
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
    results
        .into_iter()
        .map(|x| x.expect("all jobs filled"))
        .collect()
}

/// Shared state of one claim-queue batch (see [`par_queue_map`]). Arc'd so
/// late-waking workers can inspect it safely after the caller has returned.
struct QueueShared {
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Total job count.
    len: usize,
    /// Claims currently being executed.
    active: AtomicUsize,
    panicked: AtomicBool,
    caller: std::thread::Thread,
}

/// Runs `f(&mut state, &jobs[i])` for every job, with the **caller and the
/// pool workers pulling jobs from a shared claim queue**, and returns the
/// results in job order.
///
/// Each participating thread owns one `states` slot exclusively for the
/// whole batch. Unlike chunked dispatch, the caller never waits on a worker
/// *wake-up*: if the pool is slow to wake (sandboxed kernels can take ~1 ms
/// to deliver a futex), the caller simply drains the queue itself and waits
/// only for jobs a worker actually claimed. Small batches therefore cost at
/// worst sequential time; big batches parallelize.
///
/// Job-to-state assignment is scheduling-dependent: `f` must produce the
/// same result whichever state slot it runs on (true for self-contained
/// jobs that write their operands before use).
pub fn par_queue_map<S, J, T, F>(states: &mut [S], jobs: &[J], f: F) -> Vec<T>
where
    S: Send,
    J: Sync,
    T: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(!states.is_empty(), "need at least one state slot");
    let lanes = worker_count(n).min(states.len());
    let nested = IS_WORKER.with(|w| w.get());
    if lanes <= 1 || nested {
        let s0 = &mut states[0];
        return jobs.iter().map(|j| f(s0, j)).collect();
    }

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // Claim in blocks: contended atomic RMWs cost ~0.5 us on virtualized
    // hosts, so per-job claiming would swamp fine-grained jobs. Blocks keep
    // the claim overhead at a fraction of a percent while still giving
    // lanes * 16 units of load-balancing granularity.
    let block = (n / (lanes * 16)).clamp(1, 256);
    let shared = std::sync::Arc::new(QueueShared {
        next: AtomicUsize::new(0),
        len: n,
        active: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        caller: std::thread::current(),
    });

    // Raw-pointer captures: a worker that wakes only after this call has
    // returned must not hold live references into our stack. It re-creates
    // references ONLY after winning a claim, which the wait loop below
    // guarantees cannot happen once we have returned.
    let jobs_ptr = jobs.as_ptr() as usize;
    let f_ptr = &f as *const F as usize;
    let res_ptr = results.as_mut_ptr() as usize;

    let (first, rest) = states.split_first_mut().expect("non-empty states");
    let senders = &pool().senders;
    for (w, state) in rest.iter_mut().take(lanes - 1).enumerate() {
        let state_ptr = state as *mut S as usize;
        let sh = shared.clone();
        let task: Task = Box::new(move || loop {
            // Claim protocol: raise `active` BEFORE taking a block so the
            // caller's wait loop can never observe "queue empty, nobody
            // active" while jobs are being executed.
            sh.active.fetch_add(1, Ordering::AcqRel);
            let start = sh.next.fetch_add(block, Ordering::AcqRel);
            if start >= sh.len {
                sh.active.fetch_sub(1, Ordering::AcqRel);
                sh.caller.unpark();
                break;
            }
            // SAFETY: the claimed block is unique, so the job reads and the
            // result slot writes are unaliased; the caller cannot have
            // returned (it waits for `active` to drain and `next` to pass
            // `len`), so the pointers are live.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                let f = &*(f_ptr as *const F);
                for i in start..(start + block).min(sh.len) {
                    let job = &*(jobs_ptr as *const J).add(i);
                    let state = &mut *(state_ptr as *mut S);
                    let out = f(state, job);
                    *(res_ptr as *mut Option<T>).add(i) = Some(out);
                }
            }));
            if outcome.is_err() {
                sh.panicked.store(true, Ordering::Relaxed);
            }
            sh.active.fetch_sub(1, Ordering::AcqRel);
        });
        senders[w % senders.len()]
            .send(task)
            .expect("pool worker alive");
    }

    // The caller drains the queue with the first state slot. Results go
    // through the same raw pointer the workers use, so no `&mut` to the
    // vector is formed while they might also be writing disjoint slots.
    loop {
        let start = shared.next.fetch_add(block, Ordering::AcqRel);
        if start >= n {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[allow(clippy::needless_range_loop)] // `i` also addresses the raw result slot
            for i in start..(start + block).min(n) {
                let out = f(first, &jobs[i]);
                // SAFETY: the claimed block is unique across participants.
                unsafe {
                    *(res_ptr as *mut Option<T>).add(i) = Some(out);
                }
            }
        }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
    }
    // Wait until no worker is executing a claim. Workers that never woke
    // see an exhausted queue later and exit without touching our stack.
    let mut spins = 0u32;
    while shared.active.load(Ordering::Acquire) > 0 {
        spins += 1;
        if spins > 4_096 {
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
    if shared.panicked.load(Ordering::Relaxed) {
        panic!("a parallel task panicked");
    }
    results
        .into_iter()
        .map(|x| x.expect("all jobs filled"))
        .collect()
}

/// Runs `f(i, &mut state[i])` for every `i`, mutating each state slot on
/// its worker, and returns per-index results in order.
///
/// This is the executor shape a macro bank needs: each job owns one
/// stateful engine (`&mut S`) for its whole chunk, so engines never migrate
/// mid-job and no locking is involved.
pub fn par_state_map<S, T, F>(states: &mut [S], f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = states.len();
    if n == 0 {
        return Vec::new();
    }
    if worker_count(n) <= 1 {
        return states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .iter_mut()
        .zip(states.iter_mut())
        .enumerate()
        .map(|(i, (out, state))| {
            Box::new(move || {
                *out = Some(f(i, state));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
    results
        .into_iter()
        .map(|x| x.expect("all jobs filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        let out = par_indexed_map(257, |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_indexed_map(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = par_indexed_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn state_map_mutates_each_slot() {
        let mut states = vec![0u64; 5];
        let out = par_state_map(&mut states, |i, s| {
            *s = i as u64 + 10;
            *s * 2
        });
        assert_eq!(states, vec![10, 11, 12, 13, 14]);
        assert_eq!(out, vec![20, 22, 24, 26, 28]);
    }

    #[test]
    fn repeated_batches_reuse_the_pool() {
        // Thousands of small batches: would take seconds with per-batch
        // thread spawns, milliseconds with the persistent pool.
        let mut total = 0usize;
        for round in 0..2000 {
            let out = par_indexed_map(4, |i| i + round);
            total += out.iter().sum::<usize>();
        }
        assert!(total > 0);
    }

    #[test]
    fn nested_calls_degrade_to_sequential() {
        let out = par_indexed_map(4, |i| {
            let inner = par_indexed_map(3, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 4);
        assert_eq!(out[1], 10 + 11 + 12);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            par_indexed_map(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
