//! Summary statistics over `f64` samples.

/// Summary statistics of a sample: mean, standard deviation, extrema and
/// selected percentiles.
///
/// # Examples
///
/// ```
/// use bpimc_stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.n, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn from_slice(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarise an empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }

    /// Coefficient of variation (`std / mean`); `NaN` when the mean is zero.
    pub fn cv(&self) -> f64 {
        self.std / self.mean
    }

    /// Arbitrary percentile `q` in `[0, 1]` (re-sorts internally).
    pub fn percentile_of(xs: &[f64], q: f64) -> f64 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        percentile_sorted(&sorted, q)
    }
}

/// Linear-interpolated percentile on pre-sorted data; `q` in `[0, 1]`.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile q out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of the canonical data set (population std = 2).
        assert!((s.std - 2.138).abs() < 1e-3, "std {}", s.std);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::from_slice(&xs);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.p99, 3.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }
}
