//! Property tests for the statistics utilities.

use bpimc_stats::{inv_norm_cdf, norm_cdf, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    /// Percentiles are ordered and bounded by the extrema.
    #[test]
    fn summary_percentiles_are_ordered(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95);
        prop_assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
    }

    /// Histograms never lose samples.
    #[test]
    fn histogram_conserves_samples(xs in prop::collection::vec(-10.0f64..10.0, 0..300)) {
        let mut h = Histogram::new(-1.0, 1.0, 16);
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total() as usize, xs.len());
        let binned: u64 = (0..h.nbins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }

    /// The normal CDF is monotone and its quantile is a right inverse.
    #[test]
    fn cdf_and_quantile_agree(p in 1e-8f64..1.0) {
        prop_assume!(p < 1.0 - 1e-8);
        let z = inv_norm_cdf(p);
        let back = norm_cdf(z);
        prop_assert!((back - p).abs() < 3e-7, "p={p} z={z} back={back}");
    }

    /// CDF monotonicity on arbitrary pairs.
    #[test]
    fn cdf_is_monotone(a in -8.0f64..8.0, d in 0.0f64..4.0) {
        prop_assert!(norm_cdf(a + d) >= norm_cdf(a));
    }

    /// Shifting a sample shifts the mean and leaves the spread unchanged.
    #[test]
    fn summary_shift_invariance(xs in prop::collection::vec(-100.0f64..100.0, 2..100), c in -50.0f64..50.0) {
        let s0 = Summary::from_slice(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let s1 = Summary::from_slice(&shifted);
        prop_assert!((s1.mean - s0.mean - c).abs() < 1e-6);
        prop_assert!((s1.std - s0.std).abs() < 1e-6);
    }
}
