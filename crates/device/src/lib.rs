//! Behavioral 28 nm MOSFET models for the bpimc circuit-level experiments.
//!
//! The paper evaluates its bit-line computing circuits with post-layout SPICE
//! in a 28 nm CMOS process. No SPICE ecosystem exists for Rust, so this crate
//! provides the substitute substrate: a compact, *behavioral* transistor
//! model adequate for the quantities the paper reports —
//!
//! * drain current vs gate/drain bias across strong inversion, velocity
//!   saturation and sub-threshold (a smoothed alpha-power law, see
//!   [`model::Mosfet::id`]),
//! * process corners ([`Corner`]: NN/SS/FF/SF/FS) shifting threshold voltage
//!   and transconductance of NMOS/PMOS independently,
//! * threshold flavors ([`VtFlavor`]: RVT/LVT/HVT) — the paper's BL boosting
//!   circuit uses LVT devices for P0/N0/N1,
//! * local VT mismatch via the Pelgrom law ([`mismatch`]), which drives the
//!   Monte-Carlo delay distributions of the paper's Fig. 2,
//! * supply / temperature dependence ([`Env`]).
//!
//! Absolute currents are calibrated to typical published 28 nm HKMG values
//! (cell read current ~40 uA at 0.9 V); the workspace's experiments rely on
//! *ratios and shapes* (corner spreads, WLUD vs boosted discharge, tails),
//! which the model reproduces mechanistically rather than by table lookup.
//!
//! # Examples
//!
//! ```
//! use bpimc_device::{Env, Mosfet, VtFlavor};
//!
//! let env = Env::nominal(); // 0.9 V, 25 C, NN corner
//! let access = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
//! let i_on = access.id(0.9, 0.9, &env);
//! let i_weak = access.id(0.55, 0.9, &env); // WLUD-style under-driven gate
//! assert!(i_on > 5.0 * i_weak);
//! ```

pub mod env;
pub mod fastmath;
pub mod mismatch;
pub mod model;
pub mod params;
pub mod types;

pub use env::Env;
pub use mismatch::MismatchModel;
pub use model::{MosParams, MosParamsLanes, Mosfet};
pub use params::{DeviceParams, ProcessLibrary};
pub use types::{Corner, DeviceKind, VtFlavor};
