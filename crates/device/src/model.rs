//! The MOSFET compact model: geometry + flavor + local mismatch.

use crate::env::Env;
use crate::fastmath;
use crate::params::ProcessLibrary;
use crate::types::{DeviceKind, VtFlavor};

/// A sized MOSFET instance.
///
/// The drain-current model is a smoothed Sakurai-Newton alpha-power law with
/// an EKV-style soft overdrive that degrades gracefully into sub-threshold:
///
/// ```text
/// veff = 2 n vT ln(1 + exp((Vgs - VT) / (2 n vT)))    // smooth overdrive
/// Idsat = kp (W/L) veff^alpha
/// Id = Idsat * tanh(Vds / Vdsat) * (1 + lambda Vds)   // triode/sat blend
/// ```
///
/// Voltages passed to [`Mosfet::id`] are *magnitudes* relative to the source
/// (a PMOS caller passes `|Vgs|`, `|Vds|`); the circuit solver orients
/// terminals, which also makes bidirectional pass-transistor conduction (the
/// 6T access devices) come out naturally.
///
/// # Examples
///
/// ```
/// use bpimc_device::{Env, Mosfet, VtFlavor};
/// let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
/// let env = Env::nominal();
/// // Monotone in Vgs.
/// assert!(m.id(0.9, 0.9, &env) > m.id(0.7, 0.9, &env));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    kind: DeviceKind,
    flavor: VtFlavor,
    w_nm: f64,
    l_nm: f64,
    /// Local threshold shift from mismatch sampling (V, magnitude space).
    dvt: f64,
}

impl Mosfet {
    /// Creates an NMOS with the given flavor and drawn W/L in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `w_nm` or `l_nm` is not positive.
    pub fn nmos(flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        Self::new(DeviceKind::Nmos, flavor, w_nm, l_nm)
    }

    /// Creates a PMOS with the given flavor and drawn W/L in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `w_nm` or `l_nm` is not positive.
    pub fn pmos(flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        Self::new(DeviceKind::Pmos, flavor, w_nm, l_nm)
    }

    fn new(kind: DeviceKind, flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        assert!(
            w_nm > 0.0 && l_nm > 0.0,
            "W/L must be positive: {w_nm}/{l_nm}"
        );
        Self {
            kind,
            flavor,
            w_nm,
            l_nm,
            dvt: 0.0,
        }
    }

    /// Returns a copy with an explicit local threshold shift (volts).
    ///
    /// Positive `dvt` always makes the device *weaker* regardless of
    /// polarity (the shift is applied in magnitude space).
    pub fn with_dvt(mut self, dvt: f64) -> Self {
        self.dvt = dvt;
        self
    }

    /// Device polarity.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Threshold flavor.
    pub fn flavor(&self) -> VtFlavor {
        self.flavor
    }

    /// Drawn width in nanometres.
    pub fn w_nm(&self) -> f64 {
        self.w_nm
    }

    /// Drawn length in nanometres.
    pub fn l_nm(&self) -> f64 {
        self.l_nm
    }

    /// Local threshold shift in volts.
    pub fn dvt(&self) -> f64 {
        self.dvt
    }

    /// Aspect ratio W/L.
    pub fn aspect(&self) -> f64 {
        self.w_nm / self.l_nm
    }

    /// The effective threshold voltage (magnitude) at this operating point,
    /// including flavor, corner, temperature and local mismatch.
    pub fn vt(&self, env: &Env) -> f64 {
        ProcessLibrary::at(self.kind, self.flavor, env).vt0 + self.dvt
    }

    /// Drain current magnitude in amperes for source-referenced voltage
    /// magnitudes `vgs` and `vds` (both may be any sign; conduction requires
    /// positive `vds`, and negative `vgs` simply lands deep in
    /// sub-threshold).
    pub fn id(&self, vgs: f64, vds: f64, env: &Env) -> f64 {
        MosParams::compile(self, env).id_g(vgs, vds).0
    }

    /// Gate capacitance estimate in farads (oxide + ~30% overlap/fringe).
    pub fn gate_cap(&self) -> f64 {
        let p = ProcessLibrary::base(self.kind, self.flavor);
        let area_m2 = (self.w_nm * 1e-9) * (self.l_nm * 1e-9);
        1.3 * p.cox * area_m2
    }

    /// Drain junction/diffusion capacitance estimate in farads.
    ///
    /// A simple per-width figure (~0.6 fF/um) adequate for loading hand-built
    /// nets like the BL mirror node.
    pub fn drain_cap(&self) -> f64 {
        0.6e-15 * (self.w_nm / 1000.0)
    }

    /// Pelgrom sigma of the local threshold for this geometry (volts).
    pub fn sigma_vt(&self) -> f64 {
        let p = ProcessLibrary::base(self.kind, self.flavor);
        let area_m2 = (self.w_nm * 1e-9) * (self.l_nm * 1e-9);
        p.avt / area_m2.sqrt()
    }
}

/// A MOSFET instance flattened to the electrical parameters its drain
/// current depends on, at one operating environment — the form every hot
/// loop wants.
///
/// Compiling a [`Mosfet`] resolves the process-library lookup, the corner
/// and temperature adjustments, the mismatch shift and the geometry once;
/// [`MosParams::id_g`] is then pure arithmetic. The transient solvers in
/// `bpimc-circuit` compile each device up front (the scalar solver into one
/// `MosParams` per device, the batch engine into per-field parameter arrays
/// evaluated by [`Mosfet::ids_batch`]) — both paths run the identical
/// [`crate::fastmath`] kernel, so their results agree bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Device polarity (the solvers orient terminals with it).
    pub kind: DeviceKind,
    /// Effective threshold (magnitude), including flavor, corner,
    /// temperature and local mismatch, volts.
    pub vt: f64,
    /// Smooth-overdrive knee width `2 n vT`, volts.
    pub phi: f64,
    /// `kp * W/L`.
    pub keff: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// `Vdsat = sat_frac * veff`, floored at `vdsat_min`.
    pub sat_frac: f64,
    /// Saturation-voltage floor, volts.
    pub vdsat_min: f64,
}

impl MosParams {
    /// Flattens `dev` at environment `env`.
    pub fn compile(dev: &Mosfet, env: &Env) -> Self {
        let p = ProcessLibrary::at(dev.kind, dev.flavor, env);
        Self {
            kind: dev.kind,
            vt: p.vt0 + dev.dvt,
            phi: 2.0 * p.nsub * env.thermal_voltage(),
            keff: p.kp * dev.aspect(),
            alpha: p.alpha,
            lambda: p.lambda,
            sat_frac: p.sat_frac,
            vdsat_min: p.vdsat_min,
        }
    }

    /// Drain current magnitude (amperes) and output conductance
    /// `d Id / d Vds` (siemens) at source-referenced voltage magnitudes.
    ///
    /// `vds <= 0` yields `(0, 0)` (the solvers orient terminals so `vds`
    /// is non-negative; exactly zero bias must carry no current).
    #[inline(always)]
    pub fn id_g(&self, vgs: f64, vds: f64) -> (f64, f64) {
        mos_id_g(
            self.vt,
            self.phi,
            self.keff,
            self.alpha,
            self.lambda,
            self.sat_frac,
            self.vdsat_min,
            vgs,
            vds,
        )
    }

    /// [`MosParams::id_g`] on the [`fastmath::quick`] scalar tier: the
    /// identical smoothed alpha-power law (one shared kernel body,
    /// parameterized over the math tier) evaluated with shorter
    /// polynomials (~1e-8 relative error — far below the model's own
    /// fidelity), for scalar-only transient chains where the full-degree
    /// shared kernels cost more than they buy. **Not** bit-identical to
    /// [`MosParams::id_g`] — never use where results must match the batch
    /// engine exactly.
    #[inline(always)]
    pub fn id_g_quick(&self, vgs: f64, vds: f64) -> (f64, f64) {
        mos_id_g_with(
            fastmath::quick::softplus,
            fastmath::quick::powf,
            fastmath::quick::tanh_pos,
            self.vt,
            self.phi,
            self.keff,
            self.alpha,
            self.lambda,
            self.sat_frac,
            self.vdsat_min,
            vgs,
            vds,
        )
    }
}

/// Borrowed per-field parameter lanes for a run of device instances — the
/// structure-of-arrays view [`Mosfet::ids_batch`] evaluates over. All
/// slices have the same length (one element per instance).
#[derive(Debug, Clone, Copy)]
pub struct MosParamsLanes<'a> {
    /// Effective thresholds, volts.
    pub vt: &'a [f64],
    /// Smooth-overdrive knee widths, volts.
    pub phi: &'a [f64],
    /// `kp * W/L` per instance.
    pub keff: &'a [f64],
    /// Velocity-saturation exponents.
    pub alpha: &'a [f64],
    /// Channel-length modulation, 1/V.
    pub lambda: &'a [f64],
    /// Saturation fractions.
    pub sat_frac: &'a [f64],
    /// Saturation-voltage floors, volts.
    pub vdsat_min: &'a [f64],
}

impl Mosfet {
    /// Slice-based drain-current evaluation: computes current and output
    /// conductance for every instance `j` of one device position, reading
    /// `lanes.*[j]`, `vgs[j]`, `vds[j]` and writing `ids[j]`, `gs[j]`.
    ///
    /// The body is the same branch-free [`crate::fastmath`] arithmetic as
    /// [`MosParams::id_g`], laid out so the compiler vectorizes across
    /// instances; element `j` of the output is bit-identical to the scalar
    /// call with instance `j`'s parameters.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    pub fn ids_batch(
        lanes: &MosParamsLanes<'_>,
        vgs: &[f64],
        vds: &[f64],
        ids: &mut [f64],
        gs: &mut [f64],
    ) {
        let n = ids.len();
        assert!(
            [
                lanes.vt.len(),
                lanes.phi.len(),
                lanes.keff.len(),
                lanes.alpha.len(),
                lanes.lambda.len(),
                lanes.sat_frac.len(),
                lanes.vdsat_min.len(),
                vgs.len(),
                vds.len(),
                gs.len(),
            ]
            .iter()
            .all(|&l| l == n),
            "ids_batch slices must share one length"
        );
        for j in 0..n {
            let (i, g) = mos_id_g(
                lanes.vt[j],
                lanes.phi[j],
                lanes.keff[j],
                lanes.alpha[j],
                lanes.lambda[j],
                lanes.sat_frac[j],
                lanes.vdsat_min[j],
                vgs[j],
                vds[j],
            );
            ids[j] = i;
            gs[j] = g;
        }
    }
}

/// The one drain-current kernel every solver path runs: the smoothed
/// Sakurai-Newton alpha-power law (see [`Mosfet`]), written branch-free on
/// [`fastmath`] so batched loops vectorize and scalar calls stay
/// bit-identical to them.
#[allow(clippy::too_many_arguments)] // flattened on purpose: this is the SoA lane kernel
#[inline(always)]
fn mos_id_g(
    vt: f64,
    phi: f64,
    keff: f64,
    alpha: f64,
    lambda: f64,
    sat_frac: f64,
    vdsat_min: f64,
    vgs: f64,
    vds: f64,
) -> (f64, f64) {
    mos_id_g_with(
        fastmath::softplus,
        fastmath::powf,
        fastmath::tanh_pos,
        vt,
        phi,
        keff,
        alpha,
        lambda,
        sat_frac,
        vdsat_min,
        vgs,
        vds,
    )
}

/// The kernel body itself, parameterized over the math tier's `softplus`,
/// `powf` and `tanh_pos` so [`mos_id_g`] (shared full-precision kernels)
/// and [`MosParams::id_g_quick`] (the [`fastmath::quick`] tier) can never
/// drift apart in device physics — only in polynomial degree.
#[allow(clippy::too_many_arguments)] // flattened on purpose: this is the SoA lane kernel
#[inline(always)]
fn mos_id_g_with(
    softplus: impl Fn(f64) -> f64,
    powf: impl Fn(f64, f64) -> f64,
    tanh_pos: impl Fn(f64) -> f64,
    vt: f64,
    phi: f64,
    keff: f64,
    alpha: f64,
    lambda: f64,
    sat_frac: f64,
    vdsat_min: f64,
    vgs: f64,
    vds: f64,
) -> (f64, f64) {
    // Smooth overdrive: -> (vgs - vt) in strong inversion, exponential below.
    let veff = phi * softplus((vgs - vt) / phi);
    let idsat = keff * powf(veff, alpha);
    let vdsat = (sat_frac * veff).max(vdsat_min);
    let th = tanh_pos(vds / vdsat);
    let clm = 1.0 + lambda * vds;
    // Zero drain bias (or a mis-oriented caller) carries no current; the
    // multiplicative mask keeps the kernel branch-free.
    let live = (vds > 0.0) as u64 as f64;
    let i = idsat * th * clm * live;
    let g = idsat * ((1.0 - th * th) / vdsat * clm + th * lambda) * live;
    (i, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Corner;

    fn env() -> Env {
        Env::nominal()
    }

    #[test]
    fn on_current_magnitude_is_plausible() {
        // A 28 nm cell access device should carry tens of microamperes.
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let i = m.id(0.9, 0.9, &env());
        assert!(i > 10e-6 && i < 200e-6, "Ion = {i}");
    }

    #[test]
    fn leakage_is_orders_of_magnitude_below_on_current() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let ion = m.id(0.9, 0.9, &env());
        let ioff = m.id(0.0, 0.9, &env());
        assert!(ioff < 1e-4 * ion, "Ion {ion}, Ioff {ioff}");
        assert!(ioff > 0.0, "sub-threshold conduction should not be zero");
    }

    #[test]
    fn no_conduction_without_drain_bias() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        assert_eq!(m.id(0.9, 0.0, &env()), 0.0);
        assert_eq!(m.id(0.9, -0.5, &env()), 0.0);
    }

    #[test]
    fn monotone_in_vgs_and_vds() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 120.0, 30.0);
        let e = env();
        let mut prev = 0.0;
        for i in 0..=20 {
            let vgs = i as f64 * 0.05;
            let id = m.id(vgs, 0.9, &e);
            assert!(id >= prev, "Id must be monotone in Vgs at vgs={vgs}");
            prev = id;
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let vds = i as f64 * 0.05;
            let id = m.id(0.9, vds, &e);
            assert!(id >= prev, "Id must be monotone in Vds at vds={vds}");
            prev = id;
        }
    }

    #[test]
    fn lvt_beats_rvt_at_low_overdrive() {
        let rvt = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        let lvt = Mosfet::nmos(VtFlavor::Lvt, 100.0, 30.0);
        // At a small gate bias the LVT device conducts much more.
        let e = env();
        assert!(lvt.id(0.45, 0.9, &e) > 2.0 * rvt.id(0.45, 0.9, &e));
    }

    #[test]
    fn mismatch_shift_weakens_or_strengthens() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let weak = m.with_dvt(0.05);
        let strong = m.with_dvt(-0.05);
        let e = env();
        assert!(weak.id(0.6, 0.9, &e) < m.id(0.6, 0.9, &e));
        assert!(strong.id(0.6, 0.9, &e) > m.id(0.6, 0.9, &e));
    }

    #[test]
    fn corner_current_ordering() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let ss = m.id(0.9, 0.9, &env().with_corner(Corner::Ss));
        let nn = m.id(0.9, 0.9, &env());
        let ff = m.id(0.9, 0.9, &env().with_corner(Corner::Ff));
        assert!(ss < nn && nn < ff);
    }

    #[test]
    fn pmos_weaker_than_nmos_at_same_size() {
        let n = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        let p = Mosfet::pmos(VtFlavor::Rvt, 100.0, 30.0);
        let e = env();
        assert!(p.id(0.9, 0.9, &e) < n.id(0.9, 0.9, &e));
    }

    #[test]
    fn sigma_vt_scales_with_area() {
        let small = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let big = Mosfet::nmos(VtFlavor::Rvt, 360.0, 30.0);
        assert!((small.sigma_vt() / big.sigma_vt() - 2.0).abs() < 1e-9);
        // ~ 35 mV for a minimal cell transistor: the well-known 28 nm figure.
        assert!(small.sigma_vt() > 0.02 && small.sigma_vt() < 0.05);
    }

    #[test]
    fn compiled_params_match_the_device_model() {
        let e = env();
        for dev in [
            Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0).with_dvt(0.02),
            Mosfet::pmos(VtFlavor::Lvt, 200.0, 30.0).with_dvt(-0.03),
        ] {
            let p = MosParams::compile(&dev, &e);
            for i in 0..=12 {
                for j in 0..=12 {
                    let vgs = i as f64 * 0.1 - 0.2;
                    let vds = j as f64 * 0.1;
                    let a = dev.id(vgs, vds, &e);
                    let b = p.id_g(vgs, vds).0;
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "id mismatch at vgs={vgs} vds={vds}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn ids_batch_is_bit_identical_to_scalar_id_g() {
        let e = env();
        let n = 37; // odd on purpose: exercises any vector remainder
        let devs: Vec<Mosfet> = (0..n)
            .map(|i| {
                let flavor = [VtFlavor::Rvt, VtFlavor::Lvt, VtFlavor::Hvt][i % 3];
                Mosfet::nmos(flavor, 80.0 + i as f64, 30.0).with_dvt(i as f64 * 1e-3 - 0.02)
            })
            .collect();
        let params: Vec<MosParams> = devs.iter().map(|d| MosParams::compile(d, &e)).collect();
        let vt: Vec<f64> = params.iter().map(|p| p.vt).collect();
        let phi: Vec<f64> = params.iter().map(|p| p.phi).collect();
        let keff: Vec<f64> = params.iter().map(|p| p.keff).collect();
        let alpha: Vec<f64> = params.iter().map(|p| p.alpha).collect();
        let lambda: Vec<f64> = params.iter().map(|p| p.lambda).collect();
        let sat_frac: Vec<f64> = params.iter().map(|p| p.sat_frac).collect();
        let vdsat_min: Vec<f64> = params.iter().map(|p| p.vdsat_min).collect();
        let vgs: Vec<f64> = (0..n).map(|i| -0.1 + i as f64 * 0.03).collect();
        let vds: Vec<f64> = (0..n).map(|i| i as f64 * 0.025).collect();
        let mut ids = vec![0.0; n];
        let mut gs = vec![0.0; n];
        let lanes = MosParamsLanes {
            vt: &vt,
            phi: &phi,
            keff: &keff,
            alpha: &alpha,
            lambda: &lambda,
            sat_frac: &sat_frac,
            vdsat_min: &vdsat_min,
        };
        Mosfet::ids_batch(&lanes, &vgs, &vds, &mut ids, &mut gs);
        for j in 0..n {
            let (i, g) = params[j].id_g(vgs[j], vds[j]);
            assert_eq!(i.to_bits(), ids[j].to_bits(), "id lane {j}");
            assert_eq!(g.to_bits(), gs[j].to_bits(), "g lane {j}");
        }
    }

    #[test]
    fn caps_are_femtofarad_scale() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        assert!(m.gate_cap() > 1e-17 && m.gate_cap() < 1e-15);
        assert!(m.drain_cap() > 1e-17 && m.drain_cap() < 1e-15);
    }
}
