//! The MOSFET compact model: geometry + flavor + local mismatch.

use crate::env::Env;
use crate::params::ProcessLibrary;
use crate::types::{DeviceKind, VtFlavor};

/// A sized MOSFET instance.
///
/// The drain-current model is a smoothed Sakurai-Newton alpha-power law with
/// an EKV-style soft overdrive that degrades gracefully into sub-threshold:
///
/// ```text
/// veff = 2 n vT ln(1 + exp((Vgs - VT) / (2 n vT)))    // smooth overdrive
/// Idsat = kp (W/L) veff^alpha
/// Id = Idsat * tanh(Vds / Vdsat) * (1 + lambda Vds)   // triode/sat blend
/// ```
///
/// Voltages passed to [`Mosfet::id`] are *magnitudes* relative to the source
/// (a PMOS caller passes `|Vgs|`, `|Vds|`); the circuit solver orients
/// terminals, which also makes bidirectional pass-transistor conduction (the
/// 6T access devices) come out naturally.
///
/// # Examples
///
/// ```
/// use bpimc_device::{Env, Mosfet, VtFlavor};
/// let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
/// let env = Env::nominal();
/// // Monotone in Vgs.
/// assert!(m.id(0.9, 0.9, &env) > m.id(0.7, 0.9, &env));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    kind: DeviceKind,
    flavor: VtFlavor,
    w_nm: f64,
    l_nm: f64,
    /// Local threshold shift from mismatch sampling (V, magnitude space).
    dvt: f64,
}

impl Mosfet {
    /// Creates an NMOS with the given flavor and drawn W/L in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `w_nm` or `l_nm` is not positive.
    pub fn nmos(flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        Self::new(DeviceKind::Nmos, flavor, w_nm, l_nm)
    }

    /// Creates a PMOS with the given flavor and drawn W/L in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `w_nm` or `l_nm` is not positive.
    pub fn pmos(flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        Self::new(DeviceKind::Pmos, flavor, w_nm, l_nm)
    }

    fn new(kind: DeviceKind, flavor: VtFlavor, w_nm: f64, l_nm: f64) -> Self {
        assert!(
            w_nm > 0.0 && l_nm > 0.0,
            "W/L must be positive: {w_nm}/{l_nm}"
        );
        Self {
            kind,
            flavor,
            w_nm,
            l_nm,
            dvt: 0.0,
        }
    }

    /// Returns a copy with an explicit local threshold shift (volts).
    ///
    /// Positive `dvt` always makes the device *weaker* regardless of
    /// polarity (the shift is applied in magnitude space).
    pub fn with_dvt(mut self, dvt: f64) -> Self {
        self.dvt = dvt;
        self
    }

    /// Device polarity.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Threshold flavor.
    pub fn flavor(&self) -> VtFlavor {
        self.flavor
    }

    /// Drawn width in nanometres.
    pub fn w_nm(&self) -> f64 {
        self.w_nm
    }

    /// Drawn length in nanometres.
    pub fn l_nm(&self) -> f64 {
        self.l_nm
    }

    /// Local threshold shift in volts.
    pub fn dvt(&self) -> f64 {
        self.dvt
    }

    /// Aspect ratio W/L.
    pub fn aspect(&self) -> f64 {
        self.w_nm / self.l_nm
    }

    /// The effective threshold voltage (magnitude) at this operating point,
    /// including flavor, corner, temperature and local mismatch.
    pub fn vt(&self, env: &Env) -> f64 {
        ProcessLibrary::at(self.kind, self.flavor, env).vt0 + self.dvt
    }

    /// Drain current magnitude in amperes for source-referenced voltage
    /// magnitudes `vgs` and `vds` (both may be any sign; conduction requires
    /// positive `vds`, and negative `vgs` simply lands deep in
    /// sub-threshold).
    pub fn id(&self, vgs: f64, vds: f64, env: &Env) -> f64 {
        if vds <= 0.0 {
            return 0.0;
        }
        let p = ProcessLibrary::at(self.kind, self.flavor, env);
        let vt = p.vt0 + self.dvt;
        let phi = 2.0 * p.nsub * env.thermal_voltage();
        // Smooth overdrive: -> (vgs - vt) in strong inversion, exponential below.
        let x = (vgs - vt) / phi;
        // ln(1+e^x) computed stably for large |x|.
        let soft = if x > 30.0 {
            x
        } else if x < -30.0 {
            x.exp()
        } else {
            x.exp().ln_1p()
        };
        let veff = phi * soft;
        let idsat = p.kp * self.aspect() * veff.powf(p.alpha);
        let vdsat = (p.sat_frac * veff).max(p.vdsat_min);
        idsat * (vds / vdsat).tanh() * (1.0 + p.lambda * vds)
    }

    /// Gate capacitance estimate in farads (oxide + ~30% overlap/fringe).
    pub fn gate_cap(&self) -> f64 {
        let p = ProcessLibrary::base(self.kind, self.flavor);
        let area_m2 = (self.w_nm * 1e-9) * (self.l_nm * 1e-9);
        1.3 * p.cox * area_m2
    }

    /// Drain junction/diffusion capacitance estimate in farads.
    ///
    /// A simple per-width figure (~0.6 fF/um) adequate for loading hand-built
    /// nets like the BL mirror node.
    pub fn drain_cap(&self) -> f64 {
        0.6e-15 * (self.w_nm / 1000.0)
    }

    /// Pelgrom sigma of the local threshold for this geometry (volts).
    pub fn sigma_vt(&self) -> f64 {
        let p = ProcessLibrary::base(self.kind, self.flavor);
        let area_m2 = (self.w_nm * 1e-9) * (self.l_nm * 1e-9);
        p.avt / area_m2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Corner;

    fn env() -> Env {
        Env::nominal()
    }

    #[test]
    fn on_current_magnitude_is_plausible() {
        // A 28 nm cell access device should carry tens of microamperes.
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let i = m.id(0.9, 0.9, &env());
        assert!(i > 10e-6 && i < 200e-6, "Ion = {i}");
    }

    #[test]
    fn leakage_is_orders_of_magnitude_below_on_current() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let ion = m.id(0.9, 0.9, &env());
        let ioff = m.id(0.0, 0.9, &env());
        assert!(ioff < 1e-4 * ion, "Ion {ion}, Ioff {ioff}");
        assert!(ioff > 0.0, "sub-threshold conduction should not be zero");
    }

    #[test]
    fn no_conduction_without_drain_bias() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        assert_eq!(m.id(0.9, 0.0, &env()), 0.0);
        assert_eq!(m.id(0.9, -0.5, &env()), 0.0);
    }

    #[test]
    fn monotone_in_vgs_and_vds() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 120.0, 30.0);
        let e = env();
        let mut prev = 0.0;
        for i in 0..=20 {
            let vgs = i as f64 * 0.05;
            let id = m.id(vgs, 0.9, &e);
            assert!(id >= prev, "Id must be monotone in Vgs at vgs={vgs}");
            prev = id;
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let vds = i as f64 * 0.05;
            let id = m.id(0.9, vds, &e);
            assert!(id >= prev, "Id must be monotone in Vds at vds={vds}");
            prev = id;
        }
    }

    #[test]
    fn lvt_beats_rvt_at_low_overdrive() {
        let rvt = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        let lvt = Mosfet::nmos(VtFlavor::Lvt, 100.0, 30.0);
        // At a small gate bias the LVT device conducts much more.
        let e = env();
        assert!(lvt.id(0.45, 0.9, &e) > 2.0 * rvt.id(0.45, 0.9, &e));
    }

    #[test]
    fn mismatch_shift_weakens_or_strengthens() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let weak = m.with_dvt(0.05);
        let strong = m.with_dvt(-0.05);
        let e = env();
        assert!(weak.id(0.6, 0.9, &e) < m.id(0.6, 0.9, &e));
        assert!(strong.id(0.6, 0.9, &e) > m.id(0.6, 0.9, &e));
    }

    #[test]
    fn corner_current_ordering() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let ss = m.id(0.9, 0.9, &env().with_corner(Corner::Ss));
        let nn = m.id(0.9, 0.9, &env());
        let ff = m.id(0.9, 0.9, &env().with_corner(Corner::Ff));
        assert!(ss < nn && nn < ff);
    }

    #[test]
    fn pmos_weaker_than_nmos_at_same_size() {
        let n = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        let p = Mosfet::pmos(VtFlavor::Rvt, 100.0, 30.0);
        let e = env();
        assert!(p.id(0.9, 0.9, &e) < n.id(0.9, 0.9, &e));
    }

    #[test]
    fn sigma_vt_scales_with_area() {
        let small = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let big = Mosfet::nmos(VtFlavor::Rvt, 360.0, 30.0);
        assert!((small.sigma_vt() / big.sigma_vt() - 2.0).abs() < 1e-9);
        // ~ 35 mV for a minimal cell transistor: the well-known 28 nm figure.
        assert!(small.sigma_vt() > 0.02 && small.sigma_vt() < 0.05);
    }

    #[test]
    fn caps_are_femtofarad_scale() {
        let m = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        assert!(m.gate_cap() > 1e-17 && m.gate_cap() < 1e-15);
        assert!(m.drain_cap() > 1e-17 && m.drain_cap() < 1e-15);
    }
}
