//! Operating environment: supply voltage, temperature and process corner.

use crate::types::Corner;

/// The global operating point shared by all devices in a simulation.
///
/// # Examples
///
/// ```
/// use bpimc_device::{Corner, Env};
/// let env = Env::new(0.9, 25.0, Corner::Nn);
/// assert_eq!(env, Env::nominal());
/// let ff = Env::nominal().with_corner(Corner::Ff).with_vdd(1.1);
/// assert_eq!(ff.vdd, 1.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Env {
    /// Supply voltage in volts. The paper sweeps 0.6 V - 1.1 V.
    pub vdd: f64,
    /// Junction temperature in degrees Celsius.
    pub temp_c: f64,
    /// Global process corner.
    pub corner: Corner,
}

impl Env {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive or not finite.
    pub fn new(vdd: f64, temp_c: f64, corner: Corner) -> Self {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive, got {vdd}"
        );
        assert!(temp_c.is_finite(), "temperature must be finite");
        Self {
            vdd,
            temp_c,
            corner,
        }
    }

    /// The paper's nominal simulation condition: 0.9 V, 25 C, NN.
    pub fn nominal() -> Self {
        Self::new(0.9, 25.0, Corner::Nn)
    }

    /// Returns a copy with a different supply voltage.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive, got {vdd}"
        );
        self.vdd = vdd;
        self
    }

    /// Returns a copy with a different corner.
    pub fn with_corner(mut self, corner: Corner) -> Self {
        self.corner = corner;
        self
    }

    /// Returns a copy with a different temperature (degrees C).
    pub fn with_temp(mut self, temp_c: f64) -> Self {
        assert!(temp_c.is_finite(), "temperature must be finite");
        self.temp_c = temp_c;
        self
    }

    /// Absolute temperature in kelvin.
    pub fn temp_k(&self) -> f64 {
        self.temp_c + 273.15
    }

    /// Thermal voltage `kT/q` in volts at this temperature.
    pub fn thermal_voltage(&self) -> f64 {
        8.617_333e-5 * self.temp_k()
    }
}

impl Default for Env {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_values() {
        let e = Env::nominal();
        assert_eq!(e.vdd, 0.9);
        assert_eq!(e.temp_c, 25.0);
        assert_eq!(e.corner, Corner::Nn);
    }

    #[test]
    fn thermal_voltage_at_room_temp() {
        let vt = Env::nominal().thermal_voltage();
        assert!((vt - 0.0257).abs() < 0.0003, "vt = {vt}");
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn zero_vdd_rejected() {
        let _ = Env::new(0.0, 25.0, Corner::Nn);
    }

    #[test]
    fn builder_chain() {
        let e = Env::nominal()
            .with_vdd(0.6)
            .with_temp(85.0)
            .with_corner(Corner::Ss);
        assert_eq!(e.vdd, 0.6);
        assert_eq!(e.temp_c, 85.0);
        assert_eq!(e.corner, Corner::Ss);
    }
}
