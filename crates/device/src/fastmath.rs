//! Branch-free transcendental kernels for the device model's hot loops.
//!
//! The transient solvers spend almost all of their time inside
//! [`crate::model::MosParams::id_g`], whose cost is four transcendental
//! evaluations (`exp`, `ln_1p`, `powf`, `tanh`). The system `libm` versions
//! are precise but opaque to the compiler: they are out-of-line calls with
//! internal branches and table lookups, so a loop over many device
//! instances can neither inline nor vectorize them.
//!
//! This module provides straight-line, branch-free polynomial
//! implementations of exactly the functions the model needs. Because they
//! are `#[inline(always)]` pure arithmetic (no calls, no data-dependent
//! branches), LLVM auto-vectorizes loops over them — the structure-of-arrays
//! batch transient engine in `bpimc-circuit` gets SIMD device evaluation for
//! free — while a scalar call site computes the **bit-identical** value,
//! since vectorization only regroups IEEE operations and never reassociates
//! them. That bit-for-bit agreement between the scalar reference solver and
//! the batched engine is the property the workspace's reproducibility tests
//! pin.
//!
//! Accuracy is ~1 ulp-class (relative error `< 1e-14` over the domains the
//! device model exercises; see the tests), far below the 28 nm model's own
//! fidelity. **Domain contract:** arguments are finite; `ln`/`powf` take
//! positive *normal* inputs (the model guarantees this — effective
//! overdrives are floored well above the subnormal range); `exp` saturates
//! outside `[-700, 700]` instead of overflowing.

/// log2(e), for the exp range reduction `x = k ln2 + r`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of ln2: the leading 33 mantissa bits (trailing bits zero, so
/// `k * LN2_HI` is exact for the `k` range the reduction produces).
const LN2_HI: f64 = f64::from_bits(0x3fe6_2e42_fee0_0000);
/// Low part of ln2 (`ln2 - LN2_HI`).
const LN2_LO: f64 = f64::from_bits(0x3dea_39ef_3579_3c76);

/// `2^k` for integral `k` in the normal-exponent range, by exponent-field
/// assembly.
#[inline(always)]
fn exp2i(k: f64) -> f64 {
    f64::from_bits(((k as i64 + 1023) as u64) << 52)
}

/// `e^x`, saturating outside `[-700, 700]` (no overflow/underflow in the
/// device model's domain).
///
/// Range reduction to `|r| <= ln2 / 2` plus a degree-12 Taylor polynomial;
/// relative error `< 1e-15`.
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    let k = (x * LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let mut p: f64 = 1.0 / 479_001_600.0;
    p = p.mul_add(r, 1.0 / 39_916_800.0);
    p = p.mul_add(r, 1.0 / 3_628_800.0);
    p = p.mul_add(r, 1.0 / 362_880.0);
    p = p.mul_add(r, 1.0 / 40_320.0);
    p = p.mul_add(r, 1.0 / 5_040.0);
    p = p.mul_add(r, 1.0 / 720.0);
    p = p.mul_add(r, 1.0 / 120.0);
    p = p.mul_add(r, 1.0 / 24.0);
    p = p.mul_add(r, 1.0 / 6.0);
    p = p.mul_add(r, 0.5);
    p = p.mul_add(r, 1.0);
    p = p.mul_add(r, 1.0);
    p * exp2i(k)
}

/// Natural logarithm of a positive, normal, finite `x`.
///
/// Mantissa/exponent split with the pivot at `sqrt(2)` (so the reduced
/// argument is symmetric about 1), then the odd `atanh` series in
/// `s = (f-1)/(f+1)`, `|s| <= 0.1716`, up to `s^17`; relative error
/// `< 1e-15` away from 1 and absolute error `< 1e-17` near 1.
#[inline(always)]
pub fn ln(x: f64) -> f64 {
    let bits = x.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i64;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    let big = m > std::f64::consts::SQRT_2;
    let f = if big { 0.5 * m } else { m };
    let e = (e_raw - 1023 + big as i64) as f64;
    let s = (f - 1.0) / (f + 1.0);
    let w = s * s;
    let mut q: f64 = 1.0 / 17.0;
    q = q.mul_add(w, 1.0 / 15.0);
    q = q.mul_add(w, 1.0 / 13.0);
    q = q.mul_add(w, 1.0 / 11.0);
    q = q.mul_add(w, 1.0 / 9.0);
    q = q.mul_add(w, 1.0 / 7.0);
    q = q.mul_add(w, 1.0 / 5.0);
    q = q.mul_add(w, 1.0 / 3.0);
    q = q.mul_add(w, 1.0);
    e.mul_add(std::f64::consts::LN_2, 2.0 * s * q)
}

/// Defines the four kernels derived purely from the in-scope `exp`/`ln`
/// (`ln_1p`, `softplus`, `powf`, `tanh_pos`). Invoked once per tier — the
/// full-precision module below and [`quick`] — so the derivations can
/// never drift apart; only the base `exp`/`ln` polynomials differ between
/// tiers, and each tier's accuracy follows from its bases.
macro_rules! derived_kernels {
    () => {
        /// `ln(1 + z)` for `z > -1` with `1 + z` normal.
        ///
        /// `ln(1+z)` through this tier's `ln` with the classic first-order
        /// correction for the rounding of `1 + z`, which keeps small-`z`
        /// relative error at the base kernels' level instead of losing
        /// half the mantissa.
        #[inline(always)]
        pub fn ln_1p(z: f64) -> f64 {
            let u = 1.0 + z;
            ln(u) + (z - (u - 1.0)) / u
        }

        /// The softplus `ln(1 + e^x)` — the model's smooth overdrive.
        ///
        /// Computed as `max(x, 0) + ln_1p(e^{-|x|})`, which is exact in
        /// both asymptotes and branch-free.
        #[inline(always)]
        pub fn softplus(x: f64) -> f64 {
            x.max(0.0) + ln_1p(exp(-x.abs()))
        }

        /// `x^a` for positive normal `x`, as `exp(a ln x)` (the error of
        /// the reduced-precision exponent `a ln x` dominates).
        #[inline(always)]
        pub fn powf(x: f64, a: f64) -> f64 {
            exp(a * ln(x))
        }

        /// `tanh(u)` for `u >= 0`, as `(1 - e^{-2u}) / (1 + e^{-2u})`.
        /// The mild cancellation for tiny `u` is harmless here — the model
        /// multiplies the result by a current that vanishes with `u`
        /// anyway.
        #[inline(always)]
        pub fn tanh_pos(u: f64) -> f64 {
            let t = exp(-2.0 * u);
            (1.0 - t) / (1.0 + t)
        }
    };
}

derived_kernels!();

/// The **quick tier**: shorter polynomials for scalar-only hot paths.
///
/// The shared kernels above carry enough polynomial degree for ~1e-14
/// relative error because the batch engine's bit-identity contract leaves
/// no room to trade accuracy for speed. A *scalar-only* consumer — a
/// single-instance transient chain with nothing to vectorize across — can:
/// on serial dependence chains the long polynomials cost more than `libm`
/// (the PR-4 follow-up), and ~1e-8 relative error is still far below the
/// 28 nm model's own fidelity and the solvers' 20 mV accuracy guard.
///
/// This tier drops the polynomial tails: `exp` to degree 7 (remainder
/// `r^8/8!` at `|r| <= ln2/2`), `ln` to the `s^9` series term. Relative
/// error `< 5e-8` over the same documented domains (`powf`'s exponent
/// amplification dominates; the bare kernels sit near 1e-8). **Never** use these
/// where results must match the batch engine bit for bit — the shared
/// kernels remain the only arithmetic both paths run; opting a scalar
/// solve into this tier (`SimOptions::with_fast_math` in `bpimc-circuit`)
/// deliberately leaves that contract.
pub mod quick {
    use super::{exp2i, LN2_HI, LN2_LO, LOG2_E};

    /// `e^x`, saturating outside `[-700, 700]`; relative error `< 2e-8`.
    #[inline(always)]
    pub fn exp(x: f64) -> f64 {
        let x = x.clamp(-700.0, 700.0);
        let k = (x * LOG2_E).round();
        let r = (x - k * LN2_HI) - k * LN2_LO;
        let mut p: f64 = 1.0 / 5_040.0;
        p = p.mul_add(r, 1.0 / 720.0);
        p = p.mul_add(r, 1.0 / 120.0);
        p = p.mul_add(r, 1.0 / 24.0);
        p = p.mul_add(r, 1.0 / 6.0);
        p = p.mul_add(r, 0.5);
        p = p.mul_add(r, 1.0);
        p = p.mul_add(r, 1.0);
        p * exp2i(k)
    }

    /// Natural log of a positive normal `x`; relative error `< 2e-8`.
    #[inline(always)]
    pub fn ln(x: f64) -> f64 {
        let bits = x.to_bits();
        let e_raw = ((bits >> 52) & 0x7ff) as i64;
        let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        let big = m > std::f64::consts::SQRT_2;
        let f = if big { 0.5 * m } else { m };
        let e = (e_raw - 1023 + big as i64) as f64;
        let s = (f - 1.0) / (f + 1.0);
        let w = s * s;
        let mut q: f64 = 1.0 / 9.0;
        q = q.mul_add(w, 1.0 / 7.0);
        q = q.mul_add(w, 1.0 / 5.0);
        q = q.mul_add(w, 1.0 / 3.0);
        q = q.mul_add(w, 1.0);
        e.mul_add(std::f64::consts::LN_2, 2.0 * s * q)
    }

    derived_kernels!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn exp_matches_std_over_the_model_domain() {
        let mut worst = 0.0f64;
        for i in 0..=120_000 {
            let x = -60.0 + i as f64 * 1e-3;
            worst = worst.max(rel(exp(x), x.exp()));
        }
        assert!(worst < 1e-14, "worst rel err {worst:.2e}");
    }

    #[test]
    fn exp_saturates_instead_of_overflowing() {
        assert!(exp(1e9).is_finite());
        assert!(exp(-1e9) > 0.0);
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn ln_matches_std_for_positive_normals() {
        let mut worst = 0.0f64;
        for i in 0..=100_000 {
            // Log-spaced from 1e-300 to ~1e+4.
            let x = 1e-300 * (i as f64 * 7e-3).exp();
            if !x.is_normal() {
                continue;
            }
            let err = (ln(x) - x.ln()).abs() / x.ln().abs().max(1.0);
            worst = worst.max(err);
        }
        assert!(worst < 1e-15, "worst rel err {worst:.2e}");
    }

    #[test]
    fn ln_1p_keeps_precision_for_tiny_arguments() {
        for &z in &[1e-18, 1e-12, 1e-6, 0.1, 0.5, 1.0] {
            assert!(
                rel(ln_1p(z), z.ln_1p()) < 1e-14,
                "z = {z}: {} vs {}",
                ln_1p(z),
                z.ln_1p()
            );
        }
    }

    #[test]
    fn softplus_has_exact_asymptotes() {
        // Deep sub-threshold: softplus(x) -> ln(1 + e^x) ~ e^x.
        assert!(rel(softplus(-20.0), (-20.0f64).exp().ln_1p()) < 1e-13);
        // Strong inversion: softplus(x) -> x.
        assert!(rel(softplus(40.0), 40.0) < 1e-15);
        assert!(rel(softplus(0.0), std::f64::consts::LN_2) < 1e-15);
    }

    #[test]
    fn powf_matches_std_over_the_overdrive_range() {
        let mut worst = 0.0f64;
        for i in 1..=50_000 {
            let x = i as f64 * 4e-5; // (0, 2]
            worst = worst.max(rel(powf(x, 1.35), x.powf(1.35)));
        }
        assert!(worst < 1e-13, "worst rel err {worst:.2e}");
    }

    #[test]
    fn tanh_pos_matches_std() {
        let mut worst = 0.0f64;
        for i in 0..=50_000 {
            let u = i as f64 * 1e-3; // [0, 50]
            let t = u.tanh();
            if t > 0.0 {
                worst = worst.max(rel(tanh_pos(u), t));
            }
        }
        assert!(worst < 1e-13, "worst rel err {worst:.2e}");
        assert_eq!(tanh_pos(0.0), 0.0);
    }

    #[test]
    fn quick_tier_tracks_the_shared_kernels_within_its_contract() {
        // The quick tier's documented accuracy: < 1e-8 relative against
        // the shared kernels over the model's domains.
        let mut worst = 0.0f64;
        for i in 0..=40_000 {
            let x = -40.0 + i as f64 * 2e-3;
            worst = worst.max(rel(quick::exp(x), exp(x)));
            worst = worst.max(rel(quick::softplus(x), softplus(x)));
        }
        for i in 1..=40_000 {
            let x = i as f64 * 5e-5; // (0, 2]
            worst = worst.max(rel(quick::ln(x), ln(x)));
            worst = worst.max(rel(quick::powf(x, 1.35), powf(x, 1.35)));
        }
        for i in 0..=20_000 {
            let u = i as f64 * 2.5e-3; // [0, 50]
            let t = tanh_pos(u);
            if t > 0.0 {
                worst = worst.max(rel(quick::tanh_pos(u), t));
            }
        }
        assert!(worst < 5e-8, "worst quick-tier rel err {worst:.2e}");
        assert!(quick::exp(1e9).is_finite());
        assert_eq!(quick::exp(0.0), 1.0);
        assert_eq!(quick::tanh_pos(0.0), 0.0);
    }

    #[test]
    fn quick_softplus_is_monotone() {
        // The solvers' device model must stay monotone under the quick
        // tier too (no local dips at range-reduction boundaries).
        let mut prev = 0.0;
        for i in 0..=200_000 {
            let x = -10.0 + i as f64 * 1e-4;
            let y = quick::softplus(x);
            assert!(y >= prev, "quick softplus dip at x = {x}");
            prev = y;
        }
    }

    #[test]
    fn kernels_are_monotone_on_a_fine_grid() {
        // The device tests assert Id monotone in Vgs/Vds; the polynomial
        // kernels must not introduce local dips at range-reduction
        // boundaries at the granularity the model sees.
        let mut prev = 0.0;
        for i in 0..=400_000 {
            let x = -10.0 + i as f64 * 5e-5;
            let y = softplus(x);
            assert!(y >= prev, "softplus dip at x = {x}");
            prev = y;
        }
        let mut prev = -1.0;
        for i in 0..=200_000 {
            let u = i as f64 * 1e-4;
            let t = tanh_pos(u);
            assert!(t + 1e-15 >= prev, "tanh dip at u = {u}");
            prev = t;
        }
    }
}
