//! Process parameter tables for the behavioral 28 nm library.

use crate::env::Env;
use crate::types::{DeviceKind, VtFlavor};

#[cfg(test)]
use crate::types::Corner;

/// Electrical parameters of one device type at one operating point.
///
/// All parameters are in SI units (volts, amperes, farads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Zero-bias threshold voltage (magnitude) in volts.
    pub vt0: f64,
    /// Transconductance coefficient: `Id = kp * (W/L) * veff^alpha * f(Vds)`.
    pub kp: f64,
    /// Velocity-saturation exponent (Sakurai-Newton alpha), ~1.3 at 28 nm.
    pub alpha: f64,
    /// Sub-threshold slope factor `n` (swing = n * kT/q * ln 10).
    pub nsub: f64,
    /// Channel-length modulation coefficient (1/V).
    pub lambda: f64,
    /// Fraction of the effective overdrive at which the drain saturates
    /// (`Vdsat = sat_frac * veff`, floored at `vdsat_min`).
    pub sat_frac: f64,
    /// Minimum saturation voltage in volts (keeps `tanh(Vds/Vdsat)` sane in
    /// sub-threshold where `veff` is tiny).
    pub vdsat_min: f64,
    /// Gate capacitance per gate area, F/m^2.
    pub cox: f64,
    /// Pelgrom mismatch coefficient `A_vt` in V*m (sigma_vt = A_vt/sqrt(WL)).
    pub avt: f64,
}

/// The behavioral 28 nm process library.
///
/// Exposes per-(kind, flavor) parameters adjusted for corner and temperature.
/// Numbers are representative of published 28 nm HKMG data: RVT |VT| ~ 0.4 V,
/// LVT ~ 130 mV lower, corner shift +/- 35 mV, A_vt ~ 1.8 mV*um.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessLibrary;

impl ProcessLibrary {
    /// Corner threshold shift magnitude (V). Slow = +shift, fast = -shift.
    pub const CORNER_DVT: f64 = 0.035;
    /// Corner transconductance factor. Slow = 1-x, fast = 1+x.
    pub const CORNER_DKP: f64 = 0.08;
    /// VT temperature coefficient (V/K); VT falls as temperature rises.
    pub const VT_TEMP_COEFF: f64 = -0.7e-3;
    /// Mobility temperature exponent: kp ~ (T0/T)^1.4.
    pub const MOBILITY_TEMP_EXP: f64 = 1.4;

    /// Base (NN corner, 25 C) parameters for one device type.
    pub fn base(kind: DeviceKind, flavor: VtFlavor) -> DeviceParams {
        let (vt0, kp) = match kind {
            DeviceKind::Nmos => (0.44, 3.6e-5),
            DeviceKind::Pmos => (0.40, 1.9e-5),
        };
        let dvt_flavor = match flavor {
            VtFlavor::Rvt => 0.0,
            VtFlavor::Lvt => -0.13,
            VtFlavor::Hvt => 0.10,
        };
        // LVT devices trade leakage for drive: slightly stronger kp.
        let kp_flavor = match flavor {
            VtFlavor::Rvt => 1.0,
            VtFlavor::Lvt => 1.05,
            VtFlavor::Hvt => 0.95,
        };
        DeviceParams {
            vt0: vt0 + dvt_flavor,
            kp: kp * kp_flavor,
            alpha: 1.35,
            nsub: 1.35,
            lambda: 0.06,
            sat_frac: 0.55,
            vdsat_min: 0.06,
            cox: 0.030,  // 30 fF/um^2
            avt: 1.8e-9, // 1.8 mV*um in V*m
        }
    }

    /// Parameters adjusted for the environment's corner and temperature.
    pub fn at(kind: DeviceKind, flavor: VtFlavor, env: &Env) -> DeviceParams {
        let mut p = Self::base(kind, flavor);
        let skew = match kind {
            DeviceKind::Nmos => env.corner.nmos_skew(),
            DeviceKind::Pmos => env.corner.pmos_skew(),
        };
        // Fast corner: lower VT, higher kp. Slow corner: the opposite.
        p.vt0 -= skew * Self::CORNER_DVT;
        p.kp *= 1.0 + skew * Self::CORNER_DKP;
        // Temperature.
        let dt = env.temp_c - 25.0;
        p.vt0 += Self::VT_TEMP_COEFF * dt;
        p.kp *= (298.15_f64 / env.temp_k()).powf(Self::MOBILITY_TEMP_EXP);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvt_is_lower_threshold() {
        let rvt = ProcessLibrary::base(DeviceKind::Nmos, VtFlavor::Rvt);
        let lvt = ProcessLibrary::base(DeviceKind::Nmos, VtFlavor::Lvt);
        let hvt = ProcessLibrary::base(DeviceKind::Nmos, VtFlavor::Hvt);
        assert!(lvt.vt0 < rvt.vt0);
        assert!(hvt.vt0 > rvt.vt0);
    }

    #[test]
    fn corners_shift_vt_in_the_right_direction() {
        let nominal = Env::nominal();
        let ss = nominal.with_corner(Corner::Ss);
        let ff = nominal.with_corner(Corner::Ff);
        let p_nn = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &nominal);
        let p_ss = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &ss);
        let p_ff = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &ff);
        assert!(p_ss.vt0 > p_nn.vt0 && p_nn.vt0 > p_ff.vt0);
        assert!(p_ss.kp < p_nn.kp && p_nn.kp < p_ff.kp);
    }

    #[test]
    fn skewed_corners_split_polarity() {
        let sf = Env::nominal().with_corner(Corner::Sf);
        let n = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &sf);
        let p = ProcessLibrary::at(DeviceKind::Pmos, VtFlavor::Rvt, &sf);
        let n_nn = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &Env::nominal());
        let p_nn = ProcessLibrary::at(DeviceKind::Pmos, VtFlavor::Rvt, &Env::nominal());
        assert!(n.vt0 > n_nn.vt0, "slow NMOS has raised VT");
        assert!(p.vt0 < p_nn.vt0, "fast PMOS has lowered VT");
    }

    #[test]
    fn hot_devices_are_weaker_in_strong_inversion() {
        let hot = Env::nominal().with_temp(125.0);
        let p_hot = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &hot);
        let p_cold = ProcessLibrary::at(DeviceKind::Nmos, VtFlavor::Rvt, &Env::nominal());
        assert!(p_hot.kp < p_cold.kp);
        assert!(p_hot.vt0 < p_cold.vt0, "VT drops with temperature");
    }
}
