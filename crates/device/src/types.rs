//! Device taxonomy: polarity, threshold flavor and process corner.

use std::fmt;
use std::str::FromStr;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// N-channel device (pull-down / pass).
    Nmos,
    /// P-channel device (pull-up).
    Pmos,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Nmos => write!(f, "NMOS"),
            DeviceKind::Pmos => write!(f, "PMOS"),
        }
    }
}

/// Threshold-voltage flavor.
///
/// The paper's BL boosting circuit explicitly uses low-VT (LVT) devices for
/// its P0/N0/N1 transistors "to catch up the small BL swing" left by the
/// short word-line pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VtFlavor {
    /// Regular threshold (standard logic and the 6T cell).
    Rvt,
    /// Low threshold: faster, leakier. Used in the BL booster.
    Lvt,
    /// High threshold: slow, low leakage.
    Hvt,
}

impl fmt::Display for VtFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VtFlavor::Rvt => write!(f, "RVT"),
            VtFlavor::Lvt => write!(f, "LVT"),
            VtFlavor::Hvt => write!(f, "HVT"),
        }
    }
}

/// Global process corner, ordered as the paper's Fig. 7(a) x-axis.
///
/// The first letter is the NMOS corner, the second the PMOS corner
/// (S = slow, F = fast, N = nominal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Slow NMOS / fast PMOS.
    Sf,
    /// Slow NMOS / slow PMOS.
    Ss,
    /// Nominal / nominal (typical).
    Nn,
    /// Fast NMOS / slow PMOS.
    Fs,
    /// Fast NMOS / fast PMOS.
    Ff,
}

impl Corner {
    /// All corners in the paper's Fig. 7(a) plotting order.
    pub const ALL: [Corner; 5] = [Corner::Sf, Corner::Ss, Corner::Nn, Corner::Fs, Corner::Ff];

    /// Signed speed factor for the NMOS devices: -1 slow, 0 nominal, +1 fast.
    pub fn nmos_skew(&self) -> f64 {
        match self {
            Corner::Sf | Corner::Ss => -1.0,
            Corner::Nn => 0.0,
            Corner::Fs | Corner::Ff => 1.0,
        }
    }

    /// Signed speed factor for the PMOS devices: -1 slow, 0 nominal, +1 fast.
    pub fn pmos_skew(&self) -> f64 {
        match self {
            Corner::Ss | Corner::Fs => -1.0,
            Corner::Nn => 0.0,
            Corner::Sf | Corner::Ff => 1.0,
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Corner::Sf => "SF",
            Corner::Ss => "SS",
            Corner::Nn => "NN",
            Corner::Fs => "FS",
            Corner::Ff => "FF",
        };
        write!(f, "{s}")
    }
}

/// Error returned when parsing a [`Corner`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCornerError(String);

impl fmt::Display for ParseCornerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown process corner `{}`", self.0)
    }
}

impl std::error::Error for ParseCornerError {}

impl FromStr for Corner {
    type Err = ParseCornerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SF" => Ok(Corner::Sf),
            "SS" => Ok(Corner::Ss),
            "NN" | "TT" => Ok(Corner::Nn),
            "FS" => Ok(Corner::Fs),
            "FF" => Ok(Corner::Ff),
            other => Err(ParseCornerError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_order_matches_paper_axis() {
        assert_eq!(
            Corner::ALL.map(|c| c.to_string()),
            ["SF", "SS", "NN", "FS", "FF"]
        );
    }

    #[test]
    fn skews_are_consistent() {
        assert_eq!(Corner::Ss.nmos_skew(), -1.0);
        assert_eq!(Corner::Ss.pmos_skew(), -1.0);
        assert_eq!(Corner::Sf.nmos_skew(), -1.0);
        assert_eq!(Corner::Sf.pmos_skew(), 1.0);
        assert_eq!(Corner::Fs.nmos_skew(), 1.0);
        assert_eq!(Corner::Fs.pmos_skew(), -1.0);
        assert_eq!(Corner::Nn.nmos_skew(), 0.0);
    }

    #[test]
    fn corner_round_trips_through_str() {
        for c in Corner::ALL {
            let parsed: Corner = c.to_string().parse().expect("parse");
            assert_eq!(parsed, c);
        }
        assert!("XX".parse::<Corner>().is_err());
        assert_eq!("tt".parse::<Corner>(), Ok(Corner::Nn));
    }
}
