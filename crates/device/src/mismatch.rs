//! Local-variation (mismatch) sampling via the Pelgrom law.
//!
//! Random threshold-voltage variation between nominally identical devices is
//! what creates the bit-line computing delay *distribution* of the paper's
//! Fig. 2 and the read-disturb failure tail. The standard first-order model
//! is Pelgrom's law: `sigma(VT) = A_vt / sqrt(W * L)`.

use crate::model::Mosfet;
use bpimc_stats::normal::standard_normal;
use rand::Rng;

/// Sampler that draws per-device threshold shifts.
///
/// A `sigma_scale` of 1.0 is the nominal process; tests use smaller values
/// to exercise plumbing quickly, and robustness studies can crank it up.
///
/// # Examples
///
/// ```
/// use bpimc_device::{MismatchModel, Mosfet, VtFlavor};
/// let mut rng = bpimc_stats::seeded_rng(9);
/// let mm = MismatchModel::nominal();
/// let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
/// let inst = mm.sample(&m, &mut rng);
/// assert!(inst.dvt().abs() < 0.3); // a few sigma at most
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchModel {
    sigma_scale: f64,
}

impl MismatchModel {
    /// Nominal process mismatch (scale = 1).
    pub fn nominal() -> Self {
        Self { sigma_scale: 1.0 }
    }

    /// A model with scaled mismatch strength.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_scale` is negative or not finite.
    pub fn with_scale(sigma_scale: f64) -> Self {
        assert!(
            sigma_scale.is_finite() && sigma_scale >= 0.0,
            "sigma_scale must be finite and non-negative"
        );
        Self { sigma_scale }
    }

    /// No mismatch at all (deterministic circuits).
    pub fn none() -> Self {
        Self { sigma_scale: 0.0 }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.sigma_scale
    }

    /// Draws a mismatched instance of `device`.
    pub fn sample<R: Rng + ?Sized>(&self, device: &Mosfet, rng: &mut R) -> Mosfet {
        let sigma = device.sigma_vt() * self.sigma_scale;
        device.with_dvt(sigma * standard_normal(rng))
    }
}

impl Default for MismatchModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VtFlavor;
    use bpimc_stats::{seeded_rng, Summary};

    #[test]
    fn sampled_sigma_matches_pelgrom() {
        let mut rng = seeded_rng(17);
        let mm = MismatchModel::nominal();
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let dvts: Vec<f64> = (0..20_000).map(|_| mm.sample(&m, &mut rng).dvt()).collect();
        let s = Summary::from_slice(&dvts);
        assert!(s.mean.abs() < 1e-3, "mean {}", s.mean);
        let expect = m.sigma_vt();
        assert!(
            (s.std - expect).abs() / expect < 0.03,
            "std {} vs {}",
            s.std,
            expect
        );
    }

    #[test]
    fn none_is_deterministic() {
        let mut rng = seeded_rng(3);
        let mm = MismatchModel::none();
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        for _ in 0..4 {
            assert_eq!(mm.sample(&m, &mut rng).dvt(), 0.0);
        }
    }

    #[test]
    fn scale_multiplies_sigma() {
        let mut rng = seeded_rng(5);
        let m = Mosfet::nmos(VtFlavor::Rvt, 90.0, 30.0);
        let wide = MismatchModel::with_scale(3.0);
        let dvts: Vec<f64> = (0..10_000)
            .map(|_| wide.sample(&m, &mut rng).dvt())
            .collect();
        let s = Summary::from_slice(&dvts);
        let expect = 3.0 * m.sigma_vt();
        assert!((s.std - expect).abs() / expect < 0.05);
    }
}
