//! Property tests for the device model: the physics must stay monotone and
//! continuous everywhere the solver can visit.

use bpimc_device::{Corner, Env, Mosfet, VtFlavor};
use proptest::prelude::*;

fn any_corner() -> impl Strategy<Value = Corner> {
    prop_oneof![
        Just(Corner::Sf),
        Just(Corner::Ss),
        Just(Corner::Nn),
        Just(Corner::Fs),
        Just(Corner::Ff),
    ]
}

fn any_flavor() -> impl Strategy<Value = VtFlavor> {
    prop_oneof![
        Just(VtFlavor::Rvt),
        Just(VtFlavor::Lvt),
        Just(VtFlavor::Hvt)
    ]
}

proptest! {
    /// Drain current is non-negative and monotone non-decreasing in both
    /// Vgs and Vds for every flavor/corner/geometry.
    #[test]
    fn id_is_monotone(
        corner in any_corner(),
        flavor in any_flavor(),
        w in 60.0f64..600.0,
        vgs in 0.0f64..1.2,
        vds in 0.01f64..1.2,
        dv in 0.01f64..0.2,
    ) {
        let env = Env::new(0.9, 25.0, corner);
        let m = Mosfet::nmos(flavor, w, 30.0);
        let i0 = m.id(vgs, vds, &env);
        prop_assert!(i0 >= 0.0);
        prop_assert!(m.id(vgs + dv, vds, &env) >= i0, "monotone in vgs");
        prop_assert!(m.id(vgs, vds + dv, &env) >= i0, "monotone in vds");
    }

    /// The model is continuous across the threshold: a tiny Vgs step can
    /// only produce a bounded relative current step.
    #[test]
    fn id_is_continuous_near_threshold(flavor in any_flavor(), base in 0.2f64..0.7) {
        let env = Env::nominal();
        let m = Mosfet::nmos(flavor, 100.0, 30.0);
        let eps = 1e-4;
        let a = m.id(base, 0.9, &env);
        let b = m.id(base + eps, 0.9, &env);
        // Sub-threshold slope bounds the growth: < 1% per 0.1 mV.
        prop_assert!(b >= a);
        prop_assert!(b <= a * 1.01 + 1e-15, "jump at vgs={base}: {a} -> {b}");
    }

    /// Wider devices carry proportionally more current.
    #[test]
    fn id_scales_with_width(w in 60.0f64..300.0, vgs in 0.5f64..1.0) {
        let env = Env::nominal();
        let m1 = Mosfet::nmos(VtFlavor::Rvt, w, 30.0);
        let m2 = Mosfet::nmos(VtFlavor::Rvt, 2.0 * w, 30.0);
        let (i1, i2) = (m1.id(vgs, 0.9, &env), m2.id(vgs, 0.9, &env));
        prop_assert!((i2 / i1 - 2.0).abs() < 1e-9);
    }

    /// Corner ordering holds at any bias in strong inversion.
    #[test]
    fn corner_ordering_holds_everywhere(vgs in 0.55f64..1.1, vds in 0.1f64..1.1) {
        let m = Mosfet::nmos(VtFlavor::Rvt, 100.0, 30.0);
        let at = |c| m.id(vgs, vds, &Env::new(0.9, 25.0, c));
        prop_assert!(at(Corner::Ss) <= at(Corner::Nn));
        prop_assert!(at(Corner::Nn) <= at(Corner::Ff));
    }
}
