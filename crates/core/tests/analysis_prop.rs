//! Differential property suite for the program analyzer
//! (`bpimc_core::prog::analysis`): over random valid programs at every
//! precision P2–P32,
//!
//! * `Program::optimize` is semantics-preserving — read outputs are
//!   bit-identical to the original and `Program::cycles` never increases
//!   (and `Program::run` asserts the static cost model against the
//!   execution log for both, so the activity accounting stays exact);
//! * `Program::partition` (now built on the shared reaching-definitions
//!   framework) groups instructions exactly as the original last-writer
//!   union-find did, with the same submitted indices and read slots.
//!
//! The generator is adversarial on purpose: it injects dead overwrites,
//! copies, and duplicate multi-cycle ops so the DSE/copy-propagation/CSE
//! passes all get real work, and it grows independent chains so
//! partitions are non-trivial.

use bpimc_core::prog::{Instr, Program, Reg};
use bpimc_core::{ImcMacro, LogicOp, MacroConfig, Precision};
use proptest::prelude::*;

/// One generator step: an op selector plus raw operand/value entropy the
/// builder folds into whatever instruction is currently constructible.
type Step = (u8, u16, u16, u64);

fn set_dst(instr: &mut Instr, reg: Reg) {
    match instr {
        Instr::Read { .. } | Instr::ReadProducts { .. } => unreachable!("reads define nothing"),
        Instr::Write { dst, .. }
        | Instr::WriteMult { dst, .. }
        | Instr::Logic { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Shl { dst, .. }
        | Instr::Add { dst, .. }
        | Instr::AddShift { dst, .. }
        | Instr::Sub { dst, .. }
        | Instr::Mult { dst, .. }
        | Instr::ReduceAdd { dst, .. } => *dst = reg,
    }
}

/// Builds a random valid program from proptest-driven steps. `dense`
/// tracks rows holding P-bit lane values, `prods` rows holding 2P-bit
/// product lanes; every constructed instruction only reads defined rows,
/// keeps dual-WL operands distinct, and masks values to the lane width —
/// so the result always passes `Program::validate`.
fn build_program(p: Precision, steps: &[Step]) -> Program {
    let cols = 128;
    let lanes = p.lanes(cols).min(4);
    let mut instrs: Vec<Instr> = Vec::new();
    let mut dense: Vec<Reg> = Vec::new();
    let mut prods: Vec<Reg> = Vec::new();
    let mut next = 0u16;
    let fresh = |next: &mut u16| {
        let r = Reg(*next);
        *next += 1;
        r
    };
    // Multi-cycle ops emitted so far, as (index) — fodder for duplicate
    // re-emission (the CSE pass's food).
    let mut multi: Vec<usize> = Vec::new();
    for &(op, s1, s2, value) in steps {
        let pick = |pool: &[Reg], sel: u16| pool[sel as usize % pool.len()];
        let pick2 = |pool: &[Reg], sel1: u16, sel2: u16| {
            let i = sel1 as usize % pool.len();
            let j = (i + 1 + sel2 as usize % (pool.len() - 1)) % pool.len();
            (pool[i], pool[j])
        };
        let values: Vec<u64> = (0..lanes as u64)
            .map(|k| (value.rotate_left(k as u32 * 7)) & p.max_value())
            .collect();
        match op % 12 {
            0 => {
                let dst = fresh(&mut next);
                instrs.push(Instr::Write {
                    dst,
                    precision: p,
                    values,
                });
                dense.push(dst);
            }
            // Overwrite an existing row: the previous value may become a
            // dead store for DSE to collect.
            1 if !dense.is_empty() => {
                let dst = pick(&dense, s1);
                instrs.push(Instr::Write {
                    dst,
                    precision: p,
                    values,
                });
            }
            2 if !dense.is_empty() => {
                let src = pick(&dense, s1);
                let dst = fresh(&mut next);
                instrs.push(Instr::Copy { src, dst });
                dense.push(dst);
            }
            3 if dense.len() >= 2 => {
                let (a, b) = pick2(&dense, s1, s2);
                let dst = fresh(&mut next);
                instrs.push(Instr::Add {
                    a,
                    b,
                    dst,
                    precision: p,
                });
                dense.push(dst);
            }
            4 if dense.len() >= 2 => {
                let (a, b) = pick2(&dense, s1, s2);
                let dst = fresh(&mut next);
                instrs.push(Instr::Sub {
                    a,
                    b,
                    dst,
                    precision: p,
                });
                multi.push(instrs.len() - 1);
                dense.push(dst);
            }
            5 if !dense.is_empty() => {
                let src = pick(&dense, s1);
                let dst = fresh(&mut next);
                instrs.push(Instr::Shl {
                    src,
                    dst,
                    precision: p,
                });
                dense.push(dst);
            }
            6 if dense.len() >= 2 => {
                let (a, b) = pick2(&dense, s1, s2);
                let dst = fresh(&mut next);
                instrs.push(Instr::Logic {
                    op: LogicOp::Xor,
                    a,
                    b,
                    dst,
                });
                dense.push(dst);
            }
            // Re-emit an earlier multi-cycle op verbatim with a fresh
            // destination: a guaranteed common subexpression *if* its
            // operand rows still hold the same values.
            7 if !multi.is_empty() => {
                let mut dup = instrs[multi[s1 as usize % multi.len()]].clone();
                let dst = fresh(&mut next);
                set_dst(&mut dup, dst);
                let is_mult = matches!(dup, Instr::Mult { .. });
                instrs.push(dup);
                if is_mult {
                    prods.push(dst);
                } else {
                    dense.push(dst);
                }
            }
            8 => {
                let (wa, wb) = (fresh(&mut next), fresh(&mut next));
                let dst = fresh(&mut next);
                let ops: Vec<u64> = values.iter().take(2).copied().collect();
                instrs.push(Instr::WriteMult {
                    dst: wa,
                    precision: p,
                    values: ops.clone(),
                });
                instrs.push(Instr::WriteMult {
                    dst: wb,
                    precision: p,
                    values: ops,
                });
                instrs.push(Instr::Mult {
                    a: wa,
                    b: wb,
                    dst,
                    precision: p,
                });
                multi.push(instrs.len() - 1);
                prods.push(dst);
            }
            9 if dense.len() >= 2 => {
                let (a, b) = pick2(&dense, s1, s2);
                let dst = fresh(&mut next);
                instrs.push(Instr::ReduceAdd {
                    srcs: vec![a, b],
                    dst,
                    precision: p,
                });
                multi.push(instrs.len() - 1);
                dense.push(dst);
            }
            10 if !dense.is_empty() => {
                instrs.push(Instr::Read {
                    src: pick(&dense, s1),
                    precision: p,
                    n: lanes,
                });
            }
            11 if !prods.is_empty() => {
                instrs.push(Instr::ReadProducts {
                    src: pick(&prods, s1),
                    precision: p,
                    n: 2,
                });
            }
            _ => {
                // The selected op is not constructible yet; seed a write
                // instead so the stream keeps growing.
                let dst = fresh(&mut next);
                instrs.push(Instr::Write {
                    dst,
                    precision: p,
                    values,
                });
                dense.push(dst);
            }
        }
    }
    // Always observe the final state of the newest rows, so optimization
    // has bits it must preserve.
    if let Some(&src) = dense.last() {
        instrs.push(Instr::Read {
            src,
            precision: p,
            n: lanes,
        });
    }
    if let Some(&src) = prods.last() {
        instrs.push(Instr::ReadProducts {
            src,
            precision: p,
            n: 2,
        });
    }
    Program::new(instrs)
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (any::<u8>(), any::<u16>(), any::<u16>(), any::<u64>()),
        4..24,
    )
}

/// The pre-framework `Program::partition` logic, reimplemented
/// independently: union instructions with the last writer of each source
/// register (resolved in submitted order, sources before the destination
/// update), then group by component in order of first appearance.
fn reference_partition(prog: &Program) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let instrs = prog.instrs();
    let n = instrs.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut last_def: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (idx, instr) in instrs.iter().enumerate() {
        for src in instr.sources() {
            if let Some(&def) = last_def.get(&src.row()) {
                let (ra, rb) = (find(&mut parent, idx), find(&mut parent, def));
                if ra != rb {
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi] = lo;
                }
            }
        }
        if let Some(dst) = instr.dst() {
            last_def.insert(dst.row(), idx);
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut slots: Vec<Vec<usize>> = Vec::new();
    let mut group_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut read_slot = 0usize;
    for (idx, instr) in instrs.iter().enumerate() {
        let root = find(&mut parent, idx);
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            slots.push(Vec::new());
            groups.len() - 1
        });
        if instr.is_read() {
            slots[g].push(read_slot);
            read_slot += 1;
        }
        groups[g].push(idx);
    }
    (groups, slots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `optimize()` output bits == original, cycles ≤ original, and both
    /// runs satisfy the executor's internal predicted-activity assertion,
    /// at every precision.
    #[test]
    fn optimize_is_semantics_preserving(p_pick in 0usize..5, steps in steps()) {
        let p = Precision::ALL[p_pick];
        let prog = build_program(p, &steps);
        let cfg = MacroConfig::paper_macro();
        prop_assert!(prog.validate(&cfg).is_ok(), "generator must emit valid programs");

        let opt = prog.optimize();
        prop_assert!(opt.validate(&cfg).is_ok(), "optimizer must emit valid programs");
        prop_assert!(
            opt.cycles() <= prog.cycles(),
            "optimize went from {} to {} cycles",
            prog.cycles(),
            opt.cycles()
        );

        // `Program::run` asserts the static cost model against the
        // execution log internally for both sides.
        let mut m1 = ImcMacro::new(cfg);
        let mut m2 = ImcMacro::new(cfg);
        let orig = prog.run(&mut m1).unwrap();
        let fast = opt.run(&mut m2).unwrap();
        prop_assert_eq!(&orig.outputs, &fast.outputs);
        prop_assert_eq!(m2.activity().total_cycles(), opt.cycles());
        prop_assert_eq!(fast.total_cycles(), opt.cycles());
    }

    /// Optimizing twice changes nothing more: the optimizer is
    /// idempotent up to cycle count (a second pass finds no new wins).
    #[test]
    fn optimize_is_stable_under_reapplication(p_pick in 0usize..5, steps in steps()) {
        let p = Precision::ALL[p_pick];
        let opt = build_program(p, &steps).optimize();
        prop_assert_eq!(opt.optimize().cycles(), opt.cycles());
    }

    /// The refactored partition (shared reaching-definitions framework)
    /// groups exactly as the original last-writer union-find did.
    #[test]
    fn partition_matches_the_original_grouping(p_pick in 0usize..5, steps in steps()) {
        let p = Precision::ALL[p_pick];
        let prog = build_program(p, &steps);
        let (ref_groups, ref_slots) = reference_partition(&prog);
        let parts = prog.partition();
        prop_assert_eq!(parts.len(), ref_groups.len());
        for (part, (group, slots)) in parts.iter().zip(ref_groups.iter().zip(&ref_slots)) {
            prop_assert_eq!(&part.submitted, group);
            prop_assert_eq!(&part.read_slots, slots);
            let expected: Vec<_> =
                group.iter().map(|&i| prog.instrs()[i].clone()).collect();
            prop_assert_eq!(part.program.instrs(), &expected[..]);
        }
    }
}
