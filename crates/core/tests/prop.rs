//! Property tests for the macro executor: algebraic identities computed
//! entirely in-memory.

use bpimc_core::{ImcMacro, LogicOp, MacroConfig, Precision};
use proptest::prelude::*;

fn words(n: usize, mask: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..=mask, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// De Morgan: NOT(a AND b) == NOT(a) OR NOT(b), all lanes.
    #[test]
    fn de_morgan(a in words(16, 0xFF), b in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.write_words(1, p, &b).unwrap();
        // lhs = NAND(a, b)
        m.logic(LogicOp::Nand, 0, 1, 2).unwrap();
        // rhs = NOT a OR NOT b
        m.not(0, 3).unwrap();
        m.not(1, 4).unwrap();
        m.logic(LogicOp::Or, 3, 4, 5).unwrap();
        prop_assert_eq!(m.read_words(2, p, 16).unwrap(), m.read_words(5, p, 16).unwrap());
    }

    /// x + x == x << 1 per lane.
    #[test]
    fn doubling_is_shifting(a in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.copy(0, 1).unwrap();
        m.add(0, 1, 2, p).unwrap();
        m.shl(0, 3, p).unwrap();
        prop_assert_eq!(m.read_words(2, p, 16).unwrap(), m.read_words(3, p, 16).unwrap());
    }

    /// a - b == ~(b - a) + 1 (two's complement negation), all lanes.
    #[test]
    fn subtraction_antisymmetry(a in words(16, 0xFF), b in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.write_words(1, p, &b).unwrap();
        m.sub(0, 1, 2, p).unwrap();
        m.sub(1, 0, 3, p).unwrap();
        let d1 = m.read_words(2, p, 16).unwrap();
        let d2 = m.read_words(3, p, 16).unwrap();
        for i in 0..16 {
            prop_assert_eq!(d1[i], (!d2[i]).wrapping_add(1) & 0xFF);
        }
    }

    /// Multiplication by powers of two equals repeated add-shift, and
    /// mult by 0/1 behave as annihilator/identity.
    #[test]
    fn mult_identities(a in words(8, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &[1; 8]).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        prop_assert_eq!(m.read_products(2, p, 8).unwrap(), a.clone());
        m.write_mult_operands(3, p, &[0; 8]).unwrap();
        m.mult(0, 3, 4, p).unwrap();
        prop_assert_eq!(m.read_products(4, p, 8).unwrap(), vec![0; 8]);
    }

    /// Commutativity of in-memory multiplication.
    #[test]
    fn mult_commutes(a in words(8, 0xFF), b in words(8, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &b).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        m.mult(1, 0, 3, p).unwrap();
        prop_assert_eq!(m.read_products(2, p, 8).unwrap(), m.read_products(3, p, 8).unwrap());
    }

    /// 32-bit extension: products match host arithmetic.
    #[test]
    fn mult_32bit_extension(a in 0u64..=u32::MAX as u64, b in 0u64..=u32::MAX as u64) {
        let p = Precision::P32;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &[a]).unwrap();
        m.write_mult_operands(1, p, &[b]).unwrap();
        let cycles = m.mult(0, 1, 2, p).unwrap();
        prop_assert_eq!(cycles, 34); // N + 2
        prop_assert_eq!(m.read_products(2, p, 1).unwrap()[0], a * b);
    }

    /// The limb-parallel engine changes host time only: reported cycle
    /// counts AND logged cycle counts stay at the Table I ground truth for
    /// every precision and row width (Fig. 9 sweeps 128-1024 columns).
    #[test]
    fn cycle_accounting_is_table1_at_any_width(
        width_step in 0usize..8,
        p_pick in 0usize..3,
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let cols = 128 + width_step * 128;
        let p = [Precision::P2, Precision::P4, Precision::P8][p_pick];
        let bits = p.bits() as u64;
        let (a, b) = (a & p.mask(), b & p.mask());
        let mut m = ImcMacro::new(MacroConfig::with_cols(cols));
        m.write_words(0, p, &[a]).unwrap();
        m.write_words(1, p, &[b]).unwrap();
        m.clear_activity();
        prop_assert_eq!(m.add(0, 1, 2, p).unwrap(), 1);
        prop_assert_eq!(m.activity().total_cycles(), 1);
        prop_assert_eq!(m.sub(0, 1, 3, p).unwrap(), 2);
        prop_assert_eq!(m.activity().total_cycles(), 3);
        prop_assert_eq!(m.shl(0, 4, p).unwrap(), 1);
        prop_assert_eq!(m.add_shift(0, 1, 5, p).unwrap(), 1);
        prop_assert_eq!(m.activity().total_cycles(), 5);
        prop_assert_eq!(m.read_words(2, p, 1).unwrap()[0], (a + b) & p.mask());

        let mut mm = ImcMacro::new(MacroConfig::with_cols(cols));
        mm.write_mult_operands(0, p, &[a]).unwrap();
        mm.write_mult_operands(1, p, &[b]).unwrap();
        mm.clear_activity();
        prop_assert_eq!(mm.mult(0, 1, 2, p).unwrap(), bits + 2);
        prop_assert_eq!(mm.activity().total_cycles(), bits + 2);
        prop_assert_eq!(mm.read_products(2, p, 1).unwrap()[0], a * b);
    }

    /// Wide rows exercise the heap-backed limb path end to end: every
    /// product lane of a 1024-column macro multiplies correctly.
    #[test]
    fn mult_all_lanes_on_1024_columns(a in words(64, 0xFF), b in words(64, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::with_cols(1024));
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &b).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        let got = m.read_products(2, p, 64).unwrap();
        for i in 0..64 {
            prop_assert_eq!(got[i], a[i] * b[i], "lane {}", i);
        }
    }
}
