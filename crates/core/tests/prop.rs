//! Property tests for the macro executor: algebraic identities computed
//! entirely in-memory, plus the pinning of the [`Program`] executor to
//! direct `ImcMacro` method calls (identical result bits, identical
//! cycle-by-cycle activity — and therefore identical energy — across
//! P2–P32).

use bpimc_core::prog::ProgramBuilder;
use bpimc_core::{ImcMacro, LogicOp, MacroConfig, Precision};
use proptest::prelude::*;

fn words(n: usize, mask: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..=mask, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// De Morgan: NOT(a AND b) == NOT(a) OR NOT(b), all lanes.
    #[test]
    fn de_morgan(a in words(16, 0xFF), b in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.write_words(1, p, &b).unwrap();
        // lhs = NAND(a, b)
        m.logic(LogicOp::Nand, 0, 1, 2).unwrap();
        // rhs = NOT a OR NOT b
        m.not(0, 3).unwrap();
        m.not(1, 4).unwrap();
        m.logic(LogicOp::Or, 3, 4, 5).unwrap();
        prop_assert_eq!(m.read_words(2, p, 16).unwrap(), m.read_words(5, p, 16).unwrap());
    }

    /// x + x == x << 1 per lane.
    #[test]
    fn doubling_is_shifting(a in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.copy(0, 1).unwrap();
        m.add(0, 1, 2, p).unwrap();
        m.shl(0, 3, p).unwrap();
        prop_assert_eq!(m.read_words(2, p, 16).unwrap(), m.read_words(3, p, 16).unwrap());
    }

    /// a - b == ~(b - a) + 1 (two's complement negation), all lanes.
    #[test]
    fn subtraction_antisymmetry(a in words(16, 0xFF), b in words(16, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_words(0, p, &a).unwrap();
        m.write_words(1, p, &b).unwrap();
        m.sub(0, 1, 2, p).unwrap();
        m.sub(1, 0, 3, p).unwrap();
        let d1 = m.read_words(2, p, 16).unwrap();
        let d2 = m.read_words(3, p, 16).unwrap();
        for i in 0..16 {
            prop_assert_eq!(d1[i], (!d2[i]).wrapping_add(1) & 0xFF);
        }
    }

    /// Multiplication by powers of two equals repeated add-shift, and
    /// mult by 0/1 behave as annihilator/identity.
    #[test]
    fn mult_identities(a in words(8, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &[1; 8]).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        prop_assert_eq!(m.read_products(2, p, 8).unwrap(), a.clone());
        m.write_mult_operands(3, p, &[0; 8]).unwrap();
        m.mult(0, 3, 4, p).unwrap();
        prop_assert_eq!(m.read_products(4, p, 8).unwrap(), vec![0; 8]);
    }

    /// Commutativity of in-memory multiplication.
    #[test]
    fn mult_commutes(a in words(8, 0xFF), b in words(8, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &b).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        m.mult(1, 0, 3, p).unwrap();
        prop_assert_eq!(m.read_products(2, p, 8).unwrap(), m.read_products(3, p, 8).unwrap());
    }

    /// 32-bit extension: products match host arithmetic.
    #[test]
    fn mult_32bit_extension(a in 0u64..=u32::MAX as u64, b in 0u64..=u32::MAX as u64) {
        let p = Precision::P32;
        let mut m = ImcMacro::new(MacroConfig::paper_macro());
        m.write_mult_operands(0, p, &[a]).unwrap();
        m.write_mult_operands(1, p, &[b]).unwrap();
        let cycles = m.mult(0, 1, 2, p).unwrap();
        prop_assert_eq!(cycles, 34); // N + 2
        prop_assert_eq!(m.read_products(2, p, 1).unwrap()[0], a * b);
    }

    /// The limb-parallel engine changes host time only: reported cycle
    /// counts AND logged cycle counts stay at the Table I ground truth for
    /// every precision and row width (Fig. 9 sweeps 128-1024 columns).
    #[test]
    fn cycle_accounting_is_table1_at_any_width(
        width_step in 0usize..8,
        p_pick in 0usize..3,
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let cols = 128 + width_step * 128;
        let p = [Precision::P2, Precision::P4, Precision::P8][p_pick];
        let bits = p.bits() as u64;
        let (a, b) = (a & p.mask(), b & p.mask());
        let mut m = ImcMacro::new(MacroConfig::with_cols(cols));
        m.write_words(0, p, &[a]).unwrap();
        m.write_words(1, p, &[b]).unwrap();
        m.clear_activity();
        prop_assert_eq!(m.add(0, 1, 2, p).unwrap(), 1);
        prop_assert_eq!(m.activity().total_cycles(), 1);
        prop_assert_eq!(m.sub(0, 1, 3, p).unwrap(), 2);
        prop_assert_eq!(m.activity().total_cycles(), 3);
        prop_assert_eq!(m.shl(0, 4, p).unwrap(), 1);
        prop_assert_eq!(m.add_shift(0, 1, 5, p).unwrap(), 1);
        prop_assert_eq!(m.activity().total_cycles(), 5);
        prop_assert_eq!(m.read_words(2, p, 1).unwrap()[0], (a + b) & p.mask());

        let mut mm = ImcMacro::new(MacroConfig::with_cols(cols));
        mm.write_mult_operands(0, p, &[a]).unwrap();
        mm.write_mult_operands(1, p, &[b]).unwrap();
        mm.clear_activity();
        prop_assert_eq!(mm.mult(0, 1, 2, p).unwrap(), bits + 2);
        prop_assert_eq!(mm.activity().total_cycles(), bits + 2);
        prop_assert_eq!(mm.read_products(2, p, 1).unwrap()[0], a * b);
    }

    /// Wide rows exercise the heap-backed limb path end to end: every
    /// product lane of a 1024-column macro multiplies correctly.
    #[test]
    fn mult_all_lanes_on_1024_columns(a in words(64, 0xFF), b in words(64, 0xFF)) {
        let p = Precision::P8;
        let mut m = ImcMacro::new(MacroConfig::with_cols(1024));
        m.write_mult_operands(0, p, &a).unwrap();
        m.write_mult_operands(1, p, &b).unwrap();
        m.mult(0, 1, 2, p).unwrap();
        let got = m.read_products(2, p, 64).unwrap();
        for i in 0..64 {
            prop_assert_eq!(got[i], a[i] * b[i], "lane {}", i);
        }
    }

    /// The program executor is pinned to direct `ImcMacro` method calls:
    /// for every precision P2–P32, the same dense-lane pipeline (writes,
    /// add, sub, logic, not, copy, shl, add_shift, reduce) produces
    /// identical result bits AND an identical cycle-by-cycle activity log
    /// — which makes cycle and energy accounting identical by
    /// construction.
    #[test]
    fn program_matches_direct_method_calls_at_every_precision(
        p_pick in 0usize..5,
        a in words(4, 3),
        b in words(4, 3),
    ) {
        let p = Precision::ALL[p_pick];
        let lanes = p.lanes(128).min(4);
        let a: Vec<u64> = a[..lanes].iter().map(|v| v & p.mask()).collect();
        let b: Vec<u64> = b[..lanes].iter().map(|v| v & p.mask()).collect();

        // Program side.
        let mut bld = ProgramBuilder::new();
        let ra = bld.write(p, a.clone());
        let rb = bld.write(p, b.clone());
        let sum = bld.add(ra, rb, p);
        let diff = bld.sub(ra, rb, p);
        let x = bld.logic(LogicOp::Xor, ra, rb);
        let inv = bld.not(ra);
        let cp = bld.copy(rb);
        let sh = bld.shl(cp, p);
        let ash = bld.add_shift(ra, rb, p);
        let red = bld.reduce_add(&[sum, diff, x], p);
        for r in [sum, diff, x, inv, cp, sh, ash, red] {
            bld.read(r, p, lanes);
        }
        let prog = bld.finish();
        let mut pm = ImcMacro::new(MacroConfig::paper_macro());
        let run = prog.run(&mut pm).unwrap();

        // Direct side: the same sequence as raw method calls, register i
        // on row i.
        let mut dm = ImcMacro::new(MacroConfig::paper_macro());
        dm.write_words(0, p, &a).unwrap();
        dm.write_words(1, p, &b).unwrap();
        dm.add(0, 1, 2, p).unwrap();
        dm.sub(0, 1, 3, p).unwrap();
        dm.logic(LogicOp::Xor, 0, 1, 4).unwrap();
        dm.not(0, 5).unwrap();
        dm.copy(1, 6).unwrap();
        dm.shl(6, 7, p).unwrap();
        dm.add_shift(0, 1, 8, p).unwrap();
        dm.reduce_add(&[2, 3, 4], 9, p).unwrap();
        let mut direct_outs = Vec::new();
        for row in [2, 3, 4, 5, 6, 7, 8, 9] {
            direct_outs.push(dm.read_words(row, p, lanes).unwrap());
        }

        prop_assert_eq!(&run.outputs, &direct_outs);
        prop_assert_eq!(pm.activity().cycles(), dm.activity().cycles());
        prop_assert_eq!(pm.activity().total_cycles(), prog.cycles());
        // The static per-cycle prediction matches what both logged.
        let predicted = prog.predicted_activity(&MacroConfig::paper_macro()).unwrap();
        prop_assert_eq!(predicted.as_slice(), pm.activity().cycles());
    }

    /// Same pinning for the product-lane path: write_mult + mult +
    /// read_products as a program vs direct calls, all precisions.
    #[test]
    fn program_mult_matches_direct_at_every_precision(
        p_pick in 0usize..5,
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let p = Precision::ALL[p_pick];
        let (a, b) = (a & p.mask(), b & p.mask());

        let mut bld = ProgramBuilder::new();
        let ra = bld.write_mult(p, vec![a]);
        let rb = bld.write_mult(p, vec![b]);
        let prod = bld.mult(ra, rb, p);
        bld.read_products(prod, p, 1);
        let prog = bld.finish();
        let mut pm = ImcMacro::new(MacroConfig::paper_macro());
        let run = prog.run(&mut pm).unwrap();

        let mut dm = ImcMacro::new(MacroConfig::paper_macro());
        dm.write_mult_operands(0, p, &[a]).unwrap();
        dm.write_mult_operands(1, p, &[b]).unwrap();
        dm.mult(0, 1, 2, p).unwrap();
        let direct = dm.read_products(2, p, 1).unwrap();

        prop_assert_eq!(run.outputs[0][0], a * b);
        prop_assert_eq!(&run.outputs[0], &direct);
        prop_assert_eq!(pm.activity().cycles(), dm.activity().cycles());
        prop_assert_eq!(run.instr_cycles, vec![1, 1, p.bits() as u64 + 2, 1]);
    }

    /// The lowering pass's fused shl+add is bit- and accounting-identical
    /// to the hardware's explicit add_shift at every precision.
    #[test]
    fn fused_shl_add_equals_explicit_add_shift(
        p_pick in 0usize..5,
        a in words(4, u64::MAX),
        b in words(4, u64::MAX),
    ) {
        let p = Precision::ALL[p_pick];
        let lanes = p.lanes(128).min(4);
        let a: Vec<u64> = a[..lanes].iter().map(|v| v & p.mask()).collect();
        let b: Vec<u64> = b[..lanes].iter().map(|v| v & p.mask()).collect();

        let build = |explicit: bool| {
            let mut bld = ProgramBuilder::new();
            let ra = bld.write(p, a.clone());
            let rb = bld.write(p, b.clone());
            let d = if explicit {
                bld.add_shift(ra, rb, p)
            } else {
                let s = bld.add(ra, rb, p);
                bld.shl(s, p)
            };
            bld.read(d, p, lanes);
            bld.finish()
        };
        let fused = build(false);
        let explicit = build(true);
        // The fusion saves the separate shl cycle: both cost 4.
        prop_assert_eq!(fused.cycles(), 4);
        prop_assert_eq!(explicit.cycles(), 4);

        let mut m1 = ImcMacro::new(MacroConfig::paper_macro());
        let mut m2 = ImcMacro::new(MacroConfig::paper_macro());
        let r1 = fused.run(&mut m1).unwrap();
        let r2 = explicit.run(&mut m2).unwrap();
        prop_assert_eq!(&r1.outputs, &r2.outputs);
        prop_assert_eq!(m1.activity().cycles(), m2.activity().cycles());
        for (x, y) in r1.outputs[0].iter().zip(a.iter().zip(&b)) {
            prop_assert_eq!(*x, ((y.0 + y.1) << 1) & p.mask());
        }
    }
}
