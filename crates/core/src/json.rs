//! A minimal, dependency-free JSON value with parser and serializer.
//!
//! The compute service speaks line-delimited JSON over TCP, and the build
//! image has no crates.io access, so `serde_json` is not an option. This
//! module implements exactly the subset the wire protocol needs:
//!
//! * Unsigned integers are kept **exact** as `u64` (`Json::UInt`) rather
//!   than routed through `f64` — P32 products occupy the full 64-bit range
//!   and must survive a round trip bit-for-bit. Numbers with a sign, a
//!   fraction or an exponent parse as `Json::Float`.
//! * Strings support the standard escapes including `\uXXXX` with UTF-16
//!   surrogate pairs for astral characters (unpaired surrogates decode to
//!   U+FFFD).
//! * Parsing depth is limited (64 levels) so a malicious client cannot
//!   overflow the server's stack with `[[[[…]]]]`.
//!
//! # Examples
//!
//! ```
//! use bpimc_core::json::Json;
//!
//! let v = Json::parse(r#"{"op":"dot","x":[1,2,3]}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("dot"));
//! assert_eq!(v.get("x").unwrap().as_array().unwrap().len(), 3);
//! assert_eq!(v.to_string(), r#"{"op":"dot","x":[1,2,3]}"#);
//! ```

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number (negative, fractional or exponential).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns the offset and reason of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an array of exact `u64`s (`None` if any element isn't).
    pub fn as_u64_array(&self) -> Option<Vec<u64>> {
        self.as_array()?.iter().map(Json::as_u64).collect()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            // JSON has no NaN/inf; null is the least-surprising encoding.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal("true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: pair it with a following
                                // \uXXXX low surrogate (the standard JSON
                                // encoding of astral characters).
                                let resume = self.pos;
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                    } else {
                                        // Unpaired high surrogate; the next
                                        // escape stands on its own.
                                        out.push('\u{FFFD}');
                                        self.pos = resume;
                                    }
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                // Lone low surrogates land in the None arm.
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the sequence through verbatim. The
                // input is a &str, so sequences are always valid.
                b if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(b as char);
                }
                _ => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|c| c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut exact = true; // still a plain non-negative integer?
        if self.peek() == Some(b'-') {
            exact = false;
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            exact = false;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            exact = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if exact {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            // Over 2^64-1: fall through to the (lossy) float representation.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-3.5", Json::Float(-3.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_values_survive_exactly() {
        // The whole point of Json::UInt: P32 products occupy all 64 bits
        // and must not be squeezed through f64.
        let big = u64::MAX - 1;
        let v = Json::Arr(vec![Json::UInt(big)]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_array().unwrap()[0].as_u64(), Some(big));
    }

    #[test]
    fn objects_and_arrays_parse() {
        let v = Json::parse(r#" {"a": [1, 2.5, "x"], "b": {"c": null}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1f600}";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_chars() {
        // Standard encoders (Python json.dumps, JSON.stringify with
        // escaping) emit astral characters as UTF-16 surrogate pairs.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
        assert_eq!(
            Json::parse(r#""x\ud83d\ude00y""#).unwrap().as_str(),
            Some("x\u{1f600}y")
        );
        // Unpaired halves degrade to U+FFFD without eating what follows.
        assert_eq!(
            Json::parse(r#""\ud83dX""#).unwrap().as_str(),
            Some("\u{FFFD}X")
        );
        assert_eq!(
            Json::parse(r#""\ud83dA""#).unwrap().as_str(),
            Some("\u{FFFD}A")
        );
        assert_eq!(
            Json::parse(r#""\ude00""#).unwrap().as_str(),
            Some("\u{FFFD}")
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "01x",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":}",
            "[1],",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_blocks_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
        // Well within the limit is fine.
        let ok = "[".repeat(20) + "1" + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn u64_array_helper() {
        let v = Json::parse("[1,2,3]").unwrap();
        assert_eq!(v.as_u64_array(), Some(vec![1, 2, 3]));
        let mixed = Json::parse("[1,2.5]").unwrap();
        assert_eq!(mixed.as_u64_array(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}
