//! Word packing into rows.
//!
//! Two layouts exist, both straight from the paper's Fig. 6:
//!
//! * **dense lanes** for logic/ADD/SUB: word `j` occupies columns
//!   `[j*P, (j+1)*P)`, LSB at the lowest column;
//! * **product lanes** for MULT: the product of a `P`-bit multiply spans two
//!   adjacent precision units (`2P` columns), so the operands sit in the low
//!   `P` bits of each `2P`-wide lane and the product fills the lane.

use crate::error::Error;
use bpimc_array::BitRow;
use bpimc_periph::Precision;

/// Packs `words` into dense `P`-bit lanes of a `cols`-wide row.
///
/// # Errors
///
/// Returns [`Error::TooManyWords`] when the row has too few lanes and
/// [`Error::WordTooWide`] when a value exceeds the precision.
pub fn pack_words(words: &[u64], precision: Precision, cols: usize) -> Result<BitRow, Error> {
    let bits = precision.bits();
    let lanes = precision.lanes(cols);
    if words.len() > lanes {
        return Err(Error::TooManyWords {
            requested: words.len(),
            available: lanes,
        });
    }
    let mut row = BitRow::zeros(cols);
    for (j, &w) in words.iter().enumerate() {
        if w > precision.max_value() {
            return Err(Error::WordTooWide { value: w, bits });
        }
        row.set_field(j * bits, bits, w);
    }
    Ok(row)
}

/// Unpacks the first `n` dense lanes of a row.
///
/// # Errors
///
/// Returns [`Error::TooManyWords`] when `n` exceeds the lane count.
pub fn unpack_words(row: &BitRow, precision: Precision, n: usize) -> Result<Vec<u64>, Error> {
    let bits = precision.bits();
    let lanes = precision.lanes(row.width());
    if n > lanes {
        return Err(Error::TooManyWords {
            requested: n,
            available: lanes,
        });
    }
    Ok((0..n).map(|j| row.get_field(j * bits, bits)).collect())
}

/// Packs multiplication operands into the low `P` bits of `2P`-wide product
/// lanes.
///
/// # Errors
///
/// Same conditions as [`pack_words`], with lane count halved.
pub fn pack_mult_operands(
    words: &[u64],
    precision: Precision,
    cols: usize,
) -> Result<BitRow, Error> {
    let bits = precision.bits();
    let lanes = precision.product_lanes(cols);
    if words.len() > lanes {
        return Err(Error::TooManyWords {
            requested: words.len(),
            available: lanes,
        });
    }
    let mut row = BitRow::zeros(cols);
    for (j, &w) in words.iter().enumerate() {
        if w > precision.max_value() {
            return Err(Error::WordTooWide { value: w, bits });
        }
        row.set_field(j * 2 * bits, bits, w);
    }
    Ok(row)
}

/// Unpacks the first `n` products (each `2P` bits wide) from a row.
///
/// # Errors
///
/// Returns [`Error::TooManyWords`] when `n` exceeds the product lane count.
pub fn unpack_products(row: &BitRow, precision: Precision, n: usize) -> Result<Vec<u64>, Error> {
    let bits = precision.bits();
    let lanes = precision.product_lanes(row.width());
    if n > lanes {
        return Err(Error::TooManyWords {
            requested: n,
            available: lanes,
        });
    }
    Ok((0..n)
        .map(|j| row.get_field(j * 2 * bits, 2 * bits))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let words = vec![1, 2, 250, 0, 255];
        let row = pack_words(&words, Precision::P8, 128).unwrap();
        assert_eq!(unpack_words(&row, Precision::P8, 5).unwrap(), words);
        // Unwritten lanes read zero.
        assert_eq!(unpack_words(&row, Precision::P8, 16).unwrap()[10], 0);
    }

    #[test]
    fn product_lane_round_trip() {
        let ops = vec![3, 15, 9];
        let row = pack_mult_operands(&ops, Precision::P4, 128).unwrap();
        // Operand j sits at column 8*j.
        assert_eq!(row.get_field(0, 4), 3);
        assert_eq!(row.get_field(8, 4), 15);
        assert_eq!(row.get_field(16, 4), 9);
        // Upper half of each product lane is clear.
        assert_eq!(row.get_field(4, 4), 0);
    }

    #[test]
    fn capacity_errors() {
        assert!(matches!(
            pack_words(&[0; 17], Precision::P8, 128),
            Err(Error::TooManyWords {
                requested: 17,
                available: 16
            })
        ));
        assert!(matches!(
            pack_mult_operands(&[0; 9], Precision::P8, 128),
            Err(Error::TooManyWords { available: 8, .. })
        ));
        let row = BitRow::zeros(128);
        assert!(unpack_words(&row, Precision::P2, 65).is_err());
        assert!(unpack_products(&row, Precision::P2, 33).is_err());
    }

    #[test]
    fn width_errors() {
        assert!(matches!(
            pack_words(&[256], Precision::P8, 128),
            Err(Error::WordTooWide {
                value: 256,
                bits: 8
            })
        ));
        assert!(matches!(
            pack_mult_operands(&[4], Precision::P2, 128),
            Err(Error::WordTooWide { .. })
        ));
    }
}
